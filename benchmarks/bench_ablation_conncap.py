"""A2: the connection cap creates Fig 11's modes and guards incast."""

from repro.experiments import format_table
from repro.experiments.ablations import run_connection_cap_ablation


def test_ablation_connection_cap(benchmark, report):
    result = benchmark.pedantic(
        run_connection_cap_ablation, kwargs={"seed": 32}, rounds=1, iterations=1
    )
    report(format_table("A2: connection-cap ablation", result.rows()))
    assert result.modes_with_cap > result.modes_without_cap
    assert result.peak_fan_in_without_cap > result.peak_fan_in_with_cap
