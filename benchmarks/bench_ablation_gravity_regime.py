"""A3: gravity priors fit ISP TMs, not datacenter TMs (paper §5)."""

from repro.experiments import format_table
from repro.experiments.ablations import run_gravity_regime_ablation


def test_ablation_gravity_regime(benchmark, report):
    result = benchmark.pedantic(
        run_gravity_regime_ablation, kwargs={"trials": 12, "seed": 33},
        rounds=1, iterations=1,
    )
    report(format_table("A3: gravity-regime ablation", result.rows()))
    assert result.median_isp_error < 0.1
    assert result.median_dc_error > 0.2
    assert result.median_dc_error > 5 * result.median_isp_error
