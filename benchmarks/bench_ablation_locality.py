"""A1: work-seeks-bandwidth is a policy, not an accident."""

from repro.experiments import format_table
from repro.experiments.ablations import run_locality_ablation


def test_ablation_locality(benchmark, report):
    result = benchmark.pedantic(
        run_locality_ablation, kwargs={"seed": 31}, rounds=1, iterations=1
    )
    report(format_table("A1: locality ablation", result.rows()))
    assert result.local_placements_with > 0.7
    assert result.local_placements_without < 0.3
    assert result.in_rack_with_locality > result.in_rack_without_locality
