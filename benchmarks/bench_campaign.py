"""Campaign-level benchmarks: the dataset cache and the parallel runner.

Standalone (not pytest-benchmark): run ``PYTHONPATH=src python
benchmarks/bench_campaign.py`` and it writes
``benchmarks/BENCH_campaign.json`` with

* cold vs warm-disk dataset build time for the small config — the
  speedup a second process gets from ``.repro-cache``;
* serial (``jobs=1``) vs parallel (``jobs=2``) wall time for a 4-seed
  campaign over fig02+fig09, with per-seed content hashes so the run
  doubles as a determinism check, plus each run's merged-timeline
  **phase breakdown** (spawn / import / wait / dataset-load / compute /
  merge seconds and lane coverage) — the cross-process telemetry makes
  the campaign explain its own wall-clock.

``host.cpu_count`` is recorded alongside: on a single-core host the
parallel campaign cannot beat the serial one (spawn overhead makes it
slightly slower), so interpret ``parallel_speedup`` against the core
count and the ``wait`` phase total, not in isolation.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
import time

from repro.experiments import run_campaign, small_config
from repro.experiments.common import build_dataset, clear_dataset_cache
from repro.telemetry import Telemetry

SEEDS = 4
JOBS_PARALLEL = 2
EXPERIMENTS = ["fig02", "fig09"]


def bench_dataset_cache(workdir: pathlib.Path) -> dict:
    cache_dir = workdir / "dataset-cache"
    config = small_config(seed=101)

    start = time.perf_counter()
    build_dataset(config, cache_dir=cache_dir)
    cold_seconds = time.perf_counter() - start

    clear_dataset_cache()  # a second cold process, minus the interpreter
    tele = Telemetry()
    start = time.perf_counter()
    build_dataset(config, telemetry=tele, cache_dir=cache_dir)
    warm_seconds = time.perf_counter() - start
    hits = tele.metrics.snapshot()["dataset.disk_cache_hits"]["value"]
    assert hits == 1, f"warm build should hit the disk cache, saw {hits}"

    return {
        "config": "small",
        "cold_build_seconds": round(cold_seconds, 3),
        "warm_disk_load_seconds": round(warm_seconds, 3),
        "disk_cache_speedup": round(cold_seconds / warm_seconds, 1),
    }


def bench_campaign(workdir: pathlib.Path) -> dict:
    out: dict = {"seeds": SEEDS, "experiments": EXPERIMENTS}
    hashes: dict[str, list[str]] = {}
    for label, jobs in (("serial", 1), ("parallel", JOBS_PARALLEL)):
        clear_dataset_cache()
        cache_dir = workdir / f"campaign-cache-{label}"
        start = time.perf_counter()
        result = run_campaign(
            small_config(), seeds=SEEDS, experiments=EXPERIMENTS,
            jobs=jobs, cache_dir=cache_dir,
        )
        wall = time.perf_counter() - start
        timeline = result.timeline
        out[label] = {
            "jobs": jobs,
            "wall_seconds": round(wall, 3),
            "per_seed_build_seconds": [
                round(run.build_seconds, 3) for run in result.seed_runs
            ],
            "phase_seconds": {
                name: round(seconds, 3)
                for name, seconds in timeline["phase_totals"].items()
            },
            "timeline_coverage": round(timeline["coverage"], 4),
        }
        hashes[label] = [run.content_hash for run in result.seed_runs]
    out["parallel_speedup"] = round(
        out["serial"]["wall_seconds"] / out["parallel"]["wall_seconds"], 2
    )
    out["serial_parallel_hashes_identical"] = hashes["serial"] == hashes["parallel"]
    assert out["serial_parallel_hashes_identical"], hashes
    return out


def main() -> None:
    import os

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-campaign-"))
    try:
        payload = {
            "schema_version": 2,
            "host": {"cpu_count": os.cpu_count()},
            "dataset_cache": bench_dataset_cache(workdir),
            "campaign": bench_campaign(workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    out = pathlib.Path(__file__).parent / "BENCH_campaign.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
