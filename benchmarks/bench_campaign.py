"""Campaign-level benchmarks: dataset cache, warm work-queue pool, resume.

Standalone (not pytest-benchmark): run ``PYTHONPATH=src python
benchmarks/bench_campaign.py`` and it writes
``benchmarks/BENCH_campaign.json`` with

* cold vs warm-disk dataset build time for the small config — the
  speedup a second process gets from ``.repro-cache``;
* serial (``jobs=1``, spawn pool) vs warm work-queue pool (``jobs=2``,
  ``pool="warm"``) wall time for a 4-seed campaign over fig02+fig09,
  with per-seed content hashes so the run doubles as a determinism
  check, plus each run's merged-timeline **phase breakdown** (spawn /
  import / claim / wait / dataset-load / compute / merge seconds and
  lane coverage) — the cross-process telemetry makes the campaign
  explain its own wall-clock;
* a resumed re-run of the warm campaign (``resume=True`` against the
  same queue) — every seed loads from the published results, so this
  is the floor for "picking up where an interrupted campaign stopped".

Interpretation keys recorded alongside: ``host.cpu_count`` (on a
single-core host the parallel pool cannot beat serial; the build gate
serialises simulations so the *summed* ``dataset-load`` stays within
1.2x of serial — the honest comparison there), and
``dataset_load_ratio`` itself.  ``parallel_speedup > 1.0`` is asserted
only on multi-core hosts.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
import time

from repro.experiments import run_campaign, small_config
from repro.experiments.common import build_dataset, clear_dataset_cache
from repro.telemetry import Telemetry

SEEDS = 4
JOBS_PARALLEL = 2
EXPERIMENTS = ["fig02", "fig09"]

#: Concurrent builds must not inflate total simulation work beyond this
#: factor of the serial run (the build gate serialises CPU-bound builds
#: to the core count, so contention shows up as ``wait``, not as slower
#: ``dataset-load``).
MAX_DATASET_LOAD_RATIO = 1.2


def bench_dataset_cache(workdir: pathlib.Path) -> dict:
    cache_dir = workdir / "dataset-cache"
    config = small_config(seed=101)

    start = time.perf_counter()
    build_dataset(config, cache_dir=cache_dir)
    cold_seconds = time.perf_counter() - start

    clear_dataset_cache()  # a second cold process, minus the interpreter
    tele = Telemetry()
    start = time.perf_counter()
    build_dataset(config, telemetry=tele, cache_dir=cache_dir)
    warm_seconds = time.perf_counter() - start
    hits = tele.metrics.snapshot()["dataset.disk_cache_hits"]["value"]
    assert hits == 1, f"warm build should hit the disk cache, saw {hits}"

    return {
        "config": "small",
        "cold_build_seconds": round(cold_seconds, 3),
        "warm_disk_load_seconds": round(warm_seconds, 3),
        "disk_cache_speedup": round(cold_seconds / warm_seconds, 1),
    }


def _run(label: str, workdir: pathlib.Path, *, jobs: int, pool: str,
         resume: bool = False, cache_dir: pathlib.Path | None = None):
    clear_dataset_cache()
    cache_dir = cache_dir or workdir / f"campaign-cache-{label}"
    start = time.perf_counter()
    result = run_campaign(
        small_config(), seeds=SEEDS, experiments=EXPERIMENTS,
        jobs=jobs, pool=pool, resume=resume, cache_dir=cache_dir,
    )
    wall = time.perf_counter() - start
    timeline = result.timeline
    summary = {
        "jobs": jobs,
        "pool": pool,
        "wall_seconds": round(wall, 3),
        "per_seed_build_seconds": [
            round(run.build_seconds, 3) for run in result.seed_runs
        ],
        "phase_seconds": {
            name: round(seconds, 3)
            for name, seconds in timeline.get("phase_totals", {}).items()
        },
        "timeline_coverage": round(timeline.get("coverage", 0.0), 4),
    }
    if resume:
        summary["resumed_seeds"] = len(result.scheduler.get("resumed_seeds", []))
    if pool == "warm":
        summary["lease_takeovers"] = result.scheduler.get("takeovers", 0)
        summary["worker_respawns"] = result.scheduler.get("respawns", 0)
    return result, summary, cache_dir


def bench_campaign(workdir: pathlib.Path) -> dict:
    import os

    cores = os.cpu_count() or 1
    out: dict = {"seeds": SEEDS, "experiments": EXPERIMENTS}

    serial, out["serial"], _ = _run("serial", workdir, jobs=1, pool="spawn")
    warm, out["warm_pool"], warm_cache = _run(
        "warm", workdir, jobs=JOBS_PARALLEL, pool="warm"
    )
    _, out["warm_resume"], _ = _run(
        "warm", workdir, jobs=JOBS_PARALLEL, pool="warm",
        resume=True, cache_dir=warm_cache,
    )

    serial_load = out["serial"]["phase_seconds"].get("dataset-load", 0.0)
    warm_load = out["warm_pool"]["phase_seconds"].get("dataset-load", 0.0)
    out["dataset_load_ratio"] = round(warm_load / max(serial_load, 1e-9), 3)
    out["parallel_speedup"] = round(
        out["serial"]["wall_seconds"] / out["warm_pool"]["wall_seconds"], 2
    )
    out["resume_speedup"] = round(
        out["warm_pool"]["wall_seconds"] / out["warm_resume"]["wall_seconds"], 1
    )

    hashes = {run.seed: run.content_hash for run in serial.seed_runs}
    out["serial_parallel_hashes_identical"] = hashes == {
        run.seed: run.content_hash for run in warm.seed_runs
    }
    assert out["serial_parallel_hashes_identical"], "warm pool broke determinism"
    assert out["warm_resume"]["resumed_seeds"] == SEEDS, out["warm_resume"]
    assert out["dataset_load_ratio"] <= MAX_DATASET_LOAD_RATIO, (
        f"summed dataset-load {out['dataset_load_ratio']}x serial exceeds "
        f"{MAX_DATASET_LOAD_RATIO}x: the build gate is not serialising builds"
    )
    if cores > 1:
        assert out["parallel_speedup"] > 1.0, (
            f"warm pool slower than serial on a {cores}-core host"
        )
    return out


def main() -> None:
    import os

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-campaign-"))
    try:
        payload = {
            "schema_version": 3,
            "host": {"cpu_count": os.cpu_count()},
            "dataset_cache": bench_dataset_cache(workdir),
            "campaign": bench_campaign(workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    out = pathlib.Path(__file__).parent / "BENCH_campaign.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
