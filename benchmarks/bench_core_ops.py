"""Microbenchmarks of the core operations a campaign exercises millions
of times: flow reconstruction, TM binning, max-min water-filling."""

import numpy as np

from repro.cluster.routing import Router
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.core.flows import reconstruct_flows
from repro.core.traffic_matrix import tm_series_from_events
from repro.simulation.transport import FluidTransport, TransferMeta


def test_flow_reconstruction_throughput(benchmark, standard_dataset):
    log = standard_dataset.result.socket_log
    flows = benchmark(reconstruct_flows, log)
    assert len(flows) > 0


def test_tm_binning_throughput(benchmark, standard_dataset):
    result = standard_dataset.result
    series = benchmark(
        tm_series_from_events,
        result.socket_log,
        result.topology,
        10.0,
        standard_dataset.config.duration,
    )
    assert series.total().sum() > 0


def _loaded_transport(num_flows: int, spec: ClusterSpec) -> FluidTransport:
    topo = ClusterTopology(spec)
    router = Router(topo)
    transport = FluidTransport(topo)
    rng = np.random.default_rng(0)
    meta = TransferMeta(kind="fetch")
    endpoints = topo.endpoints()
    for _ in range(num_flows):
        src, dst = rng.choice(endpoints, size=2, replace=False)
        transport.add_flow(int(src), int(dst), 1e9,
                           router.path_links(int(src), int(dst)), meta)
    return transport


def test_maxmin_waterfill(benchmark):
    transport = _loaded_transport(
        500,
        ClusterSpec(racks=12, servers_per_rack=8, racks_per_vlan=4,
                    external_hosts=0),
    )

    def recompute():
        transport.rates_dirty = True
        transport.recompute_rates()

    benchmark(recompute)
    assert transport.utilization_snapshot().max() <= 1.05


def test_maxmin_waterfill_large(benchmark):
    """The allocator at scale: 8000 concurrent flows on a 1536-server
    cluster, where the batched CSR elimination path takes over."""
    transport = _loaded_transport(
        8000,
        ClusterSpec(racks=64, servers_per_rack=24, racks_per_vlan=8,
                    external_hosts=0),
    )

    def recompute():
        transport.rates_dirty = True
        transport.recompute_rates()

    benchmark(recompute)
    assert transport.utilization_snapshot().max() <= 1.05


def test_small_campaign_simulation(benchmark):
    """End-to-end cost of a small measurement campaign."""
    from repro.config import SimulationConfig
    from repro.simulation.simulator import simulate
    from repro.workload.generator import WorkloadConfig

    config = SimulationConfig(
        cluster=ClusterSpec(racks=4, servers_per_rack=5, racks_per_vlan=2,
                            external_hosts=1),
        workload=WorkloadConfig(job_arrival_rate=0.2),
        duration=30.0,
        seed=5,
    )
    result = benchmark.pedantic(simulate, args=(config,), rounds=1, iterations=1)
    assert result.stats["transfers_completed"] > 0
