"""E1: the paper's §5.3 future work — role-aware tomography prior."""

from repro.experiments import ext_roleprior, format_table


def test_ext_roleprior(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        ext_roleprior.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("E1: role-aware prior (§5.3 future work)",
                        result.rows()))
    # The directional role prior should at least match the symmetric job
    # prior it refines (the paper expected role info to help).
    assert result.median("role") <= result.median("job") * 1.1
    assert result.gravity_errors.size >= 5
