"""E2: packet-sampled NetFlow vs socket logs (paper §2's trade-off)."""

from repro.experiments import ext_sampling, format_table


def test_ext_sampling(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        ext_sampling.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("E2: sampled NetFlow bias (§2)", result.rows()))
    # Coarse sampling loses a meaningful share of flows while total
    # volume stays estimable — the reason §2 rejects it for flow detail.
    assert result.detected_fraction(1e-4) < result.detected_fraction(1e-2)
    assert result.detected_fraction(1e-4) < 0.95
