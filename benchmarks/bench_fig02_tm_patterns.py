"""F2: the work-seeks-bandwidth / scatter-gather TM (paper Fig 2)."""

from repro.experiments import fig02, format_table


def test_fig02_tm_patterns(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig02.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F2: TM patterns (Fig 2)", result.rows()))
    summary = result.summary
    # The diagonal blocks carry far more than a uniform spread would.
    assert result.locality_amplification > 2.0
    # Scatter-gather lines are present.
    assert summary.scatter_gather_server_count > 0
    # External traffic exists but is a sliver (the far corner).
    assert 0.0 < result.full_span_summary.external_byte_fraction < 0.2
