"""F3: bytes exchanged between server pairs (paper Fig 3)."""

from repro.experiments import fig03, format_table


def test_fig03_pair_bytes(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig03.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F3: pair-byte distributions (Fig 3)", result.rows()))
    # Zero-probabilities: silence dominates, cross-rack far more so
    # (paper: 89% in-rack vs 99.5% cross-rack).
    assert result.prob_zero_in_rack > 0.5
    assert result.prob_zero_cross_rack > result.prob_zero_in_rack
    assert result.prob_zero_cross_rack > 0.85
    # Heavy tail spanning many orders of magnitude (paper ~[e^4, e^20]).
    low, high = result.log_range
    assert high - low > 6.0
    # In-rack pairs skew larger.
    assert result.in_rack_median_log >= result.cross_rack_median_log - 0.5
