"""F4: how many other servers a server talks to (paper Fig 4)."""

from repro.experiments import fig04, format_table


def test_fig04_correspondents(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig04.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F4: correspondent counts (Fig 4)", result.rows()))
    # Medians are small integers (paper: 2 in-rack, 4 cross-rack).
    assert 0 <= result.median_in_rack <= 6
    assert 0 <= result.median_cross_rack <= 20
    # Bimodality: some samples talk to most of the rack...
    assert result.frac_talking_to_most_of_rack > 0.02
    # ...and the cross-rack distribution has a spike at zero.
    assert result.frac_silent_outside_rack > 0.01
