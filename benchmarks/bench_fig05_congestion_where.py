"""F5: when and where congestion happens (paper Fig 5)."""

from repro.experiments import fig05, format_table


def test_fig05_congestion_where(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig05.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F5: congestion coverage (Fig 5)", result.rows()))
    # Most inter-switch links see >=10 s congestion (paper: 86%)...
    assert result.frac_links_hot_10s > 0.5
    # ...far fewer see >=100 s (paper: 15%), and never more than the 10 s set.
    assert result.frac_links_hot_100s < result.frac_links_hot_10s
    # Short congestion is correlated across links.
    assert result.peak_simultaneous >= 5
    # Long congestion is localized to a small set of links.
    assert result.links_with_long_episodes <= result.summary.num_links / 2
