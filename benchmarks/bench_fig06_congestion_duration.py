"""F6: lengths of congestion episodes (paper Fig 6)."""

from repro.experiments import fig06, format_table


def test_fig06_congestion_duration(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig06.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F6: congestion episode durations (Fig 6)",
                        result.rows()))
    # Most >1 s episodes are short (paper: >90% at most 10 s).
    assert result.frac_short > 0.6
    # A long tail of multi-ten-second episodes exists.
    assert result.summary.episodes_over_10s > 0
    assert result.longest > 30.0
