"""F7: collateral damage to flows under congestion (paper Fig 7)."""

from repro.experiments import fig07, format_table


def test_fig07_victim_flows(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig07.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F7: victim flow rates (Fig 7)", result.rows()))
    # "The rates do not change appreciably": medians within 2x and CDFs
    # close over the shared support.
    assert 0.5 < result.median_ratio < 2.0
    assert result.max_cdf_gap() < 0.3
