"""F8: read-failure uplift under congestion (paper Fig 8)."""

from repro.experiments import fig08, format_table


def test_fig08_read_failures(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig08.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F8: read-failure impact (Fig 8)", result.rows()))
    # Congestion-exposed jobs fail to read inputs more often (paper:
    # median 1.1x uplift; per-day bars from -90% to +2427%).
    pooled = result.pooled_uplift_ratio
    assert pooled > 1.0  # inf also passes: exposed jobs fail, clear ones don't
    # All eight days are analysed.
    assert len(result.study.days) == 8
    # Both groups exist overall.
    assert sum(d.jobs_overlapping for d in result.study.days) > 0
    assert sum(d.jobs_clear for d in result.study.days) > 0
