"""F9: flow durations and bytes-by-duration (paper Fig 9)."""

from repro.experiments import fig09, format_table


def test_fig09_flow_durations(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig09.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F9: flow durations (Fig 9)", result.rows()))
    stats = result.stats
    # "More than 80% of flows last less than ten seconds".
    assert stats.frac_flows_under_10s > 0.8
    # "Fewer than 0.1% last longer than 200 s" (shape: a tiny tail).
    assert stats.frac_flows_over_200s < 0.01
    # "More than half the bytes are in flows lasting less than 25 s".
    assert stats.frac_bytes_under_25s > 0.5
