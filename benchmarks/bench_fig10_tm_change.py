"""F10: traffic change over time (paper Fig 10)."""

from repro.experiments import fig10, format_table


def test_fig10_tm_change(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig10.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F10: TM churn (Fig 10)", result.rows()))
    # Median normalised change is large at both time-scales.
    assert result.median_change_10s > 0.3
    assert result.median_change_100s > 0.3
    # Rate spikes approach/exceed half the full-duplex bisection
    # bandwidth (>= 0.5 of the one-directional bisection used here).
    assert result.stats.peak_over_bisection > 0.5
