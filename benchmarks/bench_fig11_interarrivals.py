"""F11: flow inter-arrival times (paper Fig 11)."""

import pytest

from repro.experiments import fig11, format_table


def test_fig11_interarrivals(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig11.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F11: flow inter-arrivals (Fig 11)", result.rows()))
    # Periodic modes spaced by the stop-and-go quantum (paper: ~15 ms).
    assert result.stats.server_modes.size >= 2
    assert result.mode_spacing == pytest.approx(result.expected_quantum, rel=0.4)
    # Long tail: servers can go seconds between flows.
    assert result.server_tail > 1.0
    # The cluster-wide arrival rate dwarfs any single server's.
    assert result.stats.median_cluster_rate > 10.0
