"""F12: tomography estimation error CDFs (paper Fig 12)."""

from repro.experiments import fig12, format_table


def test_fig12_tomography_error(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig12.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F12: tomography errors (Fig 12)", result.rows()))
    # Tomogravity is substantially wrong on DC TMs (paper: median 60%).
    assert result.median_tomogravity_error > 0.15
    # The job-metadata prior helps at most marginally.
    assert result.median_job_prior_error > 0.3 * result.median_tomogravity_error
    # Sparsity maximisation estimates worse than tomogravity.
    assert result.median_sparsity_error > result.median_tomogravity_error
    assert len(result.study.windows) >= 8
