"""F13: tomogravity error vs ground-truth sparsity (paper Fig 13)."""

from repro.experiments import fig13, format_table


def test_fig13_sparsity_correlation(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig13.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F13: error vs sparsity (Fig 13)", result.rows()))
    assert result.errors.size >= 8
    # Sparser ground truth must not make tomogravity *better*: the
    # correlation is negative (paper) or at worst flat at this scale.
    assert result.correlation < 0.3
