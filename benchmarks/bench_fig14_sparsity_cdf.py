"""F14: sparsity of estimated vs ground-truth TMs (paper Fig 14)."""

from repro.experiments import fig14, format_table


def test_fig14_sparsity_cdf(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        fig14.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("F14: TM sparsity by method (Fig 14)", result.rows()))
    truth = result.median_fraction("truth")
    tomogravity = result.median_fraction("tomogravity")
    sparse = result.median_fraction("sparsity")
    # Ground truth sits between dense tomogravity and over-sparse MILP.
    assert sparse < truth
    assert tomogravity > 0.8 * truth
    # The MILP's non-zeros rarely coincide with true heavy hitters.
    overlaps = result.study.sparsity_heavy_hitter_overlaps()
    nonzeros = result.study.sparsity_nonzeros()
    assert overlaps and nonzeros
    assert result.milp_heavy_hitter_overlap < sum(nonzeros) / len(nonzeros)
