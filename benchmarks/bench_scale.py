"""Paper-scale benchmarks: allocator event latency and a full campaign.

The IMC'09 cluster has ~1500 servers; these benchmarks pin the cost of
running a *single* simulated campaign at that size.  Two angles:

* Steady-state arrival/departure latency — one flow finishes, one flow
  arrives, rates recompute — at 2k / 8k / 32k concurrent flows on the
  1536-server topology, for the incremental allocator and (at the sizes
  where it is tolerable) the from-scratch reference.  This is the
  allocator's actual unit of work during a run: the event loop pays it
  once per batch.
* Wall-clock and peak RSS for an end-to-end 1536-server campaign under
  ``transport_impl="incremental"`` — the number a user planning a
  paper-scale reproduction actually needs (see EXPERIMENTS.md).

Each timed call covers ``_EVENTS_PER_ROUND`` churn events, so
``wall_seconds / _EVENTS_PER_ROUND`` is the per-event latency.
"""

import numpy as np
import pytest

from repro.cluster.routing import Router, make_router
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.simulation.transport import FluidTransport, TransferMeta

#: The paper-scale cluster: 64 racks x 24 servers, 8 racks per VLAN —
#: 1536 servers, 3216 links (matches EXPERIMENTS.md scale defaults).
PAPER_SPEC = ClusterSpec(
    racks=64, servers_per_rack=24, racks_per_vlan=8, external_hosts=0
)

#: The same server count on a k=16 fat-tree: 128 edge racks x 12
#: servers.  Longer paths (up to 6 links) and 64-way cross-pod path
#: diversity exercise the allocator's incidence structures harder than
#: the tree's fixed 6-hop worst case.
FAT_TREE_SPEC = ClusterSpec.fat_tree(
    k=16, servers_per_rack=12, external_hosts=0
)

_EVENTS_PER_ROUND = 50


class _ChurnHarness:
    """A loaded transport plus a steady-state churn step.

    Every step retires one random active flow, admits one fresh random
    flow, and recomputes rates — the arrival/departure cycle the event
    engine drives millions of times per campaign.  ``routing`` selects
    the per-flow path policy (ECMP spreads flows across a multi-path
    fabric's equal-cost sets; each flow gets a distinct hash key).
    """

    def __init__(
        self,
        impl: str,
        num_flows: int,
        seed: int = 0,
        spec: ClusterSpec = PAPER_SPEC,
        routing: str = "single",
    ) -> None:
        self.topo = ClusterTopology(spec)
        self.router = make_router(self.topo, routing, seed=seed)
        self.transport = FluidTransport(self.topo, impl=impl)
        self.rng = np.random.default_rng(seed)
        self.meta = TransferMeta(kind="fetch")
        self.endpoints = self.topo.endpoints()
        self._flow_serial = 0
        for _ in range(num_flows):
            self._add_one()
        self.transport.recompute_rates()

    def _add_one(self) -> None:
        src, dst = self.rng.choice(self.endpoints, size=2, replace=False)
        self._flow_serial += 1
        self.transport.add_flow(
            int(src), int(dst), 1e12,
            self.router.path_for_flow(
                int(src), int(dst), key=self._flow_serial
            ),
            self.meta,
        )

    def churn(self, events: int = _EVENTS_PER_ROUND) -> None:
        transport = self.transport
        for _ in range(events):
            slot = int(self.rng.choice(np.flatnonzero(transport._active)))
            transport._finish(slot)
            self._add_one()
            transport.recompute_rates()


@pytest.mark.parametrize(
    "num_flows", [2000, 8000, 32000], ids=["n2000", "n8000", "n32000"]
)
def test_event_latency_incremental(benchmark, num_flows):
    harness = _ChurnHarness("incremental", num_flows)
    benchmark(harness.churn)
    assert harness.transport.utilization_snapshot().max() <= 1.05
    # The incremental path must actually be taken, not fall back to
    # full re-solves every event.
    inc = harness.transport._inc
    assert inc.incremental_solves > inc.full_solves


@pytest.mark.parametrize("num_flows", [2000, 8000], ids=["n2000", "n8000"])
def test_event_latency_reference(benchmark, num_flows):
    """From-scratch baseline at the sizes where it finishes in seconds.

    At 32k flows the reference loop costs ~300 ms *per event*; the
    incremental/reference speedup there is documented in EXPERIMENTS.md
    rather than re-measured on every bench run.
    """
    harness = _ChurnHarness("reference", num_flows)
    benchmark(harness.churn)
    assert harness.transport.utilization_snapshot().max() <= 1.05


@pytest.mark.parametrize("num_flows", [2000, 8000], ids=["n2000", "n8000"])
def test_event_latency_fat_tree_ecmp(benchmark, bench_record, num_flows):
    """Incremental-allocator churn on the paper-scale k=16 fat-tree.

    ECMP routing spreads flows over up to 64 equal-cost cross-pod
    paths, so the incidence matrix is denser and less tree-structured
    than the 2-tier baseline — the realistic worst case for the
    incremental solver's frontier updates.
    """
    harness = _ChurnHarness(
        "incremental", num_flows, spec=FAT_TREE_SPEC, routing="ecmp",
    )
    benchmark(harness.churn)
    assert harness.transport.utilization_snapshot().max() <= 1.05
    inc = harness.transport._inc
    assert inc.incremental_solves > inc.full_solves
    bench_record(
        f"fat_tree_allocator_n{num_flows}",
        {
            "servers": FAT_TREE_SPEC.racks * FAT_TREE_SPEC.servers_per_rack,
            "fat_tree_k": FAT_TREE_SPEC.fat_tree_k,
            "num_links": int(harness.topo.num_links),
            "flows": num_flows,
            "events_per_round": _EVENTS_PER_ROUND,
            "routing": "ecmp",
        },
    )


def test_event_latency_queued(benchmark, bench_record):
    """Tick-stepping cost of the queued (DCTCP) transport under load.

    A 32-to-1 incast holds every queue busy, so each measured span pays
    the full per-tick path: pacing, queue integration, marking, round
    closes.  The recorded metric is wall time per simulated tick — the
    queued transports' unit of work, as arrival/departure churn is for
    the fluid allocators.
    """
    from repro.simulation.cc import CongestionControlConfig
    from repro.simulation.cc.transport import QueuedTransport

    params = CongestionControlConfig()
    spec = ClusterSpec(racks=2, servers_per_rack=32, racks_per_vlan=2,
                       external_hosts=0)
    topo = ClusterTopology(spec)
    router = Router(topo)
    transport = QueuedTransport(topo, impl="dctcp", params=params)
    victim = 0
    meta = TransferMeta(kind="incast")
    for src in topo.servers_in_rack(1):
        transport.add_flow(
            int(src), victim, 1e12, router.path_links(int(src), victim), meta,
        )

    span = 200 * params.tick
    cursor = {"now": 0.0}

    def advance():
        cursor["now"] += span
        transport.advance_to(cursor["now"])

    benchmark(advance)
    assert int(transport.ticks) > 0
    # The timing entry's wall_seconds divided by ticks_per_round is the
    # per-tick latency; recorded here so `repro bench compare` keeps a
    # flat timing list while the scale metrics stay self-describing.
    bench_record(
        "queued_transport_tick",
        {
            "flows": 32,
            "ticks_per_round": 200,
            "ticks_total": int(transport.ticks),
        },
    )


def test_paper_scale_campaign(benchmark, bench_record, report):
    """End-to-end 1536-server campaign: wall-clock plus peak RSS."""
    from repro.config import SimulationConfig
    from repro.simulation.simulator import simulate
    from repro.telemetry.resources import read_rss_bytes
    from repro.workload.generator import WorkloadConfig

    config = SimulationConfig(
        cluster=PAPER_SPEC,
        workload=WorkloadConfig(job_arrival_rate=4.0),
        duration=15.0,
        seed=7,
        transport_impl="incremental",
    )
    result = benchmark.pedantic(simulate, args=(config,), rounds=1, iterations=1)
    assert result.stats["transfers_completed"] > 0

    peak_rss = read_rss_bytes()
    stats = result.stats
    bench_record(
        "paper_scale_campaign",
        {
            "servers": PAPER_SPEC.racks * PAPER_SPEC.servers_per_rack,
            "duration_simulated_seconds": config.duration,
            "peak_rss_bytes": peak_rss,
            "transfers_completed": int(stats["transfers_completed"]),
            "events_processed": int(stats["events_processed"]),
            "rate_recomputes": int(stats["rate_recomputes"]),
        },
    )
    rss_mb = peak_rss / 1e6 if peak_rss else float("nan")
    report(
        "paper-scale campaign (1536 servers, incremental allocator): "
        f"{config.duration:.0f}s simulated, peak RSS {rss_mb:.0f} MB, "
        f"{int(stats['transfers_completed'])} transfers completed"
    )
