"""T-S2: instrumentation overhead accounting (paper §2)."""

from repro.experiments import format_table, table_s2


def test_table_s2_overhead(benchmark, standard_dataset, report):
    result = benchmark.pedantic(
        table_s2.run, args=(standard_dataset,), rounds=1, iterations=1
    )
    report(format_table("T-S2: instrumentation overhead (§2)",
                        result.rows()))
    # §2 claims, shape-level.
    assert result.report.cpu_utilization_increase_pct < 5.0
    assert result.report.disk_utilization_increase_pct < 5.0
    assert result.report.compression_ratio >= 10.0
    assert result.report.throughput_drop_mbps < 1.0
