"""Trace-store benchmarks: streaming vs in-memory analysis.

Standalone (not pytest-benchmark): run ``PYTHONPATH=src python
benchmarks/bench_trace.py`` and it writes ``benchmarks/BENCH_trace.json``
with

* wall time and peak traced allocations for the traditional in-memory
  pipeline (load the full trace, then TM + flows + congestion) vs one
  streaming pass (:func:`repro.trace.analyze.analyze_trace`);
* a chunk-size sweep plus a trace-size scaling pair showing the
  streaming pass's peak memory follows the *chunk* size, not the trace
  size — the property that lets the same code chew through a
  month-long campaign;
* a built-in exactness check (streamed == in-memory, exact equality)
  so the speed numbers can't silently come from a wrong answer.

Peak memory is ``tracemalloc``'s traced peak (numpy registers its
allocations), sampled per measurement so runs don't contaminate each
other.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
import time
import tracemalloc

from repro.cluster.topology import ClusterSpec
from repro.config import SimulationConfig, WorkloadConfig
from repro.instrumentation.collector import CollectorConfig
from repro.core.congestion import congestion_summary
from repro.core.flows import reconstruct_flows
from repro.core.traffic_matrix import tm_series_from_events
from repro.trace import TraceReader, analyze_trace, check_against_inmemory, record_trace
from repro.trace.analyze import DEFAULT_TM_WINDOW, _duration_from, _topology_from_meta

CHUNK_SIZES = [1024, 8192, 65536]
SCALING_CHUNK_SIZE = 8192
SCALING_EVENT_CAPS = (16, 64)


def bench_config() -> SimulationConfig:
    """Big enough that chunking matters, small enough to run in seconds.

    The collector is tuned dense (small write size, high event cap) so
    events-per-flow lands in the regime the streaming layer exists for:
    raw event volume dwarfing the per-flow state, as in the paper's
    multi-week socket logs.
    """
    return SimulationConfig(
        cluster=ClusterSpec(racks=4, servers_per_rack=8, racks_per_vlan=2,
                            external_hosts=2),
        workload=WorkloadConfig(job_arrival_rate=0.4, day_load_factors=(1.0,),
                                day_length=120.0),
        collector=CollectorConfig(chunk_bytes=1e6, max_events_per_transfer=64),
        duration=120.0,
        seed=42,
    )


def _measured(fn):
    """(wall seconds, tracemalloc peak bytes, result) for one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return wall, peak, result


def bench_inmemory(path) -> dict:
    def run():
        reader = TraceReader(path)
        log = reader.read_all()
        topology = _topology_from_meta(reader.meta)
        tm = tm_series_from_events(log, topology, DEFAULT_TM_WINDOW,
                                   _duration_from(reader))
        flows = reconstruct_flows(log)
        loads = reader.linkloads()
        observed = loads.utilization_matrix()[loads.observed_links]
        summary = congestion_summary(observed, bin_width=loads.bin_width)
        return len(flows), float(tm.matrices.sum()), len(summary.episodes)

    wall, peak, headline = _measured(run)
    return {
        "wall_seconds": round(wall, 3),
        "peak_traced_bytes": peak,
        "num_flows": headline[0],
    }


def bench_streaming(path) -> dict:
    wall, peak, analysis = _measured(lambda: analyze_trace(path))
    return {
        "wall_seconds": round(wall, 3),
        "peak_traced_bytes": peak,
        "num_flows": len(analysis.flows),
    }


def main() -> None:
    import os

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-trace-"))
    config = bench_config()
    try:
        sweep = []
        for chunk_size in CHUNK_SIZES:
            path = workdir / f"chunk-{chunk_size}.reprotrace"
            start = time.perf_counter()
            record_trace(config, path, chunk_size=chunk_size)
            record_seconds = time.perf_counter() - start
            reader = TraceReader(path)
            entry = {
                "chunk_size": chunk_size,
                "chunks": reader.num_chunks,
                "rows": reader.total_rows,
                "bytes_on_disk": reader.bytes_on_disk(),
                "record_seconds": round(record_seconds, 3),
                "streaming": bench_streaming(path),
            }
            sweep.append(entry)

        # One exactness gate + the in-memory baseline, on the finest-chunked
        # trace (where streaming differs from loading the most).
        baseline_path = workdir / f"chunk-{CHUNK_SIZES[0]}.reprotrace"
        checks = check_against_inmemory(baseline_path)
        assert checks["all_equal"], checks
        inmemory = bench_inmemory(baseline_path)

        # Scale the trace, hold the chunk size AND the flow population:
        # the same workload logged at higher event density (bigger
        # ``max_events_per_transfer``) yields a several-times-larger
        # trace over identical flows.  The in-memory peak must track the
        # trace; the streaming peak is chunk + live-flow state and barely
        # moves.
        scaling = []
        for cap in SCALING_EVENT_CAPS:
            import dataclasses

            dense = dataclasses.replace(
                config,
                collector=CollectorConfig(
                    chunk_bytes=0.25e6, max_events_per_transfer=cap
                ),
            )
            path = workdir / f"scale-{cap}.reprotrace"
            record_trace(dense, path, chunk_size=SCALING_CHUNK_SIZE)
            scaling.append({
                "max_events_per_transfer": cap,
                "rows": TraceReader(path).total_rows,
                "inmemory_peak_bytes": bench_inmemory(path)["peak_traced_bytes"],
                "streaming_peak_bytes": bench_streaming(path)["peak_traced_bytes"],
            })
        trace_growth = scaling[1]["rows"] / scaling[0]["rows"]
        inmemory_growth = (
            scaling[1]["inmemory_peak_bytes"] / scaling[0]["inmemory_peak_bytes"]
        )
        streaming_growth = (
            scaling[1]["streaming_peak_bytes"] / scaling[0]["streaming_peak_bytes"]
        )

        payload = {
            "schema_version": 1,
            "host": {"cpu_count": os.cpu_count()},
            "config": {
                "racks": config.cluster.racks,
                "servers_per_rack": config.cluster.servers_per_rack,
                "duration": config.duration,
                "seed": config.seed,
            },
            "inmemory": inmemory,
            "chunk_size_sweep": sweep,
            "trace_size_scaling": scaling,
            "streamed_equals_inmemory": checks["all_equal"],
            # The headline property: every streaming pass peaks below
            # the load-everything baseline, and doubling the trace grows
            # the in-memory peak far faster than the streaming peak —
            # memory follows the chunk, not the trace.
            "streaming_peak_vs_inmemory": round(
                min(e["streaming"]["peak_traced_bytes"] for e in sweep)
                / inmemory["peak_traced_bytes"], 3
            ),
            "trace_rows_growth": round(trace_growth, 2),
            "inmemory_peak_growth": round(inmemory_growth, 2),
            "streaming_peak_growth": round(streaming_growth, 2),
            "streaming_peak_bounded_by_chunk": streaming_growth < inmemory_growth,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    out = pathlib.Path(__file__).parent / "BENCH_trace.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
