"""Benchmark fixtures: one standard campaign per session.

The standard campaign (96 servers, eight scaled days) takes a couple of
minutes to build and is shared — memoised — by every benchmark.  Each
benchmark appends its paper-vs-measured table to a session report that is
printed at the end and written to ``benchmarks/report.txt``.

The session also runs under a telemetry session: the campaign build is
traced and metered, and ``pytest_sessionfinish`` writes
``benchmarks/BENCH_core_ops.json`` — per-benchmark wall times plus the
campaign's metrics snapshot — so benchmark trajectories are
machine-readable across commits.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import build_dataset, standard_config
from repro.experiments.common import ExperimentDataset
from repro.telemetry import Telemetry

_REPORT: list[str] = []
_WALL_SECONDS: dict[str, float] = {}
_TELEMETRY = Telemetry()


@pytest.fixture(scope="session")
def standard_dataset() -> ExperimentDataset:
    """The standard measurement campaign, built once per session."""
    return build_dataset(standard_config(), telemetry=_TELEMETRY)


@pytest.fixture()
def report():
    """Callable that records a table for the end-of-session report."""

    def add(text: str) -> None:
        _REPORT.append(text)

    return add


def pytest_runtest_logreport(report):
    if report.when == "call":
        _WALL_SECONDS[report.nodeid] = report.duration


def _write_bench_json(directory: pathlib.Path) -> None:
    from repro.telemetry.tracing import aggregate_spans

    payload = {
        "schema_version": 1,
        "benchmarks": [
            {"id": nodeid, "wall_seconds": seconds}
            for nodeid, seconds in sorted(_WALL_SECONDS.items())
        ],
        "campaign_timings": aggregate_spans(_TELEMETRY.tracer.spans),
        "campaign_metrics": _TELEMETRY.metrics.snapshot(),
    }
    out = directory / "BENCH_core_ops.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")


def pytest_sessionfinish(session, exitstatus):
    directory = pathlib.Path(__file__).parent
    if _WALL_SECONDS:
        _write_bench_json(directory)
    if not _REPORT:
        return
    body = "\n\n".join(_REPORT)
    banner = "\n" + "=" * 72 + "\nPAPER vs MEASURED (this session)\n" + "=" * 72
    print(banner)
    print(body)
    out = directory / "report.txt"
    out.write_text(body + "\n")
