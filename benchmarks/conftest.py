"""Benchmark fixtures: one standard campaign + standardized timing.

The standard campaign (96 servers, eight scaled days) takes a couple of
minutes to build and is shared — memoised — by every benchmark.  Each
benchmark appends its paper-vs-measured table to a session report that is
printed at the end and written to ``benchmarks/report.txt``.

Timing goes through the shared :func:`repro.bench.timing.measure`
helper, so every benchmark in every file gets identical repeat/min
semantics — warmup discarded, best-of-rounds reported — instead of each
file's ad-hoc (and mutually incomparable) treatment of warm-up effects.
The ``benchmark`` fixture keeps the familiar call styles::

    result = benchmark(fn, *args)                 # repeat/min defaults
    result = benchmark.pedantic(fn, args=(), rounds=1, iterations=1)

``pytest_sessionfinish`` writes the collected timings as a schema-v2
``BENCH_*.json`` (see :mod:`repro.bench.results`) — to
``benchmarks/BENCH_core_ops.json`` by default, or wherever the
``REPRO_BENCH_OUT`` environment variable points (that is how
``repro bench run`` collects results from its pytest subprocess).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.results import BenchResult, write_results
from repro.bench.timing import Timing, measure
from repro.experiments import build_dataset, standard_config
from repro.experiments.common import ExperimentDataset
from repro.telemetry import Telemetry

_REPORT: list[str] = []
_TIMINGS: dict[str, Timing] = {}
_RECORDS: dict[str, dict] = {}
_TELEMETRY = Telemetry()
_PROFILER = None


@pytest.fixture(scope="session")
def standard_dataset() -> ExperimentDataset:
    """The standard measurement campaign, built once per session."""
    return build_dataset(standard_config(), telemetry=_TELEMETRY)


@pytest.fixture()
def report():
    """Callable that records a table for the end-of-session report."""

    def add(text: str) -> None:
        _REPORT.append(text)

    return add


class _Benchmark:
    """Standardized timing entry point handed to each benchmark."""

    def __init__(self, nodeid: str) -> None:
        self._nodeid = nodeid

    def _record(self, timing: Timing) -> None:
        _TIMINGS[self._nodeid] = timing

    def __call__(self, fn, *args, **kwargs):
        result, timing = measure(
            fn, *args, rounds=3, iterations=1, warmup=1, **kwargs
        )
        self._record(timing)
        return result

    def pedantic(self, fn, args=(), kwargs=None, rounds: int = 1,
                 iterations: int = 1, warmup: int = 0):
        result, timing = measure(
            fn, *args, rounds=rounds, iterations=iterations, warmup=warmup,
            **(kwargs or {}),
        )
        self._record(timing)
        return result


@pytest.fixture()
def benchmark(request) -> _Benchmark:
    """Repeat/min timing for one benchmark (shadows pytest-benchmark)."""
    return _Benchmark(request.node.nodeid)


@pytest.fixture()
def bench_record():
    """Record structured non-timing metrics (peak RSS, counters).

    Entries land in the results JSON under ``"scale_metrics"``, keyed by
    the name the benchmark chooses — alongside, not inside, the timing
    entries, so ``repro bench compare`` keeps seeing a flat timing list.
    """

    def record(name: str, payload: dict) -> None:
        _RECORDS[name] = payload

    return record


def pytest_configure(config):
    # If pytest-benchmark happens to be installed, unregister it: its
    # makereport hook rejects any `benchmark` fixture that is not its
    # own, and this suite supplies the standardized one above.
    plugin = config.pluginmanager.get_plugin("pytest-benchmark")
    if plugin is not None:
        config.pluginmanager.unregister(plugin)
    # ``repro bench run --profile`` asks for a whole-session cProfile
    # (see repro.bench.runner): the dump lands next to the BENCH json.
    if os.environ.get("REPRO_BENCH_PROFILE"):
        import cProfile

        global _PROFILER
        _PROFILER = cProfile.Profile()
        _PROFILER.enable()


def _write_bench_json(directory: pathlib.Path) -> None:
    from repro.telemetry.tracing import aggregate_spans

    results = [
        BenchResult(
            id=nodeid,
            wall_seconds=timing.best,
            mean_seconds=timing.mean,
            rounds=timing.rounds,
            iterations=timing.iterations,
        )
        for nodeid, timing in _TIMINGS.items()
    ]
    out = os.environ.get("REPRO_BENCH_OUT")
    path = pathlib.Path(out) if out else directory / "BENCH_core_ops.json"
    extra = {
        "campaign_timings": aggregate_spans(_TELEMETRY.tracer.spans),
        "campaign_metrics": _TELEMETRY.metrics.snapshot(),
    }
    if _RECORDS:
        extra["scale_metrics"] = _RECORDS
    write_results(path, results, extra=extra)


def _write_profile_dump(directory: pathlib.Path, top_n: int = 40) -> None:
    """Dump the session profile next to the BENCH json (``--profile``)."""
    import io
    import pstats

    _PROFILER.disable()
    out = os.environ.get("REPRO_BENCH_OUT")
    bench_path = pathlib.Path(out) if out else directory / "BENCH_core_ops.json"
    profile_path = bench_path.with_suffix(".profile.txt")
    stream = io.StringIO()
    stats = pstats.Stats(_PROFILER, stream=stream)
    stats.sort_stats("cumulative").print_stats(top_n)
    profile_path.write_text(stream.getvalue())
    print(f"profile dump written to {profile_path}")


def pytest_sessionfinish(session, exitstatus):
    directory = pathlib.Path(__file__).parent
    if _TIMINGS:
        _write_bench_json(directory)
    if _PROFILER is not None:
        _write_profile_dump(directory)
    if not _REPORT:
        return
    body = "\n\n".join(_REPORT)
    banner = "\n" + "=" * 72 + "\nPAPER vs MEASURED (this session)\n" + "=" * 72
    print(banner)
    print(body)
    out = directory / "report.txt"
    out.write_text(body + "\n")
