"""Benchmark fixtures: one standard campaign per session.

The standard campaign (96 servers, eight scaled days) takes a couple of
minutes to build and is shared — memoised — by every benchmark.  Each
benchmark appends its paper-vs-measured table to a session report that is
printed at the end and written to ``benchmarks/report.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import build_dataset, standard_config
from repro.experiments.common import ExperimentDataset

_REPORT: list[str] = []


@pytest.fixture(scope="session")
def standard_dataset() -> ExperimentDataset:
    """The standard measurement campaign, built once per session."""
    return build_dataset(standard_config())


@pytest.fixture()
def report():
    """Callable that records a table for the end-of-session report."""

    def add(text: str) -> None:
        _REPORT.append(text)

    return add


def pytest_sessionfinish(session, exitstatus):
    if not _REPORT:
        return
    body = "\n\n".join(_REPORT)
    banner = "\n" + "=" * 72 + "\nPAPER vs MEASURED (this session)\n" + "=" * 72
    print(banner)
    print(body)
    out = pathlib.Path(__file__).parent / "report.txt"
    out.write_text(body + "\n")
