#!/usr/bin/env python3
"""An operator's congestion post-mortem (paper §4.2's workflow).

Given a campaign's logs, answer the questions the paper's operators
asked: which links ran hot and for how long, which applications put the
bytes there (reduce shuffles? extract remote reads? evacuations?), and
did congestion actually hurt jobs (read-failure uplift).

Run:  python examples/congestion_postmortem.py [seed]
"""

from __future__ import annotations

import sys

from repro.core import (
    attribute_traffic,
    congestion_summary,
    incast_audit,
    read_failure_impact,
)
from repro.experiments import build_dataset, small_config
from repro.util.units import format_bytes
from repro.viz import figure8_bars


def main(seed: int = 7) -> None:
    print("Building campaign dataset...")
    dataset = build_dataset(small_config(seed=seed))
    result = dataset.result
    topology = result.topology

    print("\n== Where and for how long were links hot? ==")
    summary = congestion_summary(
        dataset.observed_utilization,
        threshold=dataset.config.congestion_threshold,
        link_ids=dataset.observed_links,
    )
    print(f"  links with >=10 s congestion: "
          f"{summary.frac_links_hot_at_least_10s:.0%} of "
          f"{summary.num_links} inter-switch links")
    print(f"  episodes over 10 s: {summary.episodes_over_10s}; "
          f"longest {summary.longest_episode:.0f} s")
    worst = sorted(summary.episodes, key=lambda e: -e.duration)[:5]
    for episode in worst:
        link = topology.links[episode.link_id]
        print(f"    link {link.src}->{link.dst}: {episode.duration:.0f} s "
              f"starting t={episode.start:.0f}")

    print("\n== Who put the bytes on the hot links? ==")
    attribution = attribute_traffic(
        dataset.flows, result.applog, result.router, dataset.utilization,
        threshold=dataset.config.congestion_threshold,
    )
    for label, volume in attribution.top_hot_contributors(5):
        print(f"  {label:>12}: {format_bytes(volume)}")
    if "evacuation" in attribution.hot_bytes_by_kind:
        print("  (evacuations on the list: the paper's 'unexpected source'"
              " of long congestion)")

    print("\n== Did congestion hurt jobs? ==")
    impact = read_failure_impact(
        result.applog, dataset.flows, result.router, dataset.utilization,
        day_length=dataset.day_length,
        threshold=dataset.config.congestion_threshold,
    )
    pooled = impact.pooled_uplift_ratio
    pooled_text = "inf" if pooled == float("inf") else f"{pooled:.1f}x"
    print(f"  pooled P(read failure | congested) / P(read failure | clear): "
          f"{pooled_text} (paper median: 1.1x uplift)")
    print()
    print(figure8_bars(impact))

    print("\n== Incast preconditions (paper §4.4) ==")
    audit = incast_audit(
        dataset.flows, topology,
        connection_cap=dataset.config.workload.max_connections,
    )
    print(f"  peak simultaneous inbound flows at any server: {audit.peak_fan_in}")
    print(f"  flows staying in-rack: {audit.frac_flows_in_rack:.0%}; "
          f"in-VLAN: {audit.frac_flows_in_vlan:.0%}")
    print(f"  median concurrent jobs multiplexing the network: "
          f"{audit.median_concurrent_jobs:.0f}")
    print("  -> connection caps, local placement and multiplexing keep the "
          "incast preconditions from lining up, as the paper argues.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
