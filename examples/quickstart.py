#!/usr/bin/env python3
"""Quickstart: simulate a measurement campaign and look at the traffic.

Builds a small cluster (6 racks x 8 servers), runs a few minutes of
Scope-style workload over it with socket-level instrumentation attached,
then reproduces the paper's headline views: the Fig 2 traffic-matrix
heatmap, flow duration statistics, and congestion coverage.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import SimulationConfig, simulate
from repro.cluster import ClusterSpec
from repro.core import (
    congestion_summary,
    duration_stats,
    pattern_summary,
    reconstruct_flows,
    tm_series_from_events,
)
from repro.util.units import GBPS, format_bytes
from repro.viz import figure2_heatmap
from repro.workload import WorkloadConfig


def main(seed: int = 7) -> None:
    config = SimulationConfig(
        cluster=ClusterSpec(
            racks=6, servers_per_rack=8, racks_per_vlan=3, external_hosts=2,
            tor_uplink_capacity=2.5 * GBPS,
        ),
        workload=WorkloadConfig(job_arrival_rate=0.3),
        duration=180.0,
        seed=seed,
    )
    print(f"Simulating {config.duration:.0f}s of cluster life (seed={seed})...")
    result = simulate(config)
    print(f"  {result.topology.describe()}")
    print(f"  jobs finished: {result.stats['jobs_finished']:.0f} / "
          f"{result.stats['jobs_submitted']:.0f}")
    print(f"  socket events logged: {result.stats['socket_events']:.0f}")

    # The analysis pipeline works from the socket log, as the paper's did.
    flows = reconstruct_flows(result.socket_log)
    print(f"\nReconstructed {len(flows)} flows "
          f"({format_bytes(flows.total_bytes())} total)")

    stats = duration_stats(flows)
    print(f"  flows under 10 s: {stats.frac_flows_under_10s:.1%} "
          f"(paper: more than 80%)")
    print(f"  bytes in flows under 25 s: {stats.frac_bytes_under_25s:.1%} "
          f"(paper: more than 50%)")

    series = tm_series_from_events(result.socket_log, result.topology,
                                   window=10.0, duration=config.duration)
    summary = pattern_summary(series.total(), result.topology,
                              series.endpoint_ids)
    print(f"  in-rack byte share: {summary.in_rack_byte_fraction:.1%} "
          f"(work-seeks-bandwidth)")

    observed = np.array(
        [link.link_id for link in result.topology.inter_switch_links()]
    )
    utilization = result.link_loads.utilization_matrix()
    congestion = congestion_summary(utilization[observed], link_ids=observed)
    print(f"  links hot >=10 s: {congestion.frac_links_hot_at_least_10s:.1%} "
          f"(paper: 86%)")

    # A representative busy 10 s window, rendered like Fig 2.
    totals = series.totals_per_window()
    window = int(np.argsort(totals)[int(totals.size * 0.8)])
    print()
    print(figure2_heatmap(series.matrices[window],
                          title=f"Fig 2 style heatmap (10 s window #{window})"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
