#!/usr/bin/env python3
"""Use the paper's §4.1 characterisation as a standalone traffic generator.

"We believe that figs. 2 to 4 together ... comprise a model that can be
used in simulating such traffic."  This example draws traffic matrices
and flow arrival processes directly from that parametric model — no
workload simulation — the way a network-design study would feed a
simulator or testbed.

Run:  python examples/synthetic_traffic.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.cluster import ClusterSpec, ClusterTopology
from repro.core.flow_stats import estimate_mode_spacing
from repro.core.patterns import correspondent_stats, pair_byte_stats
from repro.synthetic import StopAndGoArrivals, SyntheticTrafficModel
from repro.util.units import format_bytes
from repro.viz import figure2_heatmap


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    topology = ClusterTopology(
        ClusterSpec(racks=10, servers_per_rack=10, racks_per_vlan=5,
                    external_hosts=0)
    )
    model = SyntheticTrafficModel()  # defaults = the paper's statistics
    print(f"Drawing a synthetic TM window for {topology.describe()}")
    tm = model.sample_server_tm(topology, rng)
    endpoint_ids = np.arange(topology.num_servers)

    stats = pair_byte_stats(tm, topology, endpoint_ids)
    print(f"  P(no traffic) in-rack:    {stats.prob_zero_in_rack:.1%} "
          f"(model target 89%)")
    print(f"  P(no traffic) cross-rack: {stats.prob_zero_cross_rack:.2%} "
          f"(model target 99.5%)")
    correspondents = correspondent_stats(tm, topology, endpoint_ids)
    print(f"  median correspondents: {correspondents.median_in_rack:.0f} in-rack, "
          f"{correspondents.median_cross_rack:.0f} cross-rack "
          f"(paper: 2 and 4)")
    print(f"  total window volume: {format_bytes(tm.sum())}")
    print()
    print(figure2_heatmap(tm, title="Synthetic TM (one window)"))
    print()

    print("Flow arrivals with the paper's stop-and-go structure:")
    arrivals = StopAndGoArrivals(quantum=0.015)
    times = arrivals.sample_times(30.0, rng)
    gaps = np.diff(times)
    spacing = estimate_mode_spacing(gaps)
    print(f"  {times.size} arrivals over 30 s "
          f"({times.size / 30.0:.1f} flows/s at one vantage point)")
    print(f"  detected periodic mode spacing: {spacing * 1e3:.1f} ms "
          f"(paper: ~15 ms)")
    print(f"  inter-arrival p99: {np.percentile(gaps, 99):.2f} s "
          f"(long tail, paper: up to ~10 s)")

    print()
    print("ToR-level TM (for tomography studies):")
    tor = model.sample_tor_tm(topology, rng)
    nonzero = int((tor > 0).sum())
    print(f"  {tor.shape[0]}x{tor.shape[1]} matrix, {nonzero} non-zero "
          f"entries, volume {format_bytes(tor.sum())}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
