#!/usr/bin/env python3
"""Can SNMP link counters replace server instrumentation? (paper §5)

Runs the paper's tomography evaluation: ToR-level ground-truth TMs from
a simulated campaign, link counts derived from them, and three
estimators — tomogravity, tomogravity with the job-metadata prior, and
sparsity maximisation — scored by RMSRE over the entries carrying 75% of
traffic.  Also contrasts the datacenter regime against an ISP-style
gravity regime where tomogravity excels.

Run:  python examples/tomography_study.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.experiments import (
    build_dataset,
    fig12,
    fig13,
    fig14,
    format_table,
    small_config,
)
from repro.experiments.ablations import run_gravity_regime_ablation
from repro.util.ascii import render_cdf


def main(seed: int = 7) -> None:
    print("Building campaign dataset...")
    dataset = build_dataset(small_config(seed=seed))

    result12 = fig12.run(dataset)
    print(format_table("F12 — estimation error", result12.rows()))
    print()
    print(render_cdf(result12.error_cdfs(),
                     title="Fig 12: RMSRE CDF by method"))
    print()

    result13 = fig13.run(dataset)
    print(format_table("F13 — error vs sparsity", result13.rows()))
    if result13.errors.size >= 2:
        order = np.argsort(result13.sparsity_fractions)
        print("\n  sparsity-fraction -> tomogravity RMSRE (per window):")
        for index in order:
            fraction = result13.sparsity_fractions[index]
            error = result13.errors[index]
            print(f"    {fraction:6.1%} -> {error:6.1%}")
    print()

    result14 = fig14.run(dataset)
    print(format_table("F14 — sparsity of estimated TMs", result14.rows()))
    print()
    print(render_cdf(result14.sparsity_cdfs(),
                     title="Fig 14: fraction of entries carrying 75% of volume"))
    print()

    print("Why does tomography fail here but work for ISPs?  The regime test:")
    regime = run_gravity_regime_ablation(seed=seed)
    print(format_table("A3 — gravity regime ablation", regime.rows()))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
