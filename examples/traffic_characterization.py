#!/usr/bin/env python3
"""Full §4 traffic characterisation of a simulated campaign.

Reproduces every microscopic and macroscopic statistic the paper reports
for its cluster — pair-byte distributions, correspondent counts,
congestion coverage and episode lengths, victim-flow rates, flow
durations, TM churn and inter-arrival structure — and renders the
figures as ASCII.

Run:  python examples/traffic_characterization.py [seed]
"""

from __future__ import annotations

import sys

from repro.experiments import (
    build_dataset,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    format_table,
    small_config,
)
from repro.viz import (
    figure6_episode_cdf,
    figure7_victim_cdf,
    figure8_bars,
    figure9_duration_cdfs,
    figure10_series,
    figure11_interarrival_cdfs,
)


def main(seed: int = 7) -> None:
    print("Building campaign dataset (one small simulated cluster)...")
    dataset = build_dataset(small_config(seed=seed))
    print(f"  {dataset.result.topology.describe()}\n")

    sections = [
        ("F2", fig02.run(dataset), None),
        ("F3", fig03.run(dataset), None),
        ("F4", fig04.run(dataset), None),
        ("F5", fig05.run(dataset), None),
        ("F6", fig06.run(dataset),
         lambda r: figure6_episode_cdf(r.summary)),
        ("F7", fig07.run(dataset),
         lambda r: figure7_victim_cdf(r.comparison)),
        ("F8", fig08.run(dataset),
         lambda r: figure8_bars(r.study)),
        ("F9", fig09.run(dataset),
         lambda r: figure9_duration_cdfs(r.stats)),
        ("F10", fig10.run(dataset),
         lambda r: figure10_series(r.stats)),
        ("F11", fig11.run(dataset),
         lambda r: figure11_interarrival_cdfs(r.stats)),
    ]
    for name, result, renderer in sections:
        print(format_table(f"{name} — paper vs this reproduction", result.rows()))
        if renderer is not None:
            print()
            print(renderer(result))
        print("\n" + "-" * 72 + "\n")

    # The Fig 2 heatmap last: it is the widest output.
    print(fig02.run(dataset).render())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
