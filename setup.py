"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so the package can be installed in environments without the
``wheel`` package or network access (``python setup.py develop``), where
pip's PEP 517 editable path is unavailable.
"""

from setuptools import setup

setup()
