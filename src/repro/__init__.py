"""repro — a reproduction of *The Nature of Datacenter Traffic:
Measurements & Analysis* (Kandula, Sengupta, Greenberg, Patel, Chaiken;
IMC 2009).

The package has three layers:

* **substrates** — :mod:`repro.cluster` (topology/routing),
  :mod:`repro.workload` (Cosmos-like block store, Scope-like jobs,
  locality scheduler, executor), :mod:`repro.simulation` (fluid
  transport), :mod:`repro.instrumentation` (ETW-like socket logging,
  application logs, SNMP counters);
* **analyses** — :mod:`repro.core` (flow reconstruction, traffic
  matrices, patterns, congestion, churn, impact) and
  :mod:`repro.tomography` (tomogravity, sparsity maximisation, job-aware
  priors);
* **experiments** — :mod:`repro.experiments`, one module per paper
  figure, shared by the benchmark harness and EXPERIMENTS.md.

Quickstart::

    from repro import SimulationConfig, simulate
    from repro.core import reconstruct_flows, duration_stats

    result = simulate(SimulationConfig(duration=60.0, seed=1))
    flows = reconstruct_flows(result.socket_log)
    print(duration_stats(flows).frac_flows_under_10s)
"""

from .cluster import ClusterSpec, ClusterTopology, Router
from .config import SimulationConfig
from .simulation import SimulationResult, Simulator, simulate
from .telemetry import RunManifest, Telemetry
from .workload import WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "ClusterSpec",
    "ClusterTopology",
    "Router",
    "WorkloadConfig",
    "Simulator",
    "SimulationResult",
    "simulate",
    "Telemetry",
    "RunManifest",
    "__version__",
]
