"""Performance-regression harness.

The repro's north star is running the paper's analyses "as fast as the
hardware allows" at cluster scales well beyond the original testbed —
which makes performance a correctness property worth guarding like any
other.  This package provides the plumbing:

* :mod:`repro.bench.timing` — the shared repeat/min measurement helper
  every benchmark under ``benchmarks/`` goes through, so numbers from
  different files (and different machines) mean the same thing.
* :mod:`repro.bench.results` — the ``BENCH_*.json`` schema: benchmark
  wall-times plus enough host metadata (platform, Python, NumPy, CPU
  count) to judge whether two result files are comparable at all.
* :mod:`repro.bench.compare` — baseline comparison with a configurable
  relative tolerance, producing the delta table CI prints.
* :mod:`repro.bench.runner` — subprocess driver behind
  ``repro bench run``, executing the ``benchmarks/`` suite and
  collecting its JSON output.

The committed ``benchmarks/BENCH_core_ops.json`` is the baseline;
``repro bench run --quick`` followed by ``repro bench compare`` is the
local workflow, and CI runs the same pair as a non-blocking smoke job.
"""

from .compare import ComparisonRow, compare_results, format_table
from .results import BenchResult, host_metadata, load_results, write_results
from .timing import Timing, measure

__all__ = [
    "BenchResult",
    "ComparisonRow",
    "Timing",
    "compare_results",
    "format_table",
    "host_metadata",
    "load_results",
    "measure",
    "write_results",
]
