"""Baseline comparison and the CI delta table.

A benchmark **regresses** when its current ``wall_seconds`` exceeds the
baseline by more than the relative tolerance; it **improves** when it is
faster by the same margin.  The default tolerance is deliberately wide
(25%) because benchmark hosts differ — CI runners are noisy and slower
than developer machines — and the job is to catch order-of-magnitude
slips, not 5% jitter.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from .results import BenchResult, load_results

__all__ = ["ComparisonRow", "compare_results", "format_table"]

DEFAULT_TOLERANCE = 0.25

#: Row statuses, in the order they sort in the table.
_STATUS_ORDER = {"regression": 0, "improved": 1, "ok": 2, "new": 3, "missing": 4}


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's baseline-vs-current verdict."""

    id: str
    baseline_seconds: float | None
    current_seconds: float | None
    #: current / baseline (None when either side is absent).
    ratio: float | None
    #: "ok" | "regression" | "improved" | "new" | "missing"
    status: str


def compare_results(
    baseline: dict[str, BenchResult] | str | pathlib.Path,
    current: dict[str, BenchResult] | str | pathlib.Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[ComparisonRow]:
    """Match benchmarks by id and classify each against ``tolerance``.

    Ids present only in ``current`` are "new"; only in ``baseline``,
    "missing".  Neither counts as a regression.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if not isinstance(baseline, dict):
        baseline = load_results(baseline)
    if not isinstance(current, dict):
        current = load_results(current)
    rows: list[ComparisonRow] = []
    for bench_id in sorted(set(baseline) | set(current)):
        base = baseline.get(bench_id)
        cur = current.get(bench_id)
        if base is None:
            rows.append(ComparisonRow(bench_id, None, cur.wall_seconds, None, "new"))
            continue
        if cur is None:
            rows.append(
                ComparisonRow(bench_id, base.wall_seconds, None, None, "missing")
            )
            continue
        ratio = (
            cur.wall_seconds / base.wall_seconds
            if base.wall_seconds > 0
            else float("inf")
        )
        if ratio > 1.0 + tolerance:
            status = "regression"
        elif ratio < 1.0 - tolerance:
            status = "improved"
        else:
            status = "ok"
        rows.append(
            ComparisonRow(bench_id, base.wall_seconds, cur.wall_seconds, ratio, status)
        )
    rows.sort(key=lambda row: (_STATUS_ORDER[row.status], row.id))
    return rows


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def format_table(rows: list[ComparisonRow], tolerance: float = DEFAULT_TOLERANCE) -> str:
    """Render comparison rows as the aligned delta table CI prints."""
    header = ("benchmark", "baseline", "current", "delta", "status")
    body: list[tuple[str, str, str, str, str]] = []
    for row in rows:
        if row.ratio is None:
            delta = "-"
        else:
            delta = f"{(row.ratio - 1.0) * 100:+.1f}%"
        body.append(
            (
                row.id,
                _fmt_seconds(row.baseline_seconds),
                _fmt_seconds(row.current_seconds),
                delta,
                row.status,
            )
        )
    widths = [
        max(len(header[col]), *(len(line[col]) for line in body)) if body else len(header[col])
        for col in range(5)
    ]
    lines = [
        "  ".join(header[col].ljust(widths[col]) for col in range(5)),
        "  ".join("-" * widths[col] for col in range(5)),
    ]
    for line in body:
        lines.append("  ".join(line[col].ljust(widths[col]) for col in range(5)))
    regressions = sum(1 for row in rows if row.status == "regression")
    lines.append("")
    lines.append(
        f"{len(rows)} benchmark(s), {regressions} regression(s) "
        f"at ±{tolerance * 100:.0f}% tolerance"
    )
    return "\n".join(lines)
