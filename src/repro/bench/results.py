"""``BENCH_*.json`` reading and writing.

Schema (version 2)::

    {
      "schema_version": 2,
      "host": {"platform": ..., "python": ..., "numpy": ...,
               "cpu_count": ..., "timestamp": ...},
      "benchmarks": [
        {"id": "<pytest nodeid>", "wall_seconds": <best per-call s>,
         "mean_seconds": ..., "rounds": ..., "iterations": ...},
        ...
      ],
      ...                                # extra keys pass through
    }

``wall_seconds`` is the repeat/min figure from
:func:`repro.bench.timing.measure` — the comparison key.  Version-1
files (plain ``wall_seconds`` per id, no host block) load fine: the
extra statistics are simply absent, so comparisons against historical
baselines keep working.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from dataclasses import asdict, dataclass

__all__ = ["BenchResult", "host_metadata", "load_results", "write_results"]

SCHEMA_VERSION = 2


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's timing as stored in a ``BENCH_*.json`` file."""

    id: str
    wall_seconds: float
    mean_seconds: float | None = None
    rounds: int | None = None
    iterations: int | None = None


def host_metadata() -> dict:
    """Enough about this machine to judge result comparability."""
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def write_results(
    path: str | pathlib.Path,
    results: list[BenchResult],
    extra: dict | None = None,
) -> dict:
    """Write a schema-v2 results file; returns the payload written."""
    payload: dict = {
        "schema_version": SCHEMA_VERSION,
        "host": host_metadata(),
        "benchmarks": [
            {k: v for k, v in asdict(result).items() if v is not None}
            for result in sorted(results, key=lambda r: r.id)
        ],
    }
    if extra:
        payload.update(extra)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def load_results(path: str | pathlib.Path) -> dict[str, BenchResult]:
    """Load any schema version into ``{id: BenchResult}``."""
    raw = json.loads(pathlib.Path(path).read_text())
    if "benchmarks" not in raw:
        raise ValueError(f"{path}: not a BENCH results file (no 'benchmarks' key)")
    results: dict[str, BenchResult] = {}
    for entry in raw["benchmarks"]:
        results[entry["id"]] = BenchResult(
            id=entry["id"],
            wall_seconds=float(entry["wall_seconds"]),
            mean_seconds=entry.get("mean_seconds"),
            rounds=entry.get("rounds"),
            iterations=entry.get("iterations"),
        )
    return results
