"""Subprocess driver behind ``repro bench run``.

Benchmarks run in a fresh interpreter via ``python -m pytest`` so the
measuring process carries none of the CLI's import or telemetry state,
and so a crashing benchmark cannot take the CLI down with it.  The
``benchmarks/conftest.py`` session writes the results JSON; the output
path is passed down through the ``REPRO_BENCH_OUT`` environment
variable.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

__all__ = ["QUICK_SELECTION", "run_benchmarks"]

#: ``--quick`` runs only benchmarks that need no standard dataset — the
#: session-scoped standard campaign takes minutes to build, while these
#: finish in seconds and still cover the transport hot path end to end.
QUICK_SELECTION = (
    "maxmin_waterfill or small_campaign_simulation"
    " or (event_latency_incremental and n2000)"
)

#: Environment variable the benchmarks conftest reads for the output path.
ENV_BENCH_OUT = "REPRO_BENCH_OUT"
#: When set, benchmarks/conftest.py wraps the whole pytest session in
#: cProfile and dumps the top entries next to the results JSON.
ENV_BENCH_PROFILE = "REPRO_BENCH_PROFILE"


def run_benchmarks(
    out: str | pathlib.Path,
    benchmarks_dir: str | pathlib.Path = "benchmarks",
    quick: bool = False,
    keyword: str | None = None,
    verbose: bool = False,
    profile: bool = False,
) -> int:
    """Run the benchmark suite, writing results JSON to ``out``.

    Returns the pytest exit code (0 = all benchmarks passed).  ``quick``
    restricts to the fast no-dataset subset; ``keyword`` is an explicit
    pytest ``-k`` expression overriding it.  ``profile`` wraps the
    measuring process in cProfile and writes a ``*.profile.txt`` dump
    next to ``out``.
    """
    benchmarks_dir = pathlib.Path(benchmarks_dir)
    if not benchmarks_dir.is_dir():
        raise FileNotFoundError(f"benchmarks directory not found: {benchmarks_dir}")
    out = pathlib.Path(out).resolve()
    # The timing fixture in benchmarks/conftest.py shadows
    # pytest-benchmark's; disable the plugin so it doesn't reject the
    # shadow (it is not a CI dependency, so this also keeps local and CI
    # runs identical).
    command = [
        sys.executable, "-m", "pytest", str(benchmarks_dir),
        "-p", "no:benchmark", "-v" if verbose else "-q",
    ]
    selection = keyword if keyword is not None else (QUICK_SELECTION if quick else None)
    if selection:
        command += ["-k", selection]
    env = dict(os.environ)
    env[ENV_BENCH_OUT] = str(out)
    if profile:
        env[ENV_BENCH_PROFILE] = "1"
    src_root = str(pathlib.Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_root, env.get("PYTHONPATH")) if part
    )
    completed = subprocess.run(command, env=env)
    return completed.returncode
