"""Shared benchmark timing: repeat/min semantics.

Every benchmark measures with the same discipline so numbers are
comparable across files and runs:

* **warmup** iterations run first and are discarded — they absorb lazy
  imports, allocator growth, cache population and branch warm-up, which
  otherwise leak into the first measured round differently per file.
* Each of ``rounds`` measured rounds times ``iterations`` back-to-back
  calls and records the mean per-call time for the round.
* The reported figure is the **minimum** across rounds: for a
  deterministic workload the minimum is the least-noise estimate of the
  code's cost; means and maxima mostly measure the machine's background
  load (Chen & Revels, "Robust benchmarking in noisy environments",
  2016).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Timing", "measure"]


@dataclass(frozen=True)
class Timing:
    """Per-call timing statistics from one :func:`measure` run."""

    #: Minimum mean-per-call seconds across rounds — the headline number.
    best: float
    #: Mean per-call seconds across all measured rounds.
    mean: float
    #: Maximum mean-per-call seconds across rounds.
    worst: float
    rounds: int
    iterations: int
    #: Total measured wall time (excludes warmup).
    total: float


def measure(
    fn: Callable[..., Any],
    *args: Any,
    rounds: int = 5,
    iterations: int = 1,
    warmup: int = 1,
    **kwargs: Any,
) -> tuple[Any, Timing]:
    """Time ``fn(*args, **kwargs)`` with repeat/min semantics.

    Returns ``(result, timing)`` where ``result`` is the return value of
    the final call (so benchmarks can assert on the computed output
    without invoking ``fn`` again outside the timer).
    """
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    result: Any = None
    for _ in range(warmup):
        result = fn(*args, **kwargs)
    per_round: list[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        per_round.append(elapsed / iterations)
    timing = Timing(
        best=min(per_round),
        mean=sum(per_round) / len(per_round),
        worst=max(per_round),
        rounds=rounds,
        iterations=iterations,
        total=sum(t * iterations for t in per_round),
    )
    return result, timing
