"""Command-line interface: ``python -m repro <command>``.

The commands cover the library's workflow:

* ``simulate`` — run a measurement campaign and print its statistics,
  optionally dumping the compressed socket-event log; with
  ``--telemetry`` it also prints progress heartbeats, writes a JSONL
  span trace (``--trace-out``) and records a run manifest
  (``--manifest-out``) pinning config, seed, git version and metrics;
* ``trace`` — record a campaign's socket events to a chunked on-disk
  ``.reprotrace`` store (``record``), list/inspect traces (``ls``,
  ``info``), and run the streaming analyses over one (``analyze``,
  with ``--jobs`` fanning chunks across processes and ``--check``
  asserting exact agreement with the in-memory pipeline);
* ``figures`` — reproduce any subset of the paper's figures against a
  campaign (``--list`` enumerates the experiment registry);
* ``ablations`` — run the registered design-choice ablations;
* ``campaign`` — run the whole experiment suite over multiple seeds
  (``--jobs`` fans seeds across processes) and aggregate mean/CI
  summary rows into a campaign manifest, or report a prior one;
* ``cache`` — inspect or clear the on-disk dataset cache;
* ``telemetry-report`` — render previously written traces/manifests as
  human-readable tables (multiple JSONL traces, or globs, aggregate
  into one rollup);
* ``telemetry`` — render a merged campaign timeline (``timeline``: ASCII
  Gantt, Prometheus text or Chrome ``trace_event`` JSON) and compare two
  timelines/manifests metric-by-metric under a tolerance (``diff``);
* ``validate`` — run the cross-layer invariant checkers
  (:mod:`repro.validate`) over a recorded trace or a freshly built
  campaign, exiting non-zero on any violation;
* ``bench`` — execute the ``benchmarks/`` suite with the standardized
  repeat/min timing harness (``run``, with ``--quick`` for the fast
  subset) and diff the resulting ``BENCH_*.json`` against a committed
  baseline with a configurable tolerance (``compare``).

Figure and ablation names resolve through
:mod:`repro.experiments.registry`; nothing here hard-codes the catalog.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import time as _time

from .cluster.routing import ROUTING_IMPLS
from .cluster.topology import TOPOLOGY_KINDS, ClusterSpec
from .config import SimulationConfig
from .util.units import GBPS, format_bytes, format_bytes_binary
from .workload.generator import WorkloadConfig


def _add_fabric_args(parser: argparse.ArgumentParser) -> None:
    """Topology-family and routing flags shared by simulate/record."""
    parser.add_argument("--topology", choices=TOPOLOGY_KINDS, default="tree",
                        help="fabric to build (default: the paper's tree)")
    parser.add_argument("--fat-tree-k", type=int, default=4, metavar="K",
                        help="arity for --topology fat_tree (sets rack count "
                             "to k*(k/2); --racks is ignored)")
    parser.add_argument("--spines", type=int, default=2,
                        help="spine count for --topology leaf_spine")
    parser.add_argument("--routing", choices=ROUTING_IMPLS, default="single",
                        help="per-flow path selection on multi-path fabrics")


def _cluster_spec_from_args(args: argparse.Namespace) -> ClusterSpec:
    """Build the cluster spec a simulate/record invocation asked for."""
    common = dict(
        servers_per_rack=args.servers_per_rack,
        external_hosts=args.external_hosts,
        tor_uplink_capacity=args.uplink_gbps * GBPS,
    )
    kind = getattr(args, "topology", "tree")
    if kind == "fat_tree":
        return ClusterSpec.fat_tree(k=args.fat_tree_k, **common)
    if kind == "leaf_spine":
        return ClusterSpec.leaf_spine(
            racks=args.racks, spines=args.spines, **common)
    return ClusterSpec(
        racks=args.racks, racks_per_vlan=args.racks_per_vlan, **common)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Nature of Datacenter Traffic' (IMC 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one measurement campaign")
    sim.add_argument("--racks", type=int, default=6)
    sim.add_argument("--servers-per-rack", type=int, default=8)
    sim.add_argument("--racks-per-vlan", type=int, default=3)
    sim.add_argument("--external-hosts", type=int, default=2)
    sim.add_argument("--uplink-gbps", type=float, default=2.5)
    _add_fabric_args(sim)
    sim.add_argument("--duration", type=float, default=120.0)
    sim.add_argument("--arrival-rate", type=float, default=0.3,
                     help="job arrivals per second")
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--dump-log", metavar="PATH",
                     help="write the compressed socket-event log here")
    sim.add_argument("--telemetry", action="store_true",
                     help="instrument the run: heartbeats, spans, metrics, "
                          "and a run manifest")
    sim.add_argument("--trace-out", metavar="PATH",
                     help="write the JSONL span trace here (implies --telemetry)")
    sim.add_argument("--manifest-out", metavar="PATH",
                     help="write the run manifest here (implies --telemetry; "
                          "default derives from --trace-out or repro-manifest.json)")
    sim.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS",
                     help="simulated seconds between progress heartbeats "
                          "(default: duration/5)")

    trace = sub.add_parser(
        "trace", help="record and analyze chunked on-disk socket-event traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_record = trace_sub.add_parser(
        "record", help="simulate a campaign, streaming events to a trace")
    trace_record.add_argument("--racks", type=int, default=6)
    trace_record.add_argument("--servers-per-rack", type=int, default=8)
    trace_record.add_argument("--racks-per-vlan", type=int, default=3)
    trace_record.add_argument("--external-hosts", type=int, default=2)
    trace_record.add_argument("--uplink-gbps", type=float, default=2.5)
    _add_fabric_args(trace_record)
    trace_record.add_argument("--duration", type=float, default=120.0)
    trace_record.add_argument("--arrival-rate", type=float, default=0.3,
                              help="job arrivals per second")
    trace_record.add_argument("--seed", type=int, default=7)
    trace_record.add_argument("--out", default="campaign.reprotrace",
                              metavar="DIR", help="trace directory to create")
    trace_record.add_argument("--chunk-size", type=int, default=None,
                              metavar="ROWS",
                              help="event rows per on-disk chunk")
    trace_record.add_argument("--flush-interval", type=float, default=None,
                              metavar="SECONDS",
                              help="simulated seconds between stream flushes")
    trace_record.add_argument("--overwrite", action="store_true",
                              help="replace an existing trace at --out")
    trace_record.add_argument("--heartbeat", type=float, default=None,
                              metavar="SECONDS",
                              help="simulated seconds between progress "
                                   "heartbeats (default: off)")
    trace_ls = trace_sub.add_parser("ls", help="list traces in a directory")
    trace_ls.add_argument("root", nargs="?", default=".",
                          help="a trace directory or a directory of traces")
    trace_info = trace_sub.add_parser(
        "info", help="show a trace's manifest: chunks, spans, provenance")
    trace_info.add_argument("trace", help="trace directory")
    trace_info.add_argument("--chunks", action="store_true",
                            help="also list the per-chunk table")
    trace_info.add_argument("--verify", action="store_true",
                            help="re-hash every chunk against the manifest")
    trace_analyze = trace_sub.add_parser(
        "analyze", help="run the streaming analyses over a trace")
    trace_analyze.add_argument("trace", help="trace directory")
    trace_analyze.add_argument("--jobs", type=int, default=1,
                               help="worker processes (1 = in-process)")
    trace_analyze.add_argument("--window", type=float, default=10.0,
                               help="traffic-matrix window, seconds")
    trace_analyze.add_argument("--threshold", type=float, default=None,
                               help="congestion threshold (default: the "
                                    "recorded config's)")
    trace_analyze.add_argument("--timeout", type=float, default=None,
                               metavar="SECONDS",
                               help="flow inactivity timeout (default 60)")
    trace_analyze.add_argument("--check", action="store_true",
                               help="also verify streamed results equal the "
                                    "in-memory pipeline exactly")

    figures = sub.add_parser("figures", help="reproduce paper figures")
    figures.add_argument("names", nargs="*", default=[],
                         help="registered figure experiments (default all; "
                              "see --list)")
    figures.add_argument("--list", action="store_true", dest="list_experiments",
                         help="enumerate the experiment registry and exit")
    figures.add_argument("--standard", action="store_true",
                         help="use the standard campaign (slower, sharper)")
    figures.add_argument("--seed", type=int, default=None)

    ablations = sub.add_parser("ablations", help="run design-choice ablations")
    ablations.add_argument("names", nargs="*", default=[],
                           help="registered ablations (default all)")
    ablations.add_argument("--seed", type=int, default=11)

    campaign = sub.add_parser(
        "campaign", help="multi-seed campaign: run experiments across seeds")
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_run = campaign_sub.add_parser(
        "run", help="build per-seed datasets (in parallel) and aggregate")
    campaign_run.add_argument("--seeds", type=int, default=4,
                              help="number of seeds (base-seed, base-seed+1, ...)")
    campaign_run.add_argument("--base-seed", type=int, default=None,
                              help="first seed (default: the config's seed)")
    campaign_run.add_argument("--jobs", type=int, default=1,
                              help="worker processes (1 = in-process)")
    campaign_run.add_argument("--experiments", default=None,
                              help="comma-separated registry names "
                                   "(default: every figure experiment)")
    campaign_run.add_argument("--standard", action="store_true",
                              help="use the standard campaign per seed")
    campaign_run.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="disk dataset cache location "
                                   "(default .repro-cache)")
    campaign_run.add_argument("--no-disk-cache", action="store_true",
                              help="always rebuild datasets; persist nothing")
    campaign_run.add_argument("--manifest-out", default="campaign-manifest.json",
                              metavar="PATH")
    campaign_run.add_argument("--timeline-out", default=None, metavar="PATH",
                              help="merged campaign timeline JSON (default: "
                                   "<manifest-out stem>-timeline.json)")
    campaign_run.add_argument("--heartbeat", type=float, default=None,
                              metavar="SECONDS",
                              help="per-seed progress heartbeats on stderr "
                                   "every SECONDS of simulated time "
                                   "(default: off)")
    campaign_run.add_argument("--pool", choices=("warm", "spawn"),
                              default="warm",
                              help="execution substrate: 'warm' (default) is "
                                   "the resumable work-queue scheduler with "
                                   "persistent workers; 'spawn' the one-shot "
                                   "per-seed process pool")
    campaign_run.add_argument("--resume", action="store_true",
                              help="honour results published by a previous "
                                   "(possibly interrupted) run of this exact "
                                   "campaign; only missing seeds are computed "
                                   "(warm pool only)")
    campaign_run.add_argument("--lease-ttl", type=float, default=None,
                              metavar="SECONDS",
                              help="work-unit lease time-to-live; a worker "
                                   "whose heartbeat is older than this is "
                                   "presumed dead and its unit taken over "
                                   "(default 30)")
    campaign_report = campaign_sub.add_parser(
        "report", help="render a campaign manifest as tables")
    campaign_report.add_argument("manifest", nargs="?",
                                 default="campaign-manifest.json")
    campaign_status = campaign_sub.add_parser(
        "status", help="inspect a campaign's work queue (leases, results)")
    campaign_status.add_argument("--seeds", type=int, default=4,
                                 help="number of seeds the campaign covers")
    campaign_status.add_argument("--base-seed", type=int, default=None,
                                 help="first seed (default: the config's seed)")
    campaign_status.add_argument("--experiments", default=None,
                                 help="comma-separated registry names "
                                      "(default: every figure experiment)")
    campaign_status.add_argument("--standard", action="store_true",
                                 help="the campaign uses the standard config")
    campaign_status.add_argument("--cache-dir", default=None, metavar="DIR",
                                 help="cache location the campaign runs in "
                                      "(default .repro-cache)")

    cache = sub.add_parser("cache", help="inspect the on-disk dataset cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for verb, text in (("ls", "list cached datasets"),
                       ("clear", "remove every cached dataset")):
        cache_cmd = cache_sub.add_parser(verb, help=text)
        cache_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                               help="cache location (default .repro-cache "
                                    "or $REPRO_CACHE_DIR)")

    report = sub.add_parser("telemetry-report",
                            help="render a trace/manifest as tables")
    report.add_argument("trace", nargs="*", default=[],
                        help="JSONL span traces written by simulate "
                             "--trace-out (files or globs; multiple traces "
                             "aggregate into one rollup)")
    report.add_argument("--manifest", metavar="PATH",
                        help="run manifest written by simulate --telemetry")

    telemetry = sub.add_parser(
        "telemetry",
        help="render, export and diff merged campaign telemetry")
    telemetry_sub = telemetry.add_subparsers(dest="telemetry_command",
                                             required=True)
    telemetry_timeline = telemetry_sub.add_parser(
        "timeline",
        help="render a campaign timeline (ASCII Gantt / Prometheus / "
             "Chrome trace)")
    telemetry_timeline.add_argument(
        "timeline", nargs="?", default="campaign-timeline.json",
        help="timeline JSON written by campaign run "
             "(default: campaign-timeline.json)")
    telemetry_timeline.add_argument(
        "--format", choices=("ascii", "prometheus", "chrome"),
        default="ascii", help="output format (default: ascii)")
    telemetry_timeline.add_argument(
        "--width", type=int, default=64,
        help="Gantt chart width in characters (ascii format only)")
    telemetry_timeline.add_argument(
        "--out", metavar="PATH", default=None,
        help="write to PATH instead of stdout")
    telemetry_diff = telemetry_sub.add_parser(
        "diff",
        help="compare two timelines/manifests metric-by-metric")
    telemetry_diff.add_argument(
        "baseline", help="baseline timeline or run-manifest JSON")
    telemetry_diff.add_argument(
        "current", help="current timeline or run-manifest JSON")
    telemetry_diff.add_argument(
        "--tolerance", type=float, default=None,
        help="relative tolerance before a metric counts as changed "
             "(default: 0.25)")
    telemetry_diff.add_argument(
        "--only-changed", action="store_true",
        help="hide rows whose status is 'ok'")
    telemetry_diff.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 if any metric regresses beyond tolerance")

    validate = sub.add_parser(
        "validate",
        help="run the cross-layer invariant checkers over a trace or config")
    validate.add_argument(
        "target", nargs="?", default="small",
        help="a .reprotrace directory, 'small'/'standard' to build that "
             "campaign dataset, or 'incast' to run a tiny DCTCP incast "
             "through the queued transport and validate it "
             "(default: small)")
    validate.add_argument("--checkers", default=None, metavar="NAMES",
                          help="comma-separated checker names (default: all "
                               "non-inline checkers; see --list)")
    validate.add_argument("--list", action="store_true", dest="list_checkers",
                          help="enumerate the checker registry and exit")
    validate.add_argument("--seed", type=int, default=None,
                          help="seed for the built campaign (config targets "
                               "only)")
    validate.add_argument("--manifest-out", default=None, metavar="PATH",
                          help="also write a run manifest with the "
                               "validation telemetry")

    bench = sub.add_parser(
        "bench", help="run the benchmark suite or compare results")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="execute benchmarks/ and write a BENCH_*.json")
    bench_run.add_argument("--quick", action="store_true",
                           help="only the fast no-dataset benchmarks "
                                "(waterfill + small campaign)")
    bench_run.add_argument("-k", dest="keyword", default=None, metavar="EXPR",
                           help="pytest -k selection expression "
                                "(overrides --quick)")
    bench_run.add_argument("--out", default="BENCH_current.json", metavar="PATH",
                           help="results file to write "
                                "(default: BENCH_current.json)")
    bench_run.add_argument("--benchmarks-dir", default="benchmarks",
                           metavar="DIR",
                           help="benchmark suite directory "
                                "(default: benchmarks)")
    bench_run.add_argument("--profile", action="store_true",
                           help="cProfile the measuring process; dump "
                                "the top entries next to the results "
                                "JSON as *.profile.txt")
    bench_run.add_argument("--verbose", action="store_true",
                           help="run pytest with -v")
    bench_compare = bench_sub.add_parser(
        "compare", help="diff a results file against a baseline")
    bench_compare.add_argument(
        "--baseline", default="benchmarks/BENCH_core_ops.json", metavar="PATH",
        help="baseline results (default: benchmarks/BENCH_core_ops.json)")
    bench_compare.add_argument(
        "--current", default="BENCH_current.json", metavar="PATH",
        help="current results (default: BENCH_current.json)")
    bench_compare.add_argument(
        "--tolerance", type=float, default=None,
        help="relative regression tolerance (default: 0.25)")
    bench_compare.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 if any benchmark regresses beyond tolerance")
    return parser


def _print_heartbeat(snapshot: dict) -> None:
    """One progress line per heartbeat, on stderr (stdout stays parseable)."""
    print(
        "[telemetry] t={now:.1f}s/{duration:.1f}s ({percent:.0f}%) "
        "events={events_processed} ({events_per_wall_second:.0f}/s) "
        "active_flows={active_flows} jobs={jobs_finished}/{jobs_started} "
        "transfers={transfers_completed}".format(**snapshot),
        file=sys.stderr,
        flush=True,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .instrumentation.storage import serialize_log
    from .simulation.simulator import simulate

    config = SimulationConfig(
        cluster=_cluster_spec_from_args(args),
        workload=WorkloadConfig(job_arrival_rate=args.arrival_rate),
        duration=args.duration,
        seed=args.seed,
        routing_impl=args.routing,
    )
    telemetry_on = bool(args.telemetry or args.trace_out or args.manifest_out)
    if telemetry_on:
        from .experiments.common import build_dataset
        from .telemetry import RunManifest, Telemetry

        tele = Telemetry()
        # The full dataset build (campaign + flow reconstruction + TM
        # series) exercises every instrumented stage, so the manifest
        # captures the pipeline end to end — including the dataset
        # cache behaviour the figure sweeps depend on.
        with tele.span("cli.simulate"):
            dataset = build_dataset(
                config,
                telemetry=tele,
                heartbeat=_print_heartbeat,
                heartbeat_interval=args.heartbeat,
            )
        result = dataset.result
    else:
        result = simulate(config)
    print(f"cluster:  {result.topology.describe()}")
    for key in sorted(result.stats):
        print(f"  {key}: {result.stats[key]:.0f}")
    total = sum(t.size for t in result.transfers)
    print(f"  bytes transferred: {format_bytes(total)}")
    if args.dump_log:
        serialized = serialize_log(result.socket_log)
        with open(args.dump_log, "wb") as handle:
            handle.write(serialized.compressed)
        print(f"wrote {format_bytes(serialized.compressed_size)} "
              f"(compressed {serialized.compression_ratio:.1f}x) to {args.dump_log}")
    if telemetry_on:
        if args.trace_out:
            count = tele.tracer.write_jsonl(args.trace_out)
            print(f"wrote {count} spans to {args.trace_out}")
        manifest_path = args.manifest_out
        if manifest_path is None:
            manifest_path = (
                f"{args.trace_out}.manifest.json"
                if args.trace_out
                else "repro-manifest.json"
            )
        from .experiments.cache import dataset_content_hash

        manifest = RunManifest.capture(
            "simulate", config, tele,
            extra={"dataset_content_hash": dataset_content_hash(dataset)},
        )
        manifest.write(manifest_path)
        print(f"wrote run manifest ({len(manifest.metrics)} metrics) "
              f"to {manifest_path}")
    return 0


def _format_metric(state: dict) -> str:
    """One-cell rendering of a metric snapshot for the report table."""
    if state.get("type") == "histogram":
        return (f"n={state['count']} mean={state['mean']:.3g} "
                f"p50={state['p50']:.3g} p99={state['p99']:.3g} "
                f"max={state['max']:.3g}")
    return f"{state.get('value', 0.0):.6g}"


def _cmd_telemetry_report(args: argparse.Namespace) -> int:
    import glob as globlib

    from .experiments.reporting import format_table
    from .telemetry import RunManifest, aggregate_spans, load_spans

    if not args.trace and not args.manifest:
        print("nothing to report: pass a trace file and/or --manifest",
              file=sys.stderr)
        return 2
    traces: list[str] = []
    for pattern in args.trace:
        matches = sorted(globlib.glob(pattern))
        if not matches:
            print(f"no trace matches {pattern!r}", file=sys.stderr)
            return 2
        traces.extend(matches)
    if traces:
        rollup = aggregate_spans(load_spans(traces))
        rows = [
            (name, str(agg["count"]), f"{agg['total_s']:.3f}",
             f"{agg['mean_s']:.3f}", f"{agg['max_s']:.3f}")
            for name, agg in sorted(
                rollup.items(), key=lambda item: -item[1]["total_s"]
            )
        ]
        source = traces[0] if len(traces) == 1 else f"{len(traces)} traces"
        print(format_table(
            f"spans — {source}", rows,
            headers=("span", "count", "total s", "mean s", "max s"),
        ))
    if args.manifest:
        manifest = RunManifest.load(args.manifest)
        if traces:
            print()
        print(f"run: {manifest.command!r} seed={manifest.seed} "
              f"git={manifest.git_version} at {manifest.created_at} "
              f"({manifest.wall_seconds:.2f}s wall)")
        rows = [
            (name, _format_metric(state))
            for name, state in manifest.metrics.items()
        ]
        print(format_table(
            f"metrics — {args.manifest}", rows, headers=("metric", "value"),
        ))
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    if args.telemetry_command == "timeline":
        return _cmd_telemetry_timeline(args)
    return _cmd_telemetry_diff(args)


def _cmd_telemetry_timeline(args: argparse.Namespace) -> int:
    import json

    from .telemetry import load_timeline
    from .telemetry.export import render_timeline, to_chrome_trace, to_prometheus

    try:
        timeline = load_timeline(args.timeline)
    except FileNotFoundError:
        print(f"error: no timeline at {args.timeline!r} "
              "(campaign run writes one next to the manifest)",
              file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "prometheus":
        text = to_prometheus(timeline.get("metrics", {}))
    elif args.format == "chrome":
        text = json.dumps(to_chrome_trace(timeline), indent=2) + "\n"
    else:
        text = render_timeline(timeline, width=args.width) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.format} timeline to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_telemetry_diff(args: argparse.Namespace) -> int:
    from .telemetry.export import (
        DEFAULT_DIFF_TOLERANCE,
        diff_observables,
        format_diff_table,
    )

    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_DIFF_TOLERANCE)
    try:
        rows = diff_observables(args.baseline, args.current,
                                tolerance=tolerance)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_diff_table(rows, tolerance=tolerance,
                            only_changed=args.only_changed))
    regressed = any(row.status == "regression" for row in rows)
    if regressed and args.fail_on_regression:
        return 1
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import (
        build_dataset,
        experiment_names,
        experiment_specs,
        format_table,
        get_experiment,
        small_config,
        standard_config,
    )
    from .viz.figures import render_figure

    if args.list_experiments:
        rows = [
            (spec.name, spec.kind, spec.figure, spec.title)
            for spec in experiment_specs()
        ]
        print(format_table("experiment registry", rows,
                           headers=("name", "kind", "figure", "title")))
        return 0
    figure_names = experiment_names(kind="figure")
    names = args.names or figure_names
    unknown = [n for n in names if n not in figure_names]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.standard:
        config = standard_config() if args.seed is None else standard_config(args.seed)
    else:
        config = small_config() if args.seed is None else small_config(args.seed)
    print("Building campaign dataset...")
    dataset = build_dataset(config)
    for name in names:
        get_experiment(name)  # resolves through the registry
        print()
        print(render_figure(name, dataset))
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from .experiments import experiment_names, format_table, get_experiment

    ablation_names = experiment_names(kind="ablation")
    names = args.names or ablation_names
    unknown = [n for n in names if n not in ablation_names]
    if unknown:
        print(f"unknown ablations: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"Running ablation {name!r}...")
        result = get_experiment(name).run(seed=args.seed)
        print(format_table(f"ablation: {name}", result.rows()))
        print()
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.campaign_command == "report":
        return _cmd_campaign_report(args)
    if args.campaign_command == "status":
        return _cmd_campaign_status(args)
    from .experiments import (
        campaign_manifest,
        experiment_names,
        render_campaign_report,
        run_campaign,
        small_config,
        standard_config,
    )
    from .telemetry import Telemetry, write_timeline

    names = (
        [name.strip() for name in args.experiments.split(",") if name.strip()]
        if args.experiments
        else None
    )
    if names:
        known = set(experiment_names())
        unknown = [n for n in names if n not in known]
        if unknown:
            print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
            return 2
    config = standard_config() if args.standard else small_config()
    if args.base_seed is not None:
        config = config.with_seed(args.base_seed)

    durations: list[float] = []

    def report_progress(record: dict, completed: int, total: int) -> None:
        if record.get("resumed"):
            source = "resumed"
        else:
            source = "disk cache" if record["from_disk_cache"] else "built"
        durations.append(record["wall_seconds"])
        remaining = total - completed
        eta = ""
        if remaining and durations:
            # Completed-seed durations predict the rest; parallel lanes
            # divide the residual work.
            per_seed = sum(durations) / len(durations)
            lanes = max(1, min(args.jobs, remaining))
            eta = f" eta~{per_seed * remaining / lanes:.0f}s"
        print(f"[campaign] seed {record['seed']} done in "
              f"{record['wall_seconds']:.1f}s ({source}) — "
              f"{completed}/{total}{eta}",
              file=sys.stderr, flush=True)

    if args.resume and args.pool != "warm":
        print("--resume requires --pool warm", file=sys.stderr)
        return 2
    tele = Telemetry()
    result = run_campaign(
        config,
        seeds=args.seeds,
        experiments=names,
        jobs=args.jobs,
        telemetry=tele,
        cache_dir=args.cache_dir,
        disk_cache=False if args.no_disk_cache else True,
        progress=report_progress,
        heartbeat_interval=args.heartbeat,
        pool=args.pool,
        resume=args.resume,
        lease_ttl=args.lease_ttl,
    )
    manifest = campaign_manifest(result, tele)
    manifest.write(args.manifest_out)
    timeline_out = args.timeline_out
    if timeline_out is None:
        stem = re.sub(r"-?manifest", "", pathlib.Path(args.manifest_out).stem)
        timeline_out = str(pathlib.Path(args.manifest_out).with_name(
            f"{stem or 'campaign'}-timeline.json"))
    write_timeline(timeline_out, result.timeline)
    print(render_campaign_report(result.extra()))
    print(f"\nwrote campaign manifest ({len(result.seeds)} seeds, "
          f"{len(result.experiments)} experiments) to {args.manifest_out}")
    print(f"wrote campaign timeline ({result.campaign_id}) to {timeline_out}\n"
          f"render it with: repro telemetry timeline {timeline_out}")
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .experiments import experiment_names, small_config, standard_config
    from .experiments.reporting import format_table
    from .experiments.scheduler import queue_status

    names = (
        [name.strip() for name in args.experiments.split(",") if name.strip()]
        if args.experiments
        else experiment_names(kind="figure")
    )
    config = standard_config() if args.standard else small_config()
    if args.base_seed is not None:
        config = config.with_seed(args.base_seed)
    seeds = [config.seed + i for i in range(args.seeds)]
    status = queue_status(config, seeds, names, cache_dir=args.cache_dir)
    print(f"queue {status['queue_id']} at {status['queue_dir']}"
          + ("" if status["exists"] else " (not created yet)"))
    rows = []
    for unit in status["units"]:
        lease = unit["lease"]
        holder = ""
        if lease is not None:
            age = max(0.0, _time.time() - float(lease.get("heartbeat", 0.0)))
            holder = (f"pid {lease.get('pid')}@{lease.get('host')} "
                      f"heartbeat {age:.1f}s ago")
        rows.append((
            str(unit["seed"]),
            unit["fingerprint"][:12],
            unit["state"],
            "yes" if unit["shm"] else "",
            holder,
        ))
    print(format_table(
        "work units", rows,
        headers=("seed", "fingerprint", "state", "shm", "lease"),
    ))
    counts = status["counts"]
    total = sum(counts.values())
    print(f"\n{counts['done']}/{total} done, {counts['leased']} leased, "
          f"{counts['stale']} stale, {counts['pending']} pending")
    if counts["done"] < total:
        print("resume with: repro campaign run --resume "
              "(matching seeds/experiments/cache-dir)")
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from .experiments import render_campaign_report
    from .telemetry import RunManifest

    manifest = RunManifest.load(args.manifest)
    campaign = manifest.extra.get("campaign")
    if not campaign:
        print(f"{args.manifest} holds no campaign record", file=sys.stderr)
        return 2
    print(f"run: {manifest.command!r} base seed={manifest.seed} "
          f"git={manifest.git_version} at {manifest.created_at}")
    print()
    print(render_campaign_report(campaign))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "record": _cmd_trace_record,
        "ls": _cmd_trace_ls,
        "info": _cmd_trace_info,
        "analyze": _cmd_trace_analyze,
    }
    return handlers[args.trace_command](args)


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .telemetry import Telemetry
    from .trace import DEFAULT_CHUNK_SIZE, record_trace
    from .trace.record import DEFAULT_FLUSH_INTERVAL

    config = SimulationConfig(
        cluster=_cluster_spec_from_args(args),
        workload=WorkloadConfig(job_arrival_rate=args.arrival_rate),
        duration=args.duration,
        seed=args.seed,
        routing_impl=args.routing,
    )
    tele = Telemetry()
    try:
        record = record_trace(
            config,
            args.out,
            chunk_size=args.chunk_size or DEFAULT_CHUNK_SIZE,
            flush_interval=args.flush_interval or DEFAULT_FLUSH_INTERVAL,
            telemetry=tele,
            overwrite=args.overwrite,
            heartbeat=_print_heartbeat if args.heartbeat else None,
            heartbeat_interval=args.heartbeat,
        )
    except FileExistsError as error:
        print(f"{error} (use --overwrite to replace it)", file=sys.stderr)
        return 2
    manifest = record.manifest
    metrics = tele.metrics.snapshot()
    written = int(metrics.get("trace.bytes_written", {}).get("value", 0))
    print(f"recorded {manifest['total_rows']} events in "
          f"{len(manifest['chunks'])} chunk(s) to {record.path}")
    print(f"  chunk size: {manifest['chunk_size']} rows")
    print(f"  event bytes written: {format_bytes_binary(written)}")
    span = manifest["time_span"]
    if span:
        print(f"  time span: {span[0]:.3f}s .. {span[1]:.3f}s")
    print(f"  config fingerprint: {manifest['meta']['config_fingerprint'][:12]}")
    return 0


def _cmd_trace_ls(args: argparse.Namespace) -> int:
    from .experiments import format_table
    from .trace import TraceReader, find_traces

    traces = find_traces(args.root)
    if not traces:
        print(f"no traces under {args.root}")
        return 0
    rows = []
    for path in traces:
        reader = TraceReader(path)
        first, last = reader.time_span()
        rows.append((
            str(path),
            str(reader.num_chunks),
            str(reader.total_rows),
            format_bytes_binary(reader.bytes_on_disk()),
            f"{last - first:.0f}s",
            str(reader.meta.get("seed", "?")),
        ))
    print(format_table(
        f"traces — {args.root}", rows,
        headers=("trace", "chunks", "rows", "size", "span", "seed"),
    ))
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from .experiments import format_table
    from .trace import TraceReader

    reader = TraceReader(args.trace)
    manifest = reader.manifest
    print(f"trace: {args.trace}")
    print(f"  format: {manifest['format']} v{manifest['schema_version']}")
    print(f"  rows: {reader.total_rows} in {reader.num_chunks} chunk(s) "
          f"(chunk size {reader.chunk_size})")
    print(f"  on disk: {format_bytes_binary(reader.bytes_on_disk())}")
    first, last = reader.time_span()
    print(f"  time span: {first:.3f}s .. {last:.3f}s")
    loads = manifest.get("linkloads")
    if loads:
        print(f"  linkloads: {loads['num_links']} links x {loads['num_bins']} "
              f"bins @ {loads['bin_width']:.0f}s")
    for key in sorted(reader.meta):
        if key != "cluster_spec":
            print(f"  meta.{key}: {reader.meta[key]}")
    if args.chunks and reader.num_chunks:
        rows = [
            (entry["file"], str(entry["rows"]),
             f"{entry['t_min']:.3f}", f"{entry['t_max']:.3f}",
             entry["sha256"][:12])
            for entry in reader.chunks
        ]
        print()
        print(format_table("chunks", rows,
                           headers=("file", "rows", "t_min", "t_max", "sha256")))
    if args.verify:
        bad = reader.verify()
        if bad:
            print(f"CORRUPT: {len(bad)} file(s) fail verification: "
                  f"{', '.join(bad)}", file=sys.stderr)
            return 1
        print(f"  verified: all {reader.num_chunks} chunk hash(es) match")
    return 0


def _cmd_trace_analyze(args: argparse.Namespace) -> int:
    from .core.flows import DEFAULT_INACTIVITY_TIMEOUT
    from .telemetry import Telemetry
    from .trace import analyze_trace, check_against_inmemory

    timeout = (
        args.timeout if args.timeout is not None else DEFAULT_INACTIVITY_TIMEOUT
    )
    tele = Telemetry()
    analysis = analyze_trace(
        args.trace,
        jobs=args.jobs,
        window=args.window,
        inactivity_timeout=timeout,
        threshold=args.threshold,
        telemetry=tele,
    )
    print(f"analyzed {analysis.rows} events in {analysis.chunks} chunk(s) "
          f"with {analysis.jobs} job(s)")
    for key, value in analysis.summary().items():
        if isinstance(value, float):
            print(f"  {key}: {value:.6g}")
        else:
            print(f"  {key}: {value}")
    stats = analysis.flow_stats
    if stats.get("flows"):
        print(f"  median flow bytes: "
              f"{format_bytes(stats['median_bytes'])} "
              f"(max {format_bytes(stats['max_bytes'])})")
        print(f"  median flow duration: {stats['median_durations']:.3g}s "
              f"(max {stats['max_duration']:.3g}s)")
    if args.check:
        checks = check_against_inmemory(
            args.trace, window=args.window,
            inactivity_timeout=timeout, threshold=args.threshold,
        )
        for name, passed in checks.items():
            print(f"  check {name}: {'OK' if passed else 'MISMATCH'}")
        if not checks["all_equal"]:
            return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments import format_table
    from .telemetry import RunManifest, Telemetry
    from .trace.format import is_trace_dir
    from .validate import checker_specs, get_checker, validate

    if args.list_checkers:
        rows = [
            (spec.name, ",".join(sorted(spec.tags)) or "-", spec.description)
            for spec in checker_specs()
        ]
        print(format_table("invariant checkers", rows,
                           headers=("name", "tags", "description")))
        return 0
    names = None
    if args.checkers:
        names = [n.strip() for n in args.checkers.split(",") if n.strip()]
        try:
            for name in names:
                get_checker(name)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
    if is_trace_dir(args.target):
        if args.seed is not None:
            print("--seed applies to config targets, not traces",
                  file=sys.stderr)
            return 2
        source = args.target
        config = None
        print(f"validating trace {args.target}")
    elif args.target in ("small", "standard"):
        from .experiments import build_dataset, small_config, standard_config

        config = (
            small_config() if args.target == "small" else standard_config()
        )
        if args.seed is not None:
            config = config.with_seed(args.seed)
        print(f"building the {args.target} campaign dataset "
              f"(seed {config.seed})...")
        source = build_dataset(config)
    elif args.target == "incast":
        from .simulation.cc import incast_result

        print("running a small DCTCP incast through the queued transport...")
        result = incast_result("dctcp", 8, duration=5.0)
        config = result.config
        source = result
    else:
        print(f"{args.target!r} is neither a trace directory nor "
              "'small'/'standard'/'incast'", file=sys.stderr)
        return 2
    tele = Telemetry()
    with tele.span("cli.validate", target=str(args.target)):
        report = validate(source, names=names, telemetry=tele)
    print(report.render())
    if args.manifest_out:
        manifest = RunManifest.capture(
            "validate", config, tele,
            extra={
                "target": str(args.target),
                "violations": len(report.violations),
            },
        )
        manifest.write(args.manifest_out)
        print(f"wrote run manifest to {args.manifest_out}")
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from .experiments import format_table
    from .experiments.cache import DatasetDiskCache

    disk = DatasetDiskCache(args.cache_dir)
    if args.cache_command == "clear":
        removed = disk.clear()
        print(f"removed {removed} cached dataset(s) from {disk.root}")
        return 0
    entries = disk.entries()
    if not entries:
        print(f"no cached datasets under {disk.root}")
        return 0
    rows = [
        (
            entry.get("fingerprint", "?")[:12],
            str(entry.get("seed", "?")),
            f"{entry.get('duration', 0.0):.0f}s",
            format_bytes_binary(entry.get("size_bytes", 0)),
            entry.get("content_hash", "?")[:12],
        )
        for entry in entries
    ]
    print(format_table(
        f"dataset cache — {disk.root}", rows,
        headers=("fingerprint", "seed", "duration", "size", "content hash"),
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.compare import DEFAULT_TOLERANCE, compare_results, format_table

    if args.bench_command == "run":
        from .bench.runner import run_benchmarks

        code = run_benchmarks(
            out=args.out,
            benchmarks_dir=args.benchmarks_dir,
            quick=args.quick,
            keyword=args.keyword,
            verbose=args.verbose,
            profile=args.profile,
        )
        if code == 0:
            print(f"benchmark results written to {args.out}")
        return code

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    try:
        rows = compare_results(args.baseline, args.current, tolerance=tolerance)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_table(rows, tolerance=tolerance))
    regressed = any(row.status == "regression" for row in rows)
    if regressed and args.fail_on_regression:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "figures": _cmd_figures,
        "ablations": _cmd_ablations,
        "campaign": _cmd_campaign,
        "trace": _cmd_trace,
        "cache": _cmd_cache,
        "telemetry-report": _cmd_telemetry_report,
        "telemetry": _cmd_telemetry,
        "validate": _cmd_validate,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
