"""Cluster substrate: topology (paper Fig 1) and tree routing."""

from .routing import Router, bisection_bandwidth, tor_routing_matrix
from .topology import ClusterSpec, ClusterTopology, Link, NodeKind

__all__ = [
    "ClusterSpec",
    "ClusterTopology",
    "Link",
    "NodeKind",
    "Router",
    "tor_routing_matrix",
    "bisection_bandwidth",
]
