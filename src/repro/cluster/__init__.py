"""Cluster substrate: topology (paper Fig 1) and tree routing.

Models the instrumented cluster of Kandula et al.: racks of servers
under top-of-rack switches, aggregated into VLANs under aggregation
switches, joined by a core — the canonical 2-level tree of the paper's
Figure 1, plus optional external hosts reached through the core.
:class:`ClusterSpec` is the declarative shape (racks, servers per rack,
racks per VLAN, link speeds); :class:`ClusterTopology` realises it as
numbered nodes and directed capacitated links.

:class:`~repro.cluster.routing.Router` computes the unique tree path
between any two endpoints as a tuple of directed link ids — the
representation every layer above (transport, link loads, tomography's
A-matrix) shares.  ``bisection_bandwidth`` and ``tor_routing_matrix``
support the oversubscription arithmetic and the tomography experiments
(§5).
"""

from .routing import Router, bisection_bandwidth, tor_routing_matrix
from .topology import ClusterSpec, ClusterTopology, Link, NodeKind

__all__ = [
    "ClusterSpec",
    "ClusterTopology",
    "Link",
    "NodeKind",
    "Router",
    "tor_routing_matrix",
    "bisection_bandwidth",
]
