"""Cluster substrate: the topology family (paper Fig 1 and beyond) and
single/multi-path routing.

Models the instrumented cluster of Kandula et al.: racks of servers
under top-of-rack switches, aggregated into VLANs under aggregation
switches, joined by a core — the canonical 2-level tree of the paper's
Figure 1, plus optional external hosts reached through the core.
:class:`ClusterSpec` is the declarative shape (racks, servers per rack,
racks per VLAN, link speeds); :class:`ClusterTopology` realises it as
numbered nodes and directed capacitated links.  The tree is the default
member of a topology family: ``ClusterSpec.fat_tree(k)`` and
``ClusterSpec.leaf_spine(racks, spines)`` build the multi-path fabrics
of :mod:`repro.cluster.fabrics` behind the same accessors.

:class:`~repro.cluster.routing.Router` computes the canonical path
between any two endpoints as a tuple of directed link ids — the
representation every layer above (transport, link loads, tomography's
A-matrix) shares.  :class:`~repro.cluster.routing.EcmpRouter` and
:class:`~repro.cluster.routing.FlowletRouter` spread flows over the
equal-cost sets of multi-path fabrics (``make_router`` selects by
``SimulationConfig.routing_impl``).  ``bisection_bandwidth`` and
``tor_routing_matrix`` support the oversubscription arithmetic and the
tomography experiments (§5).
"""

from .fabrics import FatTreeTopology, LeafSpineTopology
from .routing import (
    DEFAULT_FLOWLET_GAP,
    ROUTING_IMPLS,
    EcmpRouter,
    FlowletRouter,
    Router,
    bisection_bandwidth,
    flow_hash,
    fold_flow_key,
    make_router,
    tor_routing_matrix,
)
from .topology import (
    TOPOLOGY_KINDS,
    ClusterSpec,
    ClusterTopology,
    Link,
    NodeKind,
    spec_from_mapping,
)

__all__ = [
    "ClusterSpec",
    "ClusterTopology",
    "FatTreeTopology",
    "LeafSpineTopology",
    "Link",
    "NodeKind",
    "TOPOLOGY_KINDS",
    "spec_from_mapping",
    "Router",
    "EcmpRouter",
    "FlowletRouter",
    "ROUTING_IMPLS",
    "DEFAULT_FLOWLET_GAP",
    "make_router",
    "flow_hash",
    "fold_flow_key",
    "tor_routing_matrix",
    "bisection_bandwidth",
]
