"""Multi-path fabrics: k-ary fat-tree and leaf-spine topologies.

The paper's cluster is a 2-tier tree (§3), but its own §5.3 argues the
observed traffic-matrix volatility makes topology/routing co-design the
natural next question.  These builders answer it inside the same
:class:`~repro.cluster.topology.ClusterTopology` contract: dense integer
node ids (servers first, then ToR-role switches, one per rack), directed
duplex :class:`~repro.cluster.topology.Link` pairs, and the tree-era
accessors (``rack_of``, ``tor_of_rack``, ``vlan_of`` ...), so the
workload executor, link-load tracker, traffic-matrix index and trace
meta round-trip run unchanged on any fabric.

What changes is path multiplicity: both fabrics override
``equal_cost_node_paths`` with the full equal-cost set in a fixed
deterministic order, which the ECMP/flowlet routers in
:mod:`repro.cluster.routing` hash over.

* **Fat-tree** (``ClusterSpec.fat_tree(k)``): ``k`` pods of ``k//2``
  edge switches (one rack each, playing the ToR role) and ``k//2``
  aggregation switches; ``(k//2)**2`` cores, where core ``j*(k//2)+i``
  connects aggregation switch ``j`` of every pod.  Pods map onto VLANs.
  Same-pod pairs have ``k//2`` equal-cost paths, cross-pod pairs
  ``(k//2)**2``.
* **Leaf-spine** (``ClusterSpec.leaf_spine(racks, spines)``): every leaf
  (ToR role) meshes with every spine (core role); cross-rack pairs have
  one equal-cost path per spine.

External hosts attach to the first core/spine switch, the multi-path
analogue of hanging off the tree's core router: ingest/egress traffic
has a single deterministic attachment point while in-cluster traffic
enjoys the full path diversity.
"""

from __future__ import annotations

from .topology import ClusterSpec, ClusterTopology, NodeKind

__all__ = ["FatTreeTopology", "LeafSpineTopology", "fabric_class"]


class _MultiPathFabric(ClusterTopology):
    """Shared machinery: path-set cache and endpoint classification."""

    def __init__(self, spec: ClusterSpec) -> None:
        super().__init__(spec)
        self._ecp_cache: dict[tuple[int, int], tuple[tuple[int, ...], ...]] = {}

    def _edge_and_prefix(self, node: int) -> tuple[int, tuple[int, ...]]:
        """The ToR-role switch a path enters the fabric through, plus the
        node prefix before it (the server itself, or nothing for a ToR)."""
        kind = self.node_kind(node)
        if kind == NodeKind.SERVER:
            return self.tor_of_rack(self.rack_of(node)), (node,)
        if kind == NodeKind.TOR:
            return node, ()
        raise ValueError(
            f"node {node} ({kind.value}) cannot originate or terminate paths"
        )

    def equal_cost_node_paths(
        self, src: int, dst: int
    ) -> tuple[tuple[int, ...], ...]:
        if src == dst:
            return ((src,),)
        key = (src, dst)
        cached = self._ecp_cache.get(key)
        if cached is None:
            cached = self._compute_equal_cost(src, dst)
            self._ecp_cache[key] = cached
        return cached

    def _compute_equal_cost(
        self, src: int, dst: int
    ) -> tuple[tuple[int, ...], ...]:
        raise NotImplementedError


class FatTreeTopology(_MultiPathFabric):
    """A k-ary fat-tree (Clos) fabric behind the tree accessors.

    Node id layout (dense, in order): servers, edge switches (ToR role,
    one per rack), aggregation switches (``k//2`` per pod), core
    switches (``(k//2)**2``), external hosts.
    """

    kind = "fat_tree"

    def _layout(self) -> None:
        k = self.spec.fat_tree_k
        self._k = k
        self._half = k // 2
        self._agg_base = self._tor_base + self.num_racks
        # One aggregation switch per rack overall: k pods x k//2 each.
        self._core_base = self._agg_base + self.num_racks
        self._num_cores = self._half * self._half
        self._external_base = self._core_base + self._num_cores
        self.num_nodes = self._external_base + self.spec.external_hosts

    def _build_links(self) -> None:
        spec = self.spec
        half = self._half
        for server in range(self.num_servers):
            self._add_duplex(server, self.tor_of_rack(self.rack_of(server)),
                             spec.server_nic_capacity)
        for rack in range(self.num_racks):
            pod = self.vlan_of_rack(rack)
            edge = self.tor_of_rack(rack)
            for j in range(half):
                self._add_duplex(edge, self._agg_base + pod * half + j,
                                 spec.tor_uplink_capacity)
        for pod in range(self._k):
            for j in range(half):
                agg = self._agg_base + pod * half + j
                for i in range(half):
                    self._add_duplex(agg, self._core_base + j * half + i,
                                     spec.agg_uplink_capacity)
        for index in range(spec.external_hosts):
            self._add_duplex(self._external_base + index, self._core_base,
                             spec.external_link_capacity)

    # ------------------------------------------------------------ lookups

    def node_kind(self, node: int) -> NodeKind:
        if node < 0 or node >= self.num_nodes:
            raise ValueError(f"node {node} out of range")
        if node < self._tor_base:
            return NodeKind.SERVER
        if node < self._agg_base:
            return NodeKind.TOR
        if node < self._core_base:
            return NodeKind.AGG
        if node < self._external_base:
            return NodeKind.CORE
        return NodeKind.EXTERNAL

    def agg_of_vlan(self, vlan: int) -> int:
        """First aggregation switch of a pod (see :meth:`aggs_of_pod`)."""
        if not 0 <= vlan < self.num_vlans:
            raise ValueError(f"vlan {vlan} out of range")
        return self._agg_base + vlan * self._half

    def aggs_of_pod(self, pod: int) -> range:
        """All ``k//2`` aggregation switches of a pod."""
        if not 0 <= pod < self._k:
            raise ValueError(f"pod {pod} out of range")
        start = self._agg_base + pod * self._half
        return range(start, start + self._half)

    def core_ids(self) -> range:
        """All ``(k//2)**2`` core switch ids."""
        return range(self._core_base, self._core_base + self._num_cores)

    @property
    def core_id(self) -> int:
        """The first core switch (the external attachment point)."""
        return self._core_base

    # ---------------------------------------------------------- multi-path

    def _compute_equal_cost(
        self, src: int, dst: int
    ) -> tuple[tuple[int, ...], ...]:
        half = self._half
        src_ext = self.is_external(src)
        dst_ext = self.is_external(dst)
        if src_ext and dst_ext:
            return ((src, self._core_base, dst),)
        if src_ext or dst_ext:
            ext, inner = (src, dst) if src_ext else (dst, src)
            edge, prefix = self._edge_and_prefix(inner)
            pod = self.vlan_of_rack(edge - self._tor_base)
            # Core 0 lives in core group 0: it reaches aggregation
            # switch 0 of every pod, so external paths are unique.
            path = (ext, self._core_base, self._agg_base + pod * half,
                    edge) + prefix
            if dst_ext:
                path = tuple(reversed(path))
            return (path,)
        edge_s, prefix_s = self._edge_and_prefix(src)
        edge_d, prefix_d = self._edge_and_prefix(dst)
        suffix_d = tuple(reversed(prefix_d))
        if edge_s == edge_d:
            return (prefix_s + (edge_s,) + suffix_d,)
        pod_s = self.vlan_of_rack(edge_s - self._tor_base)
        pod_d = self.vlan_of_rack(edge_d - self._tor_base)
        paths = []
        if pod_s == pod_d:
            for j in range(half):
                agg = self._agg_base + pod_s * half + j
                paths.append(prefix_s + (edge_s, agg, edge_d) + suffix_d)
        else:
            for j in range(half):
                agg_s = self._agg_base + pod_s * half + j
                agg_d = self._agg_base + pod_d * half + j
                for i in range(half):
                    core = self._core_base + j * half + i
                    paths.append(prefix_s + (edge_s, agg_s, core, agg_d,
                                             edge_d) + suffix_d)
        return tuple(paths)

    def describe(self) -> str:
        spec = self.spec
        return (
            f"k={self._k} fat-tree: {self.num_servers} servers / "
            f"{self.num_racks} edge racks ({spec.servers_per_rack} per rack) "
            f"/ {self._k} pods / {self._num_cores} cores / "
            f"{spec.external_hosts} external hosts / {self.num_links} links"
        )


class LeafSpineTopology(_MultiPathFabric):
    """A two-tier leaf-spine mesh behind the tree accessors.

    Node id layout (dense, in order): servers, leaf switches (ToR role,
    one per rack), spine switches (core role), external hosts.  There is
    no aggregation tier; :meth:`agg_of_vlan` raises.
    """

    kind = "leaf_spine"

    def _layout(self) -> None:
        self._spine_base = self._tor_base + self.num_racks
        self._num_spines = self.spec.spine_count
        self._external_base = self._spine_base + self._num_spines
        self.num_nodes = self._external_base + self.spec.external_hosts

    def _build_links(self) -> None:
        spec = self.spec
        for server in range(self.num_servers):
            self._add_duplex(server, self.tor_of_rack(self.rack_of(server)),
                             spec.server_nic_capacity)
        for rack in range(self.num_racks):
            leaf = self.tor_of_rack(rack)
            for spine in range(self._num_spines):
                self._add_duplex(leaf, self._spine_base + spine,
                                 spec.tor_uplink_capacity)
        for index in range(spec.external_hosts):
            self._add_duplex(self._external_base + index, self._spine_base,
                             spec.external_link_capacity)

    # ------------------------------------------------------------ lookups

    def node_kind(self, node: int) -> NodeKind:
        if node < 0 or node >= self.num_nodes:
            raise ValueError(f"node {node} out of range")
        if node < self._tor_base:
            return NodeKind.SERVER
        if node < self._spine_base:
            return NodeKind.TOR
        if node < self._external_base:
            return NodeKind.CORE
        return NodeKind.EXTERNAL

    def agg_of_vlan(self, vlan: int) -> int:
        raise ValueError("leaf-spine fabric has no aggregation tier")

    def spine_ids(self) -> range:
        """All spine switch ids."""
        return range(self._spine_base, self._spine_base + self._num_spines)

    @property
    def core_id(self) -> int:
        """The first spine switch (the external attachment point)."""
        return self._spine_base

    # ---------------------------------------------------------- multi-path

    def _compute_equal_cost(
        self, src: int, dst: int
    ) -> tuple[tuple[int, ...], ...]:
        src_ext = self.is_external(src)
        dst_ext = self.is_external(dst)
        if src_ext and dst_ext:
            return ((src, self._spine_base, dst),)
        if src_ext or dst_ext:
            ext, inner = (src, dst) if src_ext else (dst, src)
            leaf, prefix = self._edge_and_prefix(inner)
            path = (ext, self._spine_base, leaf) + prefix
            if dst_ext:
                path = tuple(reversed(path))
            return (path,)
        leaf_s, prefix_s = self._edge_and_prefix(src)
        leaf_d, prefix_d = self._edge_and_prefix(dst)
        suffix_d = tuple(reversed(prefix_d))
        if leaf_s == leaf_d:
            return (prefix_s + (leaf_s,) + suffix_d,)
        return tuple(
            prefix_s + (leaf_s, self._spine_base + spine, leaf_d) + suffix_d
            for spine in range(self._num_spines)
        )

    def describe(self) -> str:
        spec = self.spec
        return (
            f"leaf-spine: {self.num_servers} servers / {self.num_racks} "
            f"leaves ({spec.servers_per_rack} per rack) / "
            f"{self._num_spines} spines / {spec.external_hosts} external "
            f"hosts / {self.num_links} links"
        )


_FABRICS: dict[str, type[ClusterTopology]] = {
    "fat_tree": FatTreeTopology,
    "leaf_spine": LeafSpineTopology,
}


def fabric_class(kind: str) -> type[ClusterTopology]:
    """The :class:`ClusterTopology` subclass building ``kind``."""
    try:
        return _FABRICS[kind]
    except KeyError:
        raise ValueError(f"no fabric builder for topology kind {kind!r}")
