"""Deterministic tree routing and the tomography routing matrix.

Traffic in the measured cluster follows the only paths a tree offers: up
from the source to the lowest common switch, then down to the destination.
``Router`` materialises those paths as tuples of directed link ids (what
the transport engine consumes) and caches them, since a simulation reuses
a small set of rack-pair paths millions of times.

``tor_routing_matrix`` builds the classic tomography ``A`` matrix relating
ToR-to-ToR traffic-matrix entries to inter-switch link loads, ``y = A x``
(paper §5 methodology: link counts are computed from the ground-truth TM).
"""

from __future__ import annotations

import numpy as np

from .topology import ClusterTopology, NodeKind

__all__ = ["Router", "tor_routing_matrix", "bisection_bandwidth"]


class Router:
    """Computes and caches up/down tree paths between endpoints."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._path_cache: dict[tuple[int, int], tuple[int, ...]] = {}

    def _ancestry(self, node: int) -> list[int]:
        """Chain of nodes from ``node`` up to the core router, inclusive."""
        topo = self.topology
        kind = topo.node_kind(node)
        if kind == NodeKind.SERVER:
            rack = topo.rack_of(node)
            return [
                node,
                topo.tor_of_rack(rack),
                topo.agg_of_vlan(topo.vlan_of_rack(rack)),
                topo.core_id,
            ]
        if kind == NodeKind.EXTERNAL:
            return [node, topo.core_id]
        if kind == NodeKind.TOR:
            rack = node - topo.tor_of_rack(0)
            return [node, topo.agg_of_vlan(topo.vlan_of_rack(rack)), topo.core_id]
        if kind == NodeKind.AGG:
            return [node, topo.core_id]
        return [node]

    def path_nodes(self, src: int, dst: int) -> tuple[int, ...]:
        """Node sequence from ``src`` to ``dst`` (inclusive of both).

        For ``src == dst`` the path is the single node: local transfers
        touch no network links (Cosmos writes outputs to the local disk,
        paper §3).
        """
        if src == dst:
            return (src,)
        up = self._ancestry(src)
        down = self._ancestry(dst)
        up_set = {node: depth for depth, node in enumerate(up)}
        for depth_down, node in enumerate(down):
            if node in up_set:
                meet_up = up_set[node]
                return tuple(up[: meet_up + 1] + list(reversed(down[:depth_down])))
        raise ValueError(f"no common ancestor for nodes {src} and {dst}")

    def path_links(self, src: int, dst: int) -> tuple[int, ...]:
        """Directed link ids along the path from ``src`` to ``dst``."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        nodes = self.path_nodes(src, dst)
        links = tuple(
            self.topology.link_between(a, b).link_id
            for a, b in zip(nodes[:-1], nodes[1:])
        )
        self._path_cache[key] = links
        return links

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links traversed between two endpoints."""
        return len(self.path_links(src, dst))


def tor_routing_matrix(
    topology: ClusterTopology,
) -> tuple[np.ndarray, list[tuple[int, int]], list[int]]:
    """Build the tomography routing matrix at ToR granularity.

    Returns ``(A, pairs, observed_links)`` where:

    * ``pairs`` lists the ordered ToR-index pairs ``(i, j), i != j`` that
      form the unknown TM vector ``x`` (the ToR-to-ToR TM has a zero
      diagonal by construction, paper §3);
    * ``observed_links`` lists the link ids of inter-switch links whose
      byte counters SNMP exposes;
    * ``A[l, k] == 1`` iff pair ``k``'s path crosses observed link ``l``.

    The under-constrained nature the paper highlights is visible directly
    in the shape: ``len(observed_links)`` grows linearly with rack count
    while ``len(pairs)`` grows quadratically.
    """
    router = Router(topology)
    observed = [link.link_id for link in topology.inter_switch_links()]
    link_row = {link_id: row for row, link_id in enumerate(observed)}
    pairs = [
        (i, j)
        for i in range(topology.num_racks)
        for j in range(topology.num_racks)
        if i != j
    ]
    matrix = np.zeros((len(observed), len(pairs)), dtype=float)
    for column, (i, j) in enumerate(pairs):
        src_tor = topology.tor_of_rack(i)
        dst_tor = topology.tor_of_rack(j)
        for link_id in router.path_links(src_tor, dst_tor):
            row = link_row.get(link_id)
            if row is not None:
                matrix[row, column] = 1.0
    return matrix, pairs, observed


def bisection_bandwidth(topology: ClusterTopology) -> float:
    """One-directional bisection bandwidth of the tree (bytes/s).

    The narrowest cut splitting the cluster in half runs through the
    core: the sum of aggregation-to-core capacities.  The paper's Fig 10
    observation ("the top of the spikes is more than half the full-duplex
    bisection bandwidth") doubles this to count both directions.
    """
    total = 0.0
    for link in topology.inter_switch_links():
        if (
            topology.node_kind(link.src) == NodeKind.AGG
            and topology.node_kind(link.dst) == NodeKind.CORE
        ):
            total += link.capacity
    return total
