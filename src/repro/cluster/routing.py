"""Deterministic routing — single-path, ECMP and flowlet — plus the
tomography routing matrix.

Traffic in the measured cluster follows the only paths a tree offers: up
from the source to the lowest common switch, then down to the destination.
``Router`` materialises those paths as tuples of directed link ids (what
the transport engine consumes) and caches them, since a simulation reuses
a small set of rack-pair paths millions of times.

Multi-path fabrics (:mod:`repro.cluster.fabrics`) offer an *equal-cost
set* per endpoint pair.  Two selection policies route over it:

* :class:`EcmpRouter` — per-flow ECMP: a deterministic splitmix64 hash
  of ``(seed, src, dst, flow label)`` picks one equal-cost path, the
  same one for the flow's whole lifetime.  The hash uses no process
  state (no ``PYTHONHASHSEED``), so path choices are reproducible
  across processes and campaign workers.
* :class:`FlowletRouter` — flowlet switching (SNIPPETS.md #3): the hash
  additionally folds a per-connection *flowlet id* that increments
  whenever the connection has been idle longer than ``idle_gap``, so
  bursts separated by an idle gap may re-hash onto a different path
  while packets inside a burst stay ordered.

On a tree every equal-cost set has size one, so all three policies
degenerate to the same single path — which is what keeps
``topology_kind="tree"`` bit-identical regardless of
``SimulationConfig.routing_impl``.

``tor_routing_matrix`` builds the classic tomography ``A`` matrix relating
ToR-to-ToR traffic-matrix entries to inter-switch link loads, ``y = A x``
(paper §5 methodology: link counts are computed from the ground-truth TM).
With ``multipath=True`` each pair spreads ``1/n`` over its ``n``
equal-cost paths — the expected ECMP split.
"""

from __future__ import annotations

import zlib

import numpy as np

from .topology import ClusterTopology, NodeKind

__all__ = [
    "Router",
    "EcmpRouter",
    "FlowletRouter",
    "ROUTING_IMPLS",
    "DEFAULT_FLOWLET_GAP",
    "make_router",
    "flow_hash",
    "fold_flow_key",
    "tor_routing_matrix",
    "bisection_bandwidth",
]

#: Accepted ``SimulationConfig.routing_impl`` values.
ROUTING_IMPLS = ("single", "ecmp", "flowlet")

#: Default flowlet idle-gap threshold in seconds (50 ms, the gap the
#: flowlet load-balancing exemplar uses: longer than any in-flight
#: packet's residual delay, so re-hashing cannot reorder a burst).
DEFAULT_FLOWLET_GAP = 0.05

_MASK64 = (1 << 64) - 1
_GOLDEN64 = 0x9E3779B97F4A7C15


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a well-mixed 64-bit permutation."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def fold_flow_key(key) -> int:
    """Deterministically fold a connection key into a 64-bit label.

    Connection keys are ``None``, ints, strings, or (nested) tuples of
    those (see ``TransferMeta.connection_key``).  Strings fold through
    ``zlib.crc32`` and ints through identity, so the label never depends
    on per-process hash randomisation.
    """
    if key is None:
        return 0
    if isinstance(key, (int, np.integer)):
        return int(key) & _MASK64
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8")) & _MASK64
    if isinstance(key, (tuple, list)):
        folded = _GOLDEN64
        for part in key:
            folded = _mix64(folded ^ fold_flow_key(part))
        return folded
    return zlib.crc32(repr(key).encode("utf-8")) & _MASK64


def flow_hash(seed: int, src: int, dst: int, label: int, flowlet: int = 0) -> int:
    """The deterministic ECMP hash: 64 bits from the flow's identity.

    The stand-in for a switch's 5-tuple hash: ``(src, dst, label)``
    identifies the connection, ``flowlet`` is the flowlet-switching
    epoch (always 0 for plain ECMP), ``seed`` diversifies campaigns.
    """
    h = _mix64((int(seed) & _MASK64) ^ _GOLDEN64)
    for part in (src, dst, label, flowlet):
        h = _mix64(h ^ (int(part) & _MASK64))
    return h


class Router:
    """Computes and caches single paths between endpoints.

    On a tree these are the unique up/down paths; on multi-path fabrics
    the *canonical* (first) equal-cost path.  Subclasses override
    :meth:`path_for_flow` to spread flows over the equal-cost set.
    """

    #: Routing policy name (mirrors ``SimulationConfig.routing_impl``).
    impl = "single"

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._path_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        self._ecmp_cache: dict[tuple[int, int], tuple[tuple[int, ...], ...]] = {}

    def _ancestry(self, node: int) -> list[int]:
        """Chain of nodes from ``node`` up to the core router, inclusive."""
        topo = self.topology
        kind = topo.node_kind(node)
        if kind == NodeKind.SERVER:
            rack = topo.rack_of(node)
            return [
                node,
                topo.tor_of_rack(rack),
                topo.agg_of_vlan(topo.vlan_of_rack(rack)),
                topo.core_id,
            ]
        if kind == NodeKind.EXTERNAL:
            return [node, topo.core_id]
        if kind == NodeKind.TOR:
            rack = node - topo.tor_of_rack(0)
            return [node, topo.agg_of_vlan(topo.vlan_of_rack(rack)), topo.core_id]
        if kind == NodeKind.AGG:
            return [node, topo.core_id]
        return [node]

    def path_nodes(self, src: int, dst: int) -> tuple[int, ...]:
        """Node sequence from ``src`` to ``dst`` (inclusive of both).

        For ``src == dst`` the path is the single node: local transfers
        touch no network links (Cosmos writes outputs to the local disk,
        paper §3).
        """
        if src == dst:
            return (src,)
        if self.topology.kind != "tree":
            return self.topology.equal_cost_node_paths(src, dst)[0]
        up = self._ancestry(src)
        down = self._ancestry(dst)
        up_set = {node: depth for depth, node in enumerate(up)}
        for depth_down, node in enumerate(down):
            if node in up_set:
                meet_up = up_set[node]
                return tuple(up[: meet_up + 1] + list(reversed(down[:depth_down])))
        raise ValueError(f"no common ancestor for nodes {src} and {dst}")

    def path_links(self, src: int, dst: int) -> tuple[int, ...]:
        """Directed link ids along the path from ``src`` to ``dst``."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        nodes = self.path_nodes(src, dst)
        links = tuple(
            self.topology.link_between(a, b).link_id
            for a, b in zip(nodes[:-1], nodes[1:])
        )
        self._path_cache[key] = links
        return links

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links traversed between two endpoints."""
        return len(self.path_links(src, dst))

    # ---------------------------------------------------------- multi-path

    def _links_of(self, nodes: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(
            self.topology.link_between(a, b).link_id
            for a, b in zip(nodes[:-1], nodes[1:])
        )

    def equal_cost_paths(
        self, src: int, dst: int
    ) -> tuple[tuple[int, ...], ...]:
        """All equal-cost link paths between two endpoints, cached.

        Trees return the unique path; fabrics return the full set in the
        topology's deterministic order (the order the ECMP hash indexes).
        """
        key = (src, dst)
        cached = self._ecmp_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            paths: tuple[tuple[int, ...], ...] = ((),)
        elif self.topology.kind == "tree":
            paths = (self.path_links(src, dst),)
        else:
            paths = tuple(
                self._links_of(nodes)
                for nodes in self.topology.equal_cost_node_paths(src, dst)
            )
        self._ecmp_cache[key] = paths
        return paths

    def path_for_flow(
        self, src: int, dst: int, key=None, now: float = 0.0
    ) -> tuple[int, ...]:
        """The link path a *flow* takes.  Single-path routing ignores the
        flow's identity (``key``) and the clock; ECMP/flowlet use them."""
        return self.path_links(src, dst)

    def note_activity(self, src: int, dst: int, key, now: float) -> None:
        """Record flow activity (a completion) at time ``now``.

        A no-op except for flowlet switching, where activity postpones
        the idle-gap expiry of the connection's current flowlet.
        """


class EcmpRouter(Router):
    """Per-flow ECMP: hash the flow identity over the equal-cost set."""

    impl = "ecmp"

    def __init__(self, topology: ClusterTopology, seed: int = 0) -> None:
        super().__init__(topology)
        self.seed = int(seed)
        self._label_cache: dict = {}

    def flow_label(self, key) -> int:
        """The 64-bit label for a connection key (memoised)."""
        try:
            return self._label_cache[key]
        except (KeyError, TypeError):
            label = fold_flow_key(key)
            try:
                self._label_cache[key] = label
            except TypeError:
                pass
            return label

    def path_for_flow(
        self, src: int, dst: int, key=None, now: float = 0.0
    ) -> tuple[int, ...]:
        choices = self.equal_cost_paths(src, dst)
        if len(choices) == 1:
            return choices[0]
        index = flow_hash(self.seed, src, dst, self.flow_label(key))
        return choices[index % len(choices)]


class FlowletRouter(EcmpRouter):
    """Flowlet switching: ECMP that re-hashes after an idle gap.

    Per connection ``(src, dst, label)`` the router tracks the last
    activity time and a flowlet id.  A new flow arriving more than
    ``idle_gap`` after the last activity starts a fresh flowlet — the id
    increments and the path re-hashes — while flows inside the gap stick
    to the current flowlet's path (no reordering within a burst).
    """

    impl = "flowlet"

    def __init__(
        self,
        topology: ClusterTopology,
        seed: int = 0,
        idle_gap: float = DEFAULT_FLOWLET_GAP,
    ) -> None:
        super().__init__(topology, seed=seed)
        if idle_gap <= 0:
            raise ValueError("flowlet idle gap must be positive")
        self.idle_gap = float(idle_gap)
        #: (src, dst, label) -> [last_activity_time, flowlet_id]
        self._flowlets: dict[tuple[int, int, int], list] = {}
        self.rehash_count = 0

    def flowlet_id(self, src: int, dst: int, key=None) -> int:
        """The connection's current flowlet id (0 if never seen)."""
        state = self._flowlets.get((src, dst, self.flow_label(key)))
        return 0 if state is None else state[1]

    def path_for_flow(
        self, src: int, dst: int, key=None, now: float = 0.0
    ) -> tuple[int, ...]:
        label = self.flow_label(key)
        state = self._flowlets.get((src, dst, label))
        if state is None:
            state = [now, 0]
            self._flowlets[(src, dst, label)] = state
        elif now - state[0] > self.idle_gap:
            state[1] += 1
            self.rehash_count += 1
        state[0] = now
        choices = self.equal_cost_paths(src, dst)
        if len(choices) == 1:
            return choices[0]
        index = flow_hash(self.seed, src, dst, label, flowlet=state[1])
        return choices[index % len(choices)]

    def note_activity(self, src: int, dst: int, key, now: float) -> None:
        state = self._flowlets.get((src, dst, self.flow_label(key)))
        if state is not None and now > state[0]:
            state[0] = now


def make_router(
    topology: ClusterTopology,
    impl: str = "single",
    seed: int = 0,
    flowlet_idle_gap: float = DEFAULT_FLOWLET_GAP,
) -> Router:
    """Build the router for a ``SimulationConfig.routing_impl`` choice."""
    if impl == "single":
        return Router(topology)
    if impl == "ecmp":
        return EcmpRouter(topology, seed=seed)
    if impl == "flowlet":
        return FlowletRouter(topology, seed=seed, idle_gap=flowlet_idle_gap)
    raise ValueError(
        f"unknown routing impl {impl!r}; expected one of {ROUTING_IMPLS}"
    )


def tor_routing_matrix(
    topology: ClusterTopology,
    multipath: bool = False,
) -> tuple[np.ndarray, list[tuple[int, int]], list[int]]:
    """Build the tomography routing matrix at ToR granularity.

    Returns ``(A, pairs, observed_links)`` where:

    * ``pairs`` lists the ordered ToR-index pairs ``(i, j), i != j`` that
      form the unknown TM vector ``x`` (the ToR-to-ToR TM has a zero
      diagonal by construction, paper §3);
    * ``observed_links`` lists the link ids of inter-switch links whose
      byte counters SNMP exposes;
    * ``A[l, k] == 1`` iff pair ``k``'s canonical path crosses observed
      link ``l``.  With ``multipath=True`` pair ``k`` instead spreads
      ``1/n`` over each of its ``n`` equal-cost paths (the expected ECMP
      split), so entries lie in ``[0, 1]``.

    The under-constrained nature the paper highlights is visible directly
    in the shape: ``len(observed_links)`` grows linearly with rack count
    while ``len(pairs)`` grows quadratically.
    """
    router = Router(topology)
    observed = [link.link_id for link in topology.inter_switch_links()]
    link_row = {link_id: row for row, link_id in enumerate(observed)}
    pairs = [
        (i, j)
        for i in range(topology.num_racks)
        for j in range(topology.num_racks)
        if i != j
    ]
    matrix = np.zeros((len(observed), len(pairs)), dtype=float)
    for column, (i, j) in enumerate(pairs):
        src_tor = topology.tor_of_rack(i)
        dst_tor = topology.tor_of_rack(j)
        if multipath:
            paths = router.equal_cost_paths(src_tor, dst_tor)
        else:
            paths = (router.path_links(src_tor, dst_tor),)
        weight = 1.0 / len(paths)
        for path in paths:
            for link_id in path:
                row = link_row.get(link_id)
                if row is not None:
                    matrix[row, column] += weight
    return matrix, pairs, observed


def bisection_bandwidth(topology: ClusterTopology) -> float:
    """One-directional bisection bandwidth of the fabric (bytes/s).

    The narrowest cut splitting the cluster in half:

    * **tree** — runs through the core: the sum of aggregation-to-core
      capacities.  The paper's Fig 10 observation ("the top of the
      spikes is more than half the full-duplex bisection bandwidth")
      doubles this to count both directions.
    * **fat_tree** — the cut between the lower and upper half of the
      pods crosses only aggregation-to-core links:
      ``(k**3)/8 * agg_uplink_capacity``, the classic k-ary figure.
    * **leaf_spine** — the cut between the lower and upper half of the
      leaves crosses their spine uplinks:
      ``(racks // 2) * spines * tor_uplink_capacity``.
    """
    kind = topology.kind
    total = 0.0
    if kind == "fat_tree":
        lower_pods = topology.spec.fat_tree_k // 2
        boundary = topology.agg_of_vlan(lower_pods - 1) + (
            topology.spec.fat_tree_k // 2
        )
        for link in topology.inter_switch_links():
            if (
                topology.node_kind(link.src) == NodeKind.AGG
                and topology.node_kind(link.dst) == NodeKind.CORE
                and link.src < boundary
            ):
                total += link.capacity
        return total
    if kind == "leaf_spine":
        lower_leaves = topology.num_racks // 2
        boundary = topology.tor_of_rack(0) + lower_leaves
        for link in topology.inter_switch_links():
            if (
                topology.node_kind(link.src) == NodeKind.TOR
                and topology.node_kind(link.dst) == NodeKind.CORE
                and link.src < boundary
            ):
                total += link.capacity
        return total
    for link in topology.inter_switch_links():
        if (
            topology.node_kind(link.src) == NodeKind.AGG
            and topology.node_kind(link.dst) == NodeKind.CORE
        ):
            total += link.capacity
    return total
