"""Cluster topology: the physical structure sketched in the paper's Fig 1.

The measured cluster is a classic two-tier tree: tens of servers per rack
connect to an inexpensive top-of-rack (ToR) switch; ToRs connect to
high-degree aggregation switches; aggregation switches connect to an IP
router ("core").  VLANs span small groups of racks to keep broadcast
domains small.  A handful of *external* hosts outside the cluster upload
new data and pull out results (the sparse far corner of Fig 2).

The tree is one member of a small *topology family* selected by
``ClusterSpec.topology_kind``: ``"tree"`` (the measured cluster, the
default), ``"fat_tree"`` (a k-ary Clos fabric) and ``"leaf_spine"`` (a
two-tier leaf/spine mesh), the latter two built by
:mod:`repro.cluster.fabrics` behind the same :class:`ClusterTopology`
accessors so every downstream consumer — traffic-matrix endpoint index,
link loads, validation context, trace meta round-trip — works unchanged.
Multi-path fabrics additionally expose
:meth:`ClusterTopology.equal_cost_node_paths`, which the ECMP/flowlet
routers in :mod:`repro.cluster.routing` hash over.

Nodes and links are plain integers indexing dense arrays, because the
transport engine manipulates thousands of paths per second and the
tomography code needs a routing matrix; object graphs would be needlessly
slow.  :class:`ClusterTopology` provides the human-facing accessors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields

import numpy as np

from ..util.units import GBPS

__all__ = [
    "NodeKind",
    "Link",
    "ClusterSpec",
    "ClusterTopology",
    "TOPOLOGY_KINDS",
    "spec_from_mapping",
]

#: Members of the topology family, in the order they were grown.
TOPOLOGY_KINDS = ("tree", "fat_tree", "leaf_spine")


class NodeKind(enum.Enum):
    """Role of a node in the tree."""

    SERVER = "server"
    TOR = "tor"
    AGG = "agg"
    CORE = "core"
    EXTERNAL = "external"


@dataclass(frozen=True)
class Link:
    """A directed, capacitated link.

    ``capacity`` is in bytes per second.  Each physical cable contributes
    two :class:`Link` objects, one per direction, because datacenter
    congestion is directional (a full ToR uplink says nothing about the
    downlink).
    """

    link_id: int
    src: int
    dst: int
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.link_id} has non-positive capacity")


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters describing a cluster to build.

    Defaults give a small but structurally faithful cluster; the paper's
    cluster is approximately ``racks=75, servers_per_rack=20``.
    """

    racks: int = 5
    servers_per_rack: int = 10
    racks_per_vlan: int = 5
    external_hosts: int = 2
    server_nic_capacity: float = 1 * GBPS
    tor_uplink_capacity: float = 10 * GBPS
    agg_uplink_capacity: float = 40 * GBPS
    external_link_capacity: float = 10 * GBPS
    #: Which member of the topology family to build: "tree" (the paper's
    #: 2-tier tree, the default), "fat_tree" (k-ary Clos), or
    #: "leaf_spine" (two-tier mesh).  Non-tree fabrics are built by
    #: :mod:`repro.cluster.fabrics`.
    topology_kind: str = "tree"
    #: Fat-tree arity (even, >= 2).  Required when
    #: ``topology_kind == "fat_tree"``; the rack count must equal
    #: ``k * (k // 2)`` (one rack per edge switch) and ``racks_per_vlan``
    #: must equal ``k // 2`` so VLAN == pod.  Use :meth:`fat_tree`.
    fat_tree_k: int = 0
    #: Number of spine switches.  Required when
    #: ``topology_kind == "leaf_spine"``.  Use :meth:`leaf_spine`.
    spine_count: int = 0

    def __post_init__(self) -> None:
        if self.racks < 1:
            raise ValueError("cluster needs at least one rack")
        if self.servers_per_rack < 1:
            raise ValueError("racks need at least one server")
        if self.racks_per_vlan < 1:
            raise ValueError("VLANs need at least one rack")
        if self.external_hosts < 0:
            raise ValueError("external_hosts must be non-negative")
        if self.topology_kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.topology_kind!r}; "
                f"expected one of {TOPOLOGY_KINDS}"
            )
        if self.topology_kind == "fat_tree":
            k = self.fat_tree_k
            if k < 2 or k % 2:
                raise ValueError("fat_tree_k must be an even integer >= 2")
            if self.racks != k * (k // 2):
                raise ValueError(
                    f"a k={k} fat-tree has {k * (k // 2)} edge switches; "
                    f"racks must equal that, got {self.racks}"
                )
            if self.racks_per_vlan != k // 2:
                raise ValueError(
                    "fat-tree VLANs are pods: racks_per_vlan must equal k//2"
                )
        if self.topology_kind == "leaf_spine" and self.spine_count < 1:
            raise ValueError("leaf_spine needs at least one spine switch")

    @classmethod
    def fat_tree(cls, k: int = 4, servers_per_rack: int = 4,
                 **overrides) -> "ClusterSpec":
        """A k-ary fat-tree spec: ``k`` pods of ``k//2`` edge racks each.

        Edge switches play the ToR role (one rack per edge switch), pods
        play the VLAN role, so every tree-era accessor keeps working.
        """
        return cls(
            racks=k * (k // 2),
            servers_per_rack=servers_per_rack,
            racks_per_vlan=k // 2,
            topology_kind="fat_tree",
            fat_tree_k=k,
            **overrides,
        )

    @classmethod
    def leaf_spine(cls, racks: int = 4, spines: int = 2,
                   servers_per_rack: int = 4, **overrides) -> "ClusterSpec":
        """A leaf-spine spec: every leaf (ToR) meshes with every spine.

        All racks share one logical VLAN — the fabric has no aggregation
        tier, so the VLAN grouping is purely a placement label.
        """
        return cls(
            racks=racks,
            servers_per_rack=servers_per_rack,
            racks_per_vlan=racks,
            topology_kind="leaf_spine",
            spine_count=spines,
            **overrides,
        )

    @property
    def num_servers(self) -> int:
        """Number of in-cluster servers."""
        return self.racks * self.servers_per_rack

    @property
    def num_vlans(self) -> int:
        """Number of VLANs (tree: one aggregation switch per VLAN;
        fat-tree: one pod per VLAN; leaf-spine: a placement label)."""
        return (self.racks + self.racks_per_vlan - 1) // self.racks_per_vlan


def spec_from_mapping(data) -> ClusterSpec:
    """Rebuild a :class:`ClusterSpec` from a mapping, e.g. trace meta.

    Tolerant in both directions: keys a newer writer added that this
    build does not know are dropped, and keys a seed-era trace lacks
    (``topology_kind`` and friends) fall back to the dataclass defaults,
    which reproduce the original tree.
    """
    known = {field.name for field in fields(ClusterSpec)}
    return ClusterSpec(**{k: v for k, v in dict(data).items() if k in known})


class ClusterTopology:
    """A built cluster: nodes, directed links, and structural queries.

    Node id layout (dense, in order):

    * ``0 .. num_servers-1`` — servers,
    * then one ToR per rack,
    * then one aggregation switch per VLAN,
    * then the core router,
    * then external hosts.

    External hosts hang off the core router directly; they stand in for
    "servers external to the cluster which upload new data into the
    cluster or pull out results from it" (paper §4.1).

    Constructing ``ClusterTopology(spec)`` dispatches on
    ``spec.topology_kind``: non-tree specs transparently build the
    matching fabric subclass from :mod:`repro.cluster.fabrics`, so
    callers never name the subclasses.
    """

    #: The topology-family member this class builds (``spec.topology_kind``).
    kind = "tree"

    def __new__(cls, spec: ClusterSpec | None = None) -> "ClusterTopology":
        # ``spec=None`` keeps default pickling (object.__reduce_ex__)
        # working: unpickling calls ``cls.__new__(cls)`` with the already
        # dispatched subclass and restores ``__dict__`` directly.
        if (
            cls is ClusterTopology
            and spec is not None
            and spec.topology_kind != "tree"
        ):
            from .fabrics import fabric_class

            cls = fabric_class(spec.topology_kind)
        return object.__new__(cls)

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.num_servers = spec.num_servers
        self.num_racks = spec.racks
        self.num_vlans = spec.num_vlans

        self._tor_base = self.num_servers
        self._layout()

        self._links: list[Link] = []
        #: map (src, dst) -> link id for direct edges
        self._edge_index: dict[tuple[int, int], int] = {}
        self._build_links()
        self.capacities = np.array([link.capacity for link in self._links])

    # ------------------------------------------------------------------ build

    def _layout(self) -> None:
        """Assign the switch/external id ranges above the server block."""
        self._agg_base = self._tor_base + self.num_racks
        self._core_id = self._agg_base + self.num_vlans
        self._external_base = self._core_id + 1
        self.num_nodes = self._external_base + self.spec.external_hosts

    def _add_duplex(self, a: int, b: int, capacity: float) -> None:
        for src, dst in ((a, b), (b, a)):
            link_id = len(self._links)
            self._links.append(Link(link_id, src, dst, capacity))
            self._edge_index[(src, dst)] = link_id

    def _build_links(self) -> None:
        spec = self.spec
        for server in range(self.num_servers):
            self._add_duplex(server, self.tor_of_rack(self.rack_of(server)),
                             spec.server_nic_capacity)
        for rack in range(self.num_racks):
            agg = self.agg_of_vlan(self.vlan_of_rack(rack))
            self._add_duplex(self.tor_of_rack(rack), agg, spec.tor_uplink_capacity)
        for vlan in range(self.num_vlans):
            self._add_duplex(self.agg_of_vlan(vlan), self._core_id,
                             spec.agg_uplink_capacity)
        for index in range(spec.external_hosts):
            self._add_duplex(self._external_base + index, self._core_id,
                             spec.external_link_capacity)

    # ------------------------------------------------------------ node lookup

    def node_kind(self, node: int) -> NodeKind:
        """Classify a node id."""
        if node < 0 or node >= self.num_nodes:
            raise ValueError(f"node {node} out of range")
        if node < self._tor_base:
            return NodeKind.SERVER
        if node < self._agg_base:
            return NodeKind.TOR
        if node < self._core_id:
            return NodeKind.AGG
        if node == self._core_id:
            return NodeKind.CORE
        return NodeKind.EXTERNAL

    def rack_of(self, server: int) -> int:
        """Rack index of an in-cluster server."""
        if not 0 <= server < self.num_servers:
            raise ValueError(f"{server} is not an in-cluster server")
        return server // self.spec.servers_per_rack

    def vlan_of_rack(self, rack: int) -> int:
        """VLAN index of a rack."""
        if not 0 <= rack < self.num_racks:
            raise ValueError(f"rack {rack} out of range")
        return rack // self.spec.racks_per_vlan

    def vlan_of(self, server: int) -> int:
        """VLAN index of a server."""
        return self.vlan_of_rack(self.rack_of(server))

    def tor_of_rack(self, rack: int) -> int:
        """Node id of a rack's ToR switch."""
        if not 0 <= rack < self.num_racks:
            raise ValueError(f"rack {rack} out of range")
        return self._tor_base + rack

    def agg_of_vlan(self, vlan: int) -> int:
        """Node id of a VLAN's aggregation switch."""
        if not 0 <= vlan < self.num_vlans:
            raise ValueError(f"vlan {vlan} out of range")
        return self._agg_base + vlan

    @property
    def core_id(self) -> int:
        """Node id of the core router."""
        return self._core_id

    def servers_in_rack(self, rack: int) -> range:
        """Server ids housed in a rack."""
        if not 0 <= rack < self.num_racks:
            raise ValueError(f"rack {rack} out of range")
        start = rack * self.spec.servers_per_rack
        return range(start, start + self.spec.servers_per_rack)

    def racks_in_vlan(self, vlan: int) -> range:
        """Rack indices belonging to a VLAN."""
        if not 0 <= vlan < self.num_vlans:
            raise ValueError(f"vlan {vlan} out of range")
        start = vlan * self.spec.racks_per_vlan
        return range(start, min(start + self.spec.racks_per_vlan, self.num_racks))

    def external_hosts(self) -> range:
        """Node ids of external (out-of-cluster) hosts."""
        return range(self._external_base, self.num_nodes)

    def is_external(self, node: int) -> bool:
        """True if the node is an external host."""
        return node >= self._external_base

    def is_endpoint(self, node: int) -> bool:
        """True if flows may originate/terminate at this node."""
        return node < self.num_servers or self.is_external(node)

    def endpoints(self) -> list[int]:
        """All flow endpoints: in-cluster servers then external hosts."""
        return list(range(self.num_servers)) + list(self.external_hosts())

    def same_rack(self, server_a: int, server_b: int) -> bool:
        """True if both endpoints are in-cluster servers sharing a rack."""
        if server_a >= self.num_servers or server_b >= self.num_servers:
            return False
        return self.rack_of(server_a) == self.rack_of(server_b)

    def same_vlan(self, server_a: int, server_b: int) -> bool:
        """True if both endpoints are in-cluster servers sharing a VLAN."""
        if server_a >= self.num_servers or server_b >= self.num_servers:
            return False
        return self.vlan_of(server_a) == self.vlan_of(server_b)

    def ip_of(self, node: int) -> str:
        """A synthetic dotted-quad for an endpoint (virtualisation-free:
        each IP corresponds to a distinct machine, paper §3)."""
        if node < self.num_servers:
            rack = self.rack_of(node)
            position = node - rack * self.spec.servers_per_rack
            return f"10.{rack // 250}.{rack % 250}.{position + 1}"
        if self.is_external(node):
            index = node - self._external_base
            return f"192.168.200.{index + 1}"
        raise ValueError(f"node {node} is not an addressable endpoint")

    # ------------------------------------------------------------ link lookup

    @property
    def links(self) -> list[Link]:
        """All directed links (index == link id)."""
        return self._links

    @property
    def num_links(self) -> int:
        """Number of directed links."""
        return len(self._links)

    def link_between(self, src: int, dst: int) -> Link:
        """The directed link for a direct edge, or raise ``KeyError``."""
        return self._links[self._edge_index[(src, dst)]]

    def inter_switch_links(self) -> list[Link]:
        """Directed links between switches (ToR↔Agg, Agg↔Core).

        These are the links the paper's §4.2 congestion study observes
        ("inter-switch links that carry the traffic of the monitored
        machines") and the counters SNMP would expose for tomography.
        """
        switch_kinds = {NodeKind.TOR, NodeKind.AGG, NodeKind.CORE}
        return [
            link
            for link in self._links
            if self.node_kind(link.src) in switch_kinds
            and self.node_kind(link.dst) in switch_kinds
        ]

    def server_access_links(self) -> list[Link]:
        """Directed server↔ToR links (the cluster's edge)."""
        return [
            link
            for link in self._links
            if NodeKind.SERVER in (self.node_kind(link.src), self.node_kind(link.dst))
        ]

    # ---------------------------------------------------------- multi-path

    def equal_cost_node_paths(
        self, src: int, dst: int
    ) -> tuple[tuple[int, ...], ...]:
        """All shortest node paths between two endpoints (or ToRs).

        The tree offers exactly one; multi-path fabrics override this
        with the full equal-cost set, in a deterministic order the
        ECMP/flowlet routers hash over.  ``src == dst`` yields the
        single-node path (a local transfer crosses no links).
        """
        from .routing import Router

        return (Router(self).path_nodes(src, dst),)

    def describe(self) -> str:
        """One-line structural summary."""
        spec = self.spec
        return (
            f"{self.num_servers} servers / {self.num_racks} racks "
            f"({spec.servers_per_rack} per rack) / {self.num_vlans} VLANs / "
            f"{spec.external_hosts} external hosts / {self.num_links} links"
        )
