"""Top-level experiment configuration.

A :class:`SimulationConfig` fully determines a simulated measurement
campaign: the cluster to build, the workload to run over it, the
instrumentation parameters, the duration and the seed.  Two identical
configs produce bit-identical logs, which is what lets the experiment
layer memoise datasets across benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .cluster.routing import DEFAULT_FLOWLET_GAP, ROUTING_IMPLS
from .cluster.topology import ClusterSpec
from .instrumentation.collector import CollectorConfig
from .simulation.cc.params import CongestionControlConfig
from .simulation.impls import transport_impl_names
from .workload.generator import WorkloadConfig

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to reproduce one simulated run."""

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    collector: CollectorConfig = field(default_factory=CollectorConfig)
    duration: float = 120.0
    seed: int = 0
    #: Bandwidth-sharing model: "maxmin" (default) or "bottleneck".
    fairness: str = "maxmin"
    #: Transport implementation, resolved through the shared registry in
    #: :mod:`repro.simulation.impls`.  The fluid family: "vectorized"
    #: (default, the fast adaptive allocator), "reference" (the original
    #: round-based loop), "csr" (the batched CSR elimination pinned on
    #: for every active-set size), and "incremental" (paper-scale:
    #: re-solves only the affected bottleneck subgraph per
    #: arrival/departure).  The first three produce bit-identical event
    #: logs — the switch exists so differential tests and ``repro
    #: validate`` can prove it; "incremental" is equivalent within a
    #: documented tolerance (``repro.simulation.waterfill.INCREMENTAL_RTOL``)
    #: checked by the ``transport.incremental_equivalence`` validator.
    #: The queued family ("dctcp", "reno", "ecn_taildrop") swaps in the
    #: discrete-stepped congestion-control transport from
    #: :mod:`repro.simulation.cc`, parameterised by :attr:`cc`.
    transport_impl: str = "vectorized"
    #: Knobs of the queued transports (tick, buffer depth, marking
    #: threshold K, RTO ...); ignored by the fluid family.
    cc: CongestionControlConfig = field(default_factory=CongestionControlConfig)
    #: Path-selection policy over the topology's equal-cost sets:
    #: "single" (default: the canonical path — on a tree, the only one),
    #: "ecmp" (deterministic per-flow hash) or "flowlet" (idle-gap
    #: re-hashing, see :class:`~repro.cluster.routing.FlowletRouter`).
    #: On ``topology_kind="tree"`` all three are bit-identical because
    #: every equal-cost set has size one.
    routing_impl: str = "single"
    #: Idle-gap threshold (seconds) after which flowlet routing re-hashes
    #: a connection's path; ignored unless ``routing_impl="flowlet"``.
    flowlet_idle_gap: float = DEFAULT_FLOWLET_GAP
    #: A link is a hot-spot when its one-second average utilisation is at
    #: least this (paper §4.2 uses C = 70%).
    congestion_threshold: float = 0.7
    #: Minimum spacing between fair-share recomputations.  Flow set
    #: changes inside one window share a single allocation pass; deferred
    #: flows idle at ~zero rate until it runs, so links are never
    #: oversubscribed.  0 recomputes on every event (exact fluid model).
    rate_update_interval: float = 0.01
    #: Run the cheap ``inline``-tagged invariant checkers every N engine
    #: batches during simulation (see :mod:`repro.validate`).  0 (the
    #: default) disables inline validation.  A violation aborts the run
    #: with a :class:`~repro.validate.violations.ValidationError`.
    validate_every_n_batches: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.fairness not in ("maxmin", "bottleneck"):
            raise ValueError(f"unknown fairness mode {self.fairness!r}")
        valid_impls = transport_impl_names()
        if self.transport_impl not in valid_impls:
            raise ValueError(
                f"unknown transport impl {self.transport_impl!r}; "
                f"expected one of {valid_impls}"
            )
        if self.routing_impl not in ROUTING_IMPLS:
            raise ValueError(
                f"unknown routing impl {self.routing_impl!r}; "
                f"expected one of {ROUTING_IMPLS}"
            )
        if self.flowlet_idle_gap <= 0:
            raise ValueError("flowlet_idle_gap must be positive")
        if not 0.0 < self.congestion_threshold <= 1.0:
            raise ValueError("congestion_threshold must lie in (0, 1]")
        if self.rate_update_interval < 0:
            raise ValueError("rate_update_interval must be non-negative")
        if self.validate_every_n_batches < 0:
            raise ValueError("validate_every_n_batches must be non-negative")

    def with_seed(self, seed: int) -> "SimulationConfig":
        """The same campaign with a different random seed."""
        return replace(self, seed=seed)

    def with_duration(self, duration: float) -> "SimulationConfig":
        """The same campaign with a different duration."""
        return replace(self, duration=duration)
