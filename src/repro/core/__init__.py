"""Core analysis pipeline: the paper's measurement analyses (§3-§4).

Everything downstream of the raw socket-event log lives here: flow
reconstruction with the paper's 60-second inactivity timeout
(:mod:`~repro.core.flows`), traffic matrices at arbitrary bin widths
(:mod:`~repro.core.traffic_matrix`), congestion-episode extraction and
victim-flow analysis for §4.2 (:mod:`~repro.core.congestion`),
work-vs-network attribution (:mod:`~repro.core.attribution`), TM churn
statistics for §4.5 (:mod:`~repro.core.change`), and the streaming
variants of all of the above (:mod:`~repro.core.streaming`) whose
``update``/``merge``/``finalize`` protocol produces results exactly
equal to the in-memory pipeline — sequentially or fanned across
processes.

Each module mirrors one analysis of the paper; the experiments layer
(:mod:`repro.experiments`) composes them into figures.
"""

from .attribution import AttributionReport, attribute_traffic, kind_of_flows
from .change import ChurnStats, churn_stats, normalized_change_series
from .congestion import (
    CongestionEpisode,
    CongestionSummary,
    VictimFlowComparison,
    congestion_summary,
    find_episodes,
    flows_overlapping_congestion,
    hot_matrix,
    simultaneous_hot_links,
    victim_flow_comparison,
)
from .flow_stats import (
    DurationStats,
    InterarrivalStats,
    detect_periodic_modes,
    duration_stats,
    interarrival_stats,
)
from .flows import DEFAULT_INACTIVITY_TIMEOUT, FlowTable, reconstruct_flows
from .impact import DailyImpact, ImpactStudy, read_failure_impact
from .incast import (
    IncastAudit,
    incast_audit,
    incast_report,
    max_concurrent_inbound,
)
from .patterns import (
    CorrespondentStats,
    PairByteStats,
    PatternSummary,
    correspondent_stats,
    pair_byte_stats,
    pattern_summary,
    scatter_gather_servers,
)
from .summary import TrafficCharacterization, characterize
from .traffic_matrix import (
    TrafficMatrixSeries,
    log_matrix,
    server_tm_to_tor_tm,
    tm_series_from_events,
    tm_series_from_transfers,
)

__all__ = [
    "FlowTable",
    "reconstruct_flows",
    "DEFAULT_INACTIVITY_TIMEOUT",
    "TrafficMatrixSeries",
    "tm_series_from_events",
    "tm_series_from_transfers",
    "server_tm_to_tor_tm",
    "log_matrix",
    "PairByteStats",
    "CorrespondentStats",
    "PatternSummary",
    "pair_byte_stats",
    "correspondent_stats",
    "pattern_summary",
    "scatter_gather_servers",
    "CongestionEpisode",
    "CongestionSummary",
    "VictimFlowComparison",
    "hot_matrix",
    "find_episodes",
    "congestion_summary",
    "simultaneous_hot_links",
    "victim_flow_comparison",
    "flows_overlapping_congestion",
    "DurationStats",
    "InterarrivalStats",
    "duration_stats",
    "interarrival_stats",
    "detect_periodic_modes",
    "ChurnStats",
    "churn_stats",
    "normalized_change_series",
    "DailyImpact",
    "ImpactStudy",
    "read_failure_impact",
    "AttributionReport",
    "attribute_traffic",
    "kind_of_flows",
    "IncastAudit",
    "incast_audit",
    "incast_report",
    "max_concurrent_inbound",
    "TrafficCharacterization",
    "characterize",
]
