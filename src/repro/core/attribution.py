"""Traffic attribution: which applications cause which traffic (§4.2).

"To attribute network traffic to the applications that generate it, we
merge the network event logs with logs at the application-level that
describe which job and phase (e.g., map, reduce) were active at that
time."  The paper's findings from this merge: reduce (Aggregate) phases
cause much of the hotspot traffic as expected, but Extract remote reads
and server evacuations are *unexpected* contributors.

Flows in our reconstruction carry their job/phase tags (the collector
tags events with process context); evacuation and other non-job traffic
is identified by its service port.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.routing import Router
from ..instrumentation.applog import ApplicationLog
from ..instrumentation.collector import SERVICE_PORTS
from .congestion import DEFAULT_THRESHOLD, flows_overlapping_congestion
from .flows import FlowTable

__all__ = ["AttributionReport", "attribute_traffic", "kind_of_flows"]

_PORT_TO_KIND = {port: kind for kind, port in SERVICE_PORTS.items()}


def kind_of_flows(flows: FlowTable) -> list[str]:
    """Traffic kind per flow, recovered from the well-known service port."""
    return [_PORT_TO_KIND.get(int(port), "unknown") for port in flows.src_port]


@dataclass(frozen=True)
class AttributionReport:
    """Byte shares by phase type and by traffic kind.

    ``hot_*`` fields restrict to flows that overlapped high-utilisation
    links — the paper's question was specifically "when high utilization
    epochs happen ... the causes behind high volumes of traffic".
    """

    bytes_by_phase_type: dict[str, float]
    bytes_by_kind: dict[str, float]
    hot_bytes_by_phase_type: dict[str, float]
    hot_bytes_by_kind: dict[str, float]

    def share(self, table: dict[str, float], key: str) -> float:
        """Byte share of one category within a table."""
        total = sum(table.values())
        return table.get(key, 0.0) / total if total else 0.0

    def top_hot_contributors(self, n: int = 3) -> list[tuple[str, float]]:
        """Largest contributors to hot-link traffic, by kind+phase label."""
        merged: dict[str, float] = {}
        merged.update(self.hot_bytes_by_phase_type)
        for kind, value in self.hot_bytes_by_kind.items():
            if kind not in ("fetch",):  # fetch bytes already split by phase
                merged[kind] = merged.get(kind, 0.0) + value
        ranked = sorted(merged.items(), key=lambda kv: -kv[1])
        return ranked[:n]


def attribute_traffic(
    flows: FlowTable,
    applog: ApplicationLog,
    router: Router,
    utilization: np.ndarray,
    threshold: float = DEFAULT_THRESHOLD,
    bin_width: float = 1.0,
) -> AttributionReport:
    """Merge flows with application context and congestion exposure.

    Phase attribution uses the phase *type* from the application log
    (job_id + phase_index → declared type), so the analysis follows the
    paper's merge rather than trusting the traffic tags alone.
    """
    kinds = kind_of_flows(flows)
    hot_mask = flows_overlapping_congestion(
        flows, router, utilization, threshold, bin_width
    )

    phase_types: dict[tuple[int, int], str] = {}
    for record in applog.phase_starts:
        phase_types[(record.job_id, record.phase_index)] = record.phase_type

    bytes_by_phase: dict[str, float] = {}
    bytes_by_kind: dict[str, float] = {}
    hot_by_phase: dict[str, float] = {}
    hot_by_kind: dict[str, float] = {}
    for i in range(len(flows)):
        size = float(flows.num_bytes[i])
        kind = kinds[i]
        bytes_by_kind[kind] = bytes_by_kind.get(kind, 0.0) + size
        if hot_mask[i]:
            hot_by_kind[kind] = hot_by_kind.get(kind, 0.0) + size
        if kind == "fetch":
            job = int(flows.job_id[i])
            phase = int(flows.phase_index[i])
            label = phase_types.get((job, phase), "unknown-phase")
            bytes_by_phase[label] = bytes_by_phase.get(label, 0.0) + size
            if hot_mask[i]:
                hot_by_phase[label] = hot_by_phase.get(label, 0.0) + size

    return AttributionReport(
        bytes_by_phase_type=bytes_by_phase,
        bytes_by_kind=bytes_by_kind,
        hot_bytes_by_phase_type=hot_by_phase,
        hot_bytes_by_kind=hot_by_kind,
    )
