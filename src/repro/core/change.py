"""Traffic-matrix churn over time (paper §4.3, Fig 10).

Two views of how traffic changes: the aggregate rate over all server
pairs (the spiky top series, whose peaks approach half the full-duplex
bisection bandwidth), and the *participant* churn — the normalised L1
distance between TMs ``τ`` apart:

    NormalizedChange(t, τ) = |M(t + τ) − M(t)| / |M(t)|

where the numerator is the entry-wise absolute difference summed and the
denominator the sum of ``M(t)``'s entries.  The paper evaluates τ = 10 s
and τ = 100 s and finds large median change at both scales: the pairs
moving the bytes change even when the total does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .traffic_matrix import TrafficMatrixSeries

__all__ = ["ChurnStats", "normalized_change_series", "churn_stats"]


def normalized_change_series(series: TrafficMatrixSeries) -> np.ndarray:
    """Normalised L1 change between consecutive windows of a TM series.

    Entry ``k`` compares windows ``k`` and ``k+1`` (i.e. τ equals the
    series' window size).  Windows with zero traffic yield NaN.
    """
    matrices = series.matrices
    if matrices.shape[0] < 2:
        return np.empty(0)
    diffs = np.abs(matrices[1:] - matrices[:-1]).sum(axis=(1, 2))
    bases = matrices[:-1].sum(axis=(1, 2))
    with np.errstate(divide="ignore", invalid="ignore"):
        change = np.where(bases > 0, diffs / bases, np.nan)
    return change


@dataclass(frozen=True)
class ChurnStats:
    """Fig 10 summary for one run."""

    aggregate_rate: np.ndarray       # bytes/s per fine window
    rate_window: float
    change_short: np.ndarray         # normalised change at the short τ
    change_long: np.ndarray          # normalised change at the long τ
    tau_short: float
    tau_long: float
    peak_rate: float
    bisection_bandwidth: float

    @property
    def median_change_short(self) -> float:
        """Median normalised change at the short time-scale."""
        valid = self.change_short[~np.isnan(self.change_short)]
        return float(np.median(valid)) if valid.size else float("nan")

    @property
    def median_change_long(self) -> float:
        """Median normalised change at the long time-scale."""
        valid = self.change_long[~np.isnan(self.change_long)]
        return float(np.median(valid)) if valid.size else float("nan")

    @property
    def peak_over_bisection(self) -> float:
        """Peak aggregate rate / one-directional bisection bandwidth.

        The paper notes spikes above *half the full-duplex* bisection
        bandwidth, i.e. this ratio approaching (or exceeding) 1.0 in the
        one-directional normalisation used here.
        """
        if self.bisection_bandwidth <= 0:
            return float("nan")
        return self.peak_rate / self.bisection_bandwidth


def churn_stats(
    fine_series: TrafficMatrixSeries,
    bisection_bandwidth: float,
    long_factor: int = 10,
) -> ChurnStats:
    """Build the Fig 10 statistics from a fine-grained TM series.

    ``fine_series`` provides the short time-scale (e.g. 10 s windows);
    aggregating by ``long_factor`` gives the long one (e.g. 100 s).
    """
    totals = fine_series.totals_per_window()
    rate = totals / fine_series.window
    coarse = fine_series.aggregate(long_factor)
    return ChurnStats(
        aggregate_rate=rate,
        rate_window=fine_series.window,
        change_short=normalized_change_series(fine_series),
        change_long=normalized_change_series(coarse),
        tau_short=fine_series.window,
        tau_long=coarse.window,
        peak_rate=float(rate.max()) if rate.size else 0.0,
        bisection_bandwidth=bisection_bandwidth,
    )
