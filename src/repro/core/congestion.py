"""Congestion analysis (paper §4.2, Figs 5-7).

"We shift focus to hot-spots in the network, i.e., links that have
average utilization above some constant C.  Results in this section use
a value of C = 70%."  Given per-link per-second utilisation, this module
extracts:

* which links were hot and for how long (Fig 5),
* maximal congestion *episodes* per link and their length distribution
  (Fig 6),
* cross-link correlation of short congestion periods,
* victim flows: flows whose path overlapped a hot link-second, and how
  their rates compare to the population (Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.routing import Router
from ..util.stats import Ecdf, ecdf
from .flows import FlowTable

__all__ = [
    "CongestionEpisode",
    "CongestionSummary",
    "hot_matrix",
    "find_episodes",
    "congestion_summary",
    "summarize_episodes",
    "simultaneous_hot_links",
    "VictimFlowComparison",
    "victim_flow_comparison",
    "flows_overlapping_congestion",
]

DEFAULT_THRESHOLD = 0.7


@dataclass(frozen=True)
class CongestionEpisode:
    """A maximal run of consecutive hot seconds on one link."""

    link_id: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        """Episode end time."""
        return self.start + self.duration


def hot_matrix(utilization: np.ndarray, threshold: float = DEFAULT_THRESHOLD) -> np.ndarray:
    """Boolean (links, seconds) matrix of hot link-seconds."""
    if not 0 < threshold <= 1:
        raise ValueError("threshold must lie in (0, 1]")
    return utilization >= threshold


def find_episodes(
    hot: np.ndarray, bin_width: float = 1.0, link_ids: np.ndarray | None = None
) -> list[CongestionEpisode]:
    """Extract maximal hot runs per link from a boolean (links, bins) matrix."""
    episodes: list[CongestionEpisode] = []
    num_links, num_bins = hot.shape
    ids = link_ids if link_ids is not None else np.arange(num_links)
    for row in range(num_links):
        series = hot[row]
        if not series.any():
            continue
        padded = np.concatenate(([False], series, [False]))
        changes = np.diff(padded.astype(np.int8))
        starts = np.flatnonzero(changes == 1)
        ends = np.flatnonzero(changes == -1)
        for start, end in zip(starts, ends):
            episodes.append(
                CongestionEpisode(
                    link_id=int(ids[row]),
                    start=start * bin_width,
                    duration=(end - start) * bin_width,
                )
            )
    return episodes


@dataclass(frozen=True)
class CongestionSummary:
    """The Fig 5/6 headline statistics for one run."""

    num_links: int
    links_with_any_congestion: int
    frac_links_hot_at_least_10s: float
    frac_links_hot_at_least_100s: float
    episodes: list[CongestionEpisode]
    longest_episode: float
    episodes_over_10s: int

    def episode_duration_ecdf(self, min_duration: float = 1.0) -> Ecdf:
        """ECDF of episode durations at least ``min_duration`` (Fig 6)."""
        durations = [e.duration for e in self.episodes if e.duration >= min_duration]
        return ecdf(durations)

    def frac_episodes_at_most(self, limit: float, min_duration: float = 1.0) -> float:
        """Fraction of episodes >= ``min_duration`` lasting <= ``limit``."""
        durations = [e.duration for e in self.episodes if e.duration >= min_duration]
        if not durations:
            return 0.0
        return sum(1 for d in durations if d <= limit) / len(durations)


def congestion_summary(
    utilization: np.ndarray,
    threshold: float = DEFAULT_THRESHOLD,
    bin_width: float = 1.0,
    link_ids: np.ndarray | None = None,
) -> CongestionSummary:
    """Characterise hot links and episodes for a utilisation matrix.

    ``utilization`` should cover the *observed* links only (the paper
    studies "the inter-switch links that carry the traffic of the
    monitored machines"); pass the corresponding ``link_ids`` so episode
    records refer back to topology links.
    """
    hot = hot_matrix(utilization, threshold)
    episodes = find_episodes(hot, bin_width=bin_width, link_ids=link_ids)
    return summarize_episodes(episodes, hot.shape[0])


def summarize_episodes(
    episodes: list[CongestionEpisode], num_links: int
) -> CongestionSummary:
    """Fold an episode list into the Fig 5/6 headline statistics.

    Shared by :func:`congestion_summary` and the streaming accumulator
    (:class:`~repro.core.streaming.StreamingCongestion`), so both paths
    compute the summary fields identically.
    """
    longest_by_link: dict[int, float] = {}
    for episode in episodes:
        longest_by_link[episode.link_id] = max(
            longest_by_link.get(episode.link_id, 0.0), episode.duration
        )
    longest_values = np.array(list(longest_by_link.values()))
    return CongestionSummary(
        num_links=num_links,
        links_with_any_congestion=len(longest_by_link),
        frac_links_hot_at_least_10s=(
            float((longest_values >= 10.0).sum()) / num_links if num_links else 0.0
        ),
        frac_links_hot_at_least_100s=(
            float((longest_values >= 100.0).sum()) / num_links if num_links else 0.0
        ),
        episodes=episodes,
        longest_episode=float(longest_values.max()) if longest_values.size else 0.0,
        episodes_over_10s=sum(1 for e in episodes if e.duration > 10.0),
    )


def simultaneous_hot_links(
    utilization: np.ndarray, threshold: float = DEFAULT_THRESHOLD
) -> np.ndarray:
    """Number of links simultaneously hot in each second.

    The paper observes that short congestion periods "are highly
    correlated across many tens of links" — visible here as seconds where
    this count spikes well above its median.
    """
    return hot_matrix(utilization, threshold).sum(axis=0)


@dataclass(frozen=True)
class VictimFlowComparison:
    """Fig 7: rates of congestion-overlapping flows vs all flows."""

    all_rates: np.ndarray
    overlapping_rates: np.ndarray

    def all_ecdf(self) -> Ecdf:
        """Rate ECDF over every flow."""
        return ecdf(self.all_rates)

    def overlapping_ecdf(self) -> Ecdf:
        """Rate ECDF over flows that overlapped congestion."""
        return ecdf(self.overlapping_rates)

    @property
    def median_ratio(self) -> float:
        """median(overlapping) / median(all); ≈1 means little collateral
        rate damage, the paper's reading of Fig 7."""
        if self.overlapping_rates.size == 0 or self.all_rates.size == 0:
            return float("nan")
        all_median = float(np.median(self.all_rates))
        if all_median == 0:
            return float("nan")
        return float(np.median(self.overlapping_rates)) / all_median


def flows_overlapping_congestion(
    flows: FlowTable,
    router: Router,
    utilization: np.ndarray,
    threshold: float = DEFAULT_THRESHOLD,
    bin_width: float = 1.0,
) -> np.ndarray:
    """Boolean mask: which flows crossed a hot link-second they overlapped.

    A flow overlaps congestion when some link on its path was hot during
    some second of the flow's lifetime.
    """
    hot = hot_matrix(utilization, threshold)
    num_bins = hot.shape[1]
    overlap = np.zeros(len(flows), dtype=bool)
    # Hot seconds per link, for a quick emptiness test.
    hot_any = hot.any(axis=1)
    path_cache: dict[tuple[int, int], tuple[int, ...]] = {}
    for i in range(len(flows)):
        src = int(flows.src[i])
        dst = int(flows.dst[i])
        key = (src, dst)
        path = path_cache.get(key)
        if path is None:
            path = router.path_links(src, dst)
            path_cache[key] = path
        if not path:
            continue
        first_bin = max(int(flows.start_time[i] // bin_width), 0)
        last_bin = min(int(flows.end_time[i] // bin_width), num_bins - 1)
        if last_bin < first_bin:
            continue
        for link in path:
            if link < hot.shape[0] and hot_any[link]:
                if hot[link, first_bin : last_bin + 1].any():
                    overlap[i] = True
                    break
    return overlap


def victim_flow_comparison(
    flows: FlowTable,
    router: Router,
    utilization: np.ndarray,
    threshold: float = DEFAULT_THRESHOLD,
    bin_width: float = 1.0,
) -> VictimFlowComparison:
    """Build the Fig 7 comparison for a reconstructed flow table."""
    overlap = flows_overlapping_congestion(flows, router, utilization,
                                           threshold, bin_width)
    return VictimFlowComparison(
        all_rates=flows.rates,
        overlapping_rates=flows.rates[overlap],
    )
