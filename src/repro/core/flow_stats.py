"""Flow microscopics: durations, sizes, inter-arrivals (paper §4.3).

Implements the statistics behind Fig 9 (flow duration CDF and the
bytes-weighted duration CDF) and Fig 11 (flow inter-arrival time
distributions seen by the whole cluster, by ToR switches and by
servers, with their periodic modes), plus the aggregate arrival-rate
numbers the paper quotes (median arrival rate of 10^5 flows/s at
production scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterTopology
from ..util.stats import Ecdf, ecdf, weighted_ecdf
from .flows import FlowTable

__all__ = [
    "DurationStats",
    "duration_stats",
    "InterarrivalStats",
    "interarrival_stats",
    "detect_periodic_modes",
    "estimate_mode_spacing",
]


@dataclass(frozen=True)
class DurationStats:
    """Fig 9: flow-duration distribution, unweighted and byte-weighted."""

    flow_cdf: Ecdf
    byte_cdf: Ecdf
    frac_flows_under_10s: float
    frac_flows_over_200s: float
    frac_bytes_under_25s: float
    total_flows: int
    total_bytes: float


def duration_stats(flows: FlowTable) -> DurationStats:
    """Compute the Fig 9 statistics for a flow table."""
    durations = flows.durations
    flow_cdf = ecdf(durations)
    byte_cdf = weighted_ecdf(durations, flows.num_bytes)
    total = len(flows)
    return DurationStats(
        flow_cdf=flow_cdf,
        byte_cdf=byte_cdf,
        frac_flows_under_10s=(
            float(flow_cdf.evaluate(10.0)[0]) if total else 0.0
        ),
        frac_flows_over_200s=(
            1.0 - float(flow_cdf.evaluate(200.0)[0]) if total else 0.0
        ),
        frac_bytes_under_25s=(
            float(byte_cdf.evaluate(25.0)[0]) if byte_cdf.n else 0.0
        ),
        total_flows=total,
        total_bytes=flows.total_bytes(),
    )


@dataclass(frozen=True)
class InterarrivalStats:
    """Fig 11: inter-arrival distributions at three vantage points.

    ``cluster`` pools every flow arrival; ``per_tor`` and ``per_server``
    pool the inter-arrival gaps computed separately at each ToR / server
    ("averaged" across vantage points, as in the paper's figure).
    """

    cluster: Ecdf
    per_tor: Ecdf
    per_server: Ecdf
    median_cluster_rate: float  # flows per second, cluster-wide
    server_modes: np.ndarray    # detected periodic mode positions (s)
    #: Autocorrelation-estimated period of the server modes (s); NaN when
    #: no periodic structure stands out.
    server_mode_spacing: float

    @property
    def median_cluster_interarrival(self) -> float:
        """Median gap between consecutive flow arrivals cluster-wide."""
        return self.cluster.median() if self.cluster.n else float("nan")


def _gaps(times: np.ndarray) -> np.ndarray:
    if times.size < 2:
        return np.empty(0)
    ordered = np.sort(times)
    return np.diff(ordered)


def interarrival_stats(
    flows: FlowTable,
    topology: ClusterTopology,
    mode_resolution: float = 1e-3,
) -> InterarrivalStats:
    """Inter-arrival gap distributions at cluster/ToR/server vantage points.

    A flow "arrives" at a server when that server is either endpoint; at a
    ToR when either endpoint lives under it.
    """
    starts = flows.start_time
    cluster_gaps = _gaps(starts)

    server_gap_chunks: list[np.ndarray] = []
    for server in range(topology.num_servers):
        mask = (flows.src == server) | (flows.dst == server)
        gaps = _gaps(starts[mask])
        if gaps.size:
            server_gap_chunks.append(gaps)
    server_gaps = (
        np.concatenate(server_gap_chunks) if server_gap_chunks else np.empty(0)
    )

    tor_gap_chunks: list[np.ndarray] = []
    racks_src = np.array(
        [
            topology.rack_of(int(s)) if int(s) < topology.num_servers else -1
            for s in flows.src
        ]
    )
    racks_dst = np.array(
        [
            topology.rack_of(int(d)) if int(d) < topology.num_servers else -1
            for d in flows.dst
        ]
    )
    for rack in range(topology.num_racks):
        mask = (racks_src == rack) | (racks_dst == rack)
        gaps = _gaps(starts[mask])
        if gaps.size:
            tor_gap_chunks.append(gaps)
    tor_gaps = np.concatenate(tor_gap_chunks) if tor_gap_chunks else np.empty(0)

    if starts.size >= 2:
        span = float(starts.max() - starts.min())
        rate = (starts.size - 1) / span if span > 0 else float("inf")
    else:
        rate = 0.0

    return InterarrivalStats(
        cluster=ecdf(cluster_gaps),
        per_tor=ecdf(tor_gaps),
        per_server=ecdf(server_gaps),
        median_cluster_rate=rate,
        server_modes=detect_periodic_modes(server_gaps, resolution=mode_resolution),
        server_mode_spacing=estimate_mode_spacing(server_gaps,
                                                  resolution=mode_resolution),
    )


def detect_periodic_modes(
    gaps: np.ndarray,
    resolution: float = 1e-3,
    max_gap: float = 0.2,
    min_prominence: float = 3.5,
) -> np.ndarray:
    """Find periodic peaks in an inter-arrival distribution (Fig 11 modes).

    Histograms gaps below ``max_gap`` at ``resolution`` and returns the
    centres of bins that are local maxima well above the noise floor —
    the "pronounced periodic modes spaced apart by roughly 15 ms" the
    paper attributes to stop-and-go flow creation.  Gaps under two
    resolution steps are excluded: near-simultaneous starts within one
    scheduling batch form a spike at zero, not a periodic mode.
    """
    small = gaps[(gaps > 2 * resolution) & (gaps <= max_gap)]
    if small.size < 10:
        return np.empty(0)
    bins = int(np.ceil(max_gap / resolution))
    counts, edges = np.histogram(small, bins=bins, range=(0.0, max_gap))
    centres = 0.5 * (edges[:-1] + edges[1:])
    baseline = max(float(np.median(counts[counts > 0])), 1.0)
    floor = max(min_prominence * baseline, 0.12 * float(counts.max()))
    peaks = []
    for i in range(1, len(counts) - 1):
        if counts[i] < floor:
            continue
        if counts[i] < counts[i - 1] or counts[i] < counts[i + 1]:
            continue
        # Local prominence: a mode towers over its neighbourhood, which a
        # smooth (e.g. exponential) gap distribution never does.
        lo, hi = max(0, i - 6), min(len(counts), i + 7)
        neighbourhood = np.concatenate(
            [counts[lo : max(lo, i - 1)], counts[i + 2 : hi]]
        )
        local_level = (
            max(float(np.median(neighbourhood)), 1.0) if neighbourhood.size else 1.0
        )
        if counts[i] >= 2.0 * local_level:
            peaks.append(centres[i])
    # Merge adjacent bins that belong to one mode.
    merged: list[float] = []
    for peak in peaks:
        if merged and peak - merged[-1] <= 2 * resolution:
            continue
        merged.append(float(peak))
    return np.asarray(merged)


def estimate_mode_spacing(
    gaps: np.ndarray,
    resolution: float = 1e-3,
    max_gap: float = 0.12,
    min_lag: float = 4e-3,
) -> float:
    """Estimate the period of an inter-arrival distribution's modes.

    Autocorrelates the gap histogram and returns the lag (seconds) of the
    strongest peak at or beyond ``min_lag`` — robust against uneven mode
    heights, which trip simple peak-to-peak differencing.  Returns NaN
    when no periodic structure stands out.
    """
    small = gaps[(gaps > 2 * resolution) & (gaps <= max_gap)]
    if small.size < 20:
        return float("nan")
    bins = int(np.ceil(max_gap / resolution))
    counts, _edges = np.histogram(small, bins=bins, range=(0.0, max_gap))
    signal = counts - counts.mean()
    correlation = np.correlate(signal, signal, mode="full")[signal.size - 1 :]
    start = max(2, int(np.ceil(min_lag / resolution)))
    if start >= correlation.size:
        return float("nan")
    window = correlation[start:]
    best = int(np.argmax(window)) + start
    if correlation[best] <= 0:
        return float("nan")
    return best * resolution
