"""Flow reconstruction from socket-level logs (paper §3 methodology).

"By flow, we mean the canonical five-tuple (source IP, port, destination
IP, port and protocol).  When explicit begins and ends of a flow are not
available, similar to much prior work, we use a long inactivity timeout
(default 60s) to determine when a flow ends (or a new one begins)."

The reconstruction here follows that definition exactly: socket events
are grouped by five-tuple, and a gap longer than the timeout splits the
event stream into separate flows.  Because both endpoints of an
intra-cluster transfer log the same bytes (send side and receive side),
the reconstruction prefers send-side events and falls back to receive-
side events only for tuples with no sender in the instrumented set
(traffic arriving from external hosts) — otherwise traffic would be
double-counted.

Everything is vectorised over the columnar event log; a day-equivalent
of events reconstructs in well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..instrumentation.events import DIRECTION_SEND, SocketEventLog

__all__ = ["FlowTable", "reconstruct_flows", "DEFAULT_INACTIVITY_TIMEOUT"]

#: The paper's default inactivity timeout, seconds.
DEFAULT_INACTIVITY_TIMEOUT = 60.0

#: Flows reconstructed from a single event have zero extent; durations are
#: floored at one millisecond so that rates stay finite.
_MIN_DURATION = 1e-3


@dataclass(frozen=True)
class FlowTable:
    """Reconstructed flows, column-wise.

    All arrays share length ``len(self)``.  ``job_id``/``phase_index`` are
    the application context merged from the event tags (-1 when unknown),
    which is the server-side linkage the paper uses to attribute traffic.
    """

    src: np.ndarray
    src_port: np.ndarray
    dst: np.ndarray
    dst_port: np.ndarray
    protocol: np.ndarray
    start_time: np.ndarray
    end_time: np.ndarray
    num_bytes: np.ndarray
    num_events: np.ndarray
    job_id: np.ndarray
    phase_index: np.ndarray

    def __len__(self) -> int:
        return int(self.src.size)

    @property
    def durations(self) -> np.ndarray:
        """Flow durations, floored at one millisecond."""
        return np.maximum(self.end_time - self.start_time, _MIN_DURATION)

    @property
    def rates(self) -> np.ndarray:
        """Mean flow rates in bytes/s."""
        return self.num_bytes / self.durations

    def select(self, mask: np.ndarray) -> "FlowTable":
        """A new table with only rows where ``mask`` is true."""
        return FlowTable(
            src=self.src[mask],
            src_port=self.src_port[mask],
            dst=self.dst[mask],
            dst_port=self.dst_port[mask],
            protocol=self.protocol[mask],
            start_time=self.start_time[mask],
            end_time=self.end_time[mask],
            num_bytes=self.num_bytes[mask],
            num_events=self.num_events[mask],
            job_id=self.job_id[mask],
            phase_index=self.phase_index[mask],
        )

    def total_bytes(self) -> float:
        """Total bytes over all flows."""
        return float(self.num_bytes.sum())

    def involving_server(self, server: int) -> "FlowTable":
        """Flows with ``server`` as either endpoint."""
        return self.select((self.src == server) | (self.dst == server))


def _tuple_ids(log: SocketEventLog) -> np.ndarray:
    """Dense ids for each event's five-tuple."""
    key = np.stack(
        [
            log.column("src"),
            log.column("src_port"),
            log.column("dst"),
            log.column("dst_port"),
            log.column("protocol"),
        ],
        axis=1,
    )
    _, ids = np.unique(key, axis=0, return_inverse=True)
    return ids


def reconstruct_flows(
    log,
    inactivity_timeout: float = DEFAULT_INACTIVITY_TIMEOUT,
) -> FlowTable:
    """Rebuild flows from a finalized socket event log.

    ``log`` is a finalized :class:`SocketEventLog`, a trace path, or a
    :class:`~repro.trace.reader.TraceReader` (trace sources are loaded in
    full; use :class:`~repro.core.streaming.StreamingFlows` for
    constant-memory reconstruction).

    Events of each five-tuple are ordered in time; a silence longer than
    ``inactivity_timeout`` ends the current flow and begins a new one.
    """
    if inactivity_timeout <= 0:
        raise ValueError("inactivity_timeout must be positive")
    if not isinstance(log, SocketEventLog):
        from ..trace.reader import as_event_log  # lazy: core must not need trace

        log = as_event_log(log)
    if len(log) == 0:
        empty_f = np.empty(0, dtype=float)
        empty_i = np.empty(0, dtype=np.int64)
        return FlowTable(
            src=empty_i, src_port=empty_i.copy(), dst=empty_i.copy(),
            dst_port=empty_i.copy(), protocol=np.empty(0, dtype=np.int16),
            start_time=empty_f, end_time=empty_f.copy(),
            num_bytes=empty_f.copy(), num_events=empty_i.copy(),
            job_id=empty_i.copy(), phase_index=empty_i.copy(),
        )

    tuple_ids = _tuple_ids(log)
    direction = log.column("direction")

    # Send-side preference: drop receive-side duplicates for tuples that
    # have send events in the log.
    sends_per_tuple = np.bincount(
        tuple_ids, weights=(direction == DIRECTION_SEND).astype(float)
    )
    tuple_has_send = sends_per_tuple > 0
    keep = (direction == DIRECTION_SEND) | ~tuple_has_send[tuple_ids]

    times = log.column("timestamp")[keep]
    tuples = tuple_ids[keep]
    num_bytes = log.column("num_bytes")[keep]
    src = log.column("src")[keep]
    src_port = log.column("src_port")[keep]
    dst = log.column("dst")[keep]
    dst_port = log.column("dst_port")[keep]
    protocol = log.column("protocol")[keep]
    job_id = log.column("job_id")[keep]
    phase_index = log.column("phase_index")[keep]

    order = np.lexsort((times, tuples))
    times = times[order]
    tuples = tuples[order]
    num_bytes = num_bytes[order]
    src, src_port = src[order], src_port[order]
    dst, dst_port = dst[order], dst_port[order]
    protocol = protocol[order]
    job_id, phase_index = job_id[order], phase_index[order]

    new_tuple = np.empty(times.size, dtype=bool)
    new_tuple[0] = True
    new_tuple[1:] = tuples[1:] != tuples[:-1]
    gap = np.empty(times.size, dtype=float)
    gap[0] = np.inf
    gap[1:] = times[1:] - times[:-1]
    new_flow = new_tuple | (gap > inactivity_timeout)
    starts = np.flatnonzero(new_flow)
    ends = np.append(starts[1:], times.size) - 1

    flow_bytes = np.add.reduceat(num_bytes, starts)
    flow_events = (ends - starts + 1).astype(np.int64)

    return FlowTable(
        src=src[starts],
        src_port=src_port[starts],
        dst=dst[starts],
        dst_port=dst_port[starts],
        protocol=protocol[starts],
        start_time=times[starts],
        end_time=times[ends],
        num_bytes=flow_bytes,
        num_events=flow_events,
        job_id=job_id[starts],
        phase_index=phase_index[starts],
    )
