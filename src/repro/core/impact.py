"""Congestion impact on jobs: the read-failure uplift (paper §4.2, Fig 8).

"Errors such as flow timeouts or failure to start may not be visible in
flow rates, hence we correlate high utilization epochs directly with
application level logs ... jobs experience a median increase of 1.1x in
their probability of failing to read input(s) if they have flows
traversing high utilization links."

The analysis works purely from observables a real campaign has: the
application log (which jobs failed to read inputs) and the flow table
merged with link utilisation (which jobs had flows overlapping hot
links).  The simulator's internal hazard model is *not* consulted — the
uplift has to be recovered from the logs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.routing import Router
from ..instrumentation.applog import ApplicationLog
from ..instrumentation.collector import SERVICE_PORTS
from .congestion import DEFAULT_THRESHOLD, flows_overlapping_congestion
from .flows import FlowTable

__all__ = ["DailyImpact", "ImpactStudy", "read_failure_impact"]


@dataclass(frozen=True)
class DailyImpact:
    """Fig 8, one bar: read-failure uplift for one (simulated) day."""

    day: int
    jobs_overlapping: int
    jobs_clear: int
    failure_rate_overlapping: float
    failure_rate_clear: float

    @property
    def uplift_percent(self) -> float:
        """Percent increase in P(read failure) given congestion overlap.

        NaN when either group is empty or the clear-group rate is zero
        with a zero overlapping rate.
        """
        if self.jobs_overlapping == 0 or self.jobs_clear == 0:
            return float("nan")
        if self.failure_rate_clear == 0.0:
            return float("inf") if self.failure_rate_overlapping > 0 else 0.0
        ratio = self.failure_rate_overlapping / self.failure_rate_clear
        return (ratio - 1.0) * 100.0


@dataclass(frozen=True)
class ImpactStudy:
    """Fig 8 across all days."""

    days: list[DailyImpact]

    @property
    def median_uplift_ratio(self) -> float:
        """Median across days of P(fail | overlap) / P(fail | clear).

        Days where either group saw no jobs, or where a zero clear-group
        rate makes the ratio undefined, are excluded — at reproduction
        scale some days simply have too few clear-group jobs for a rate.
        """
        ratios = []
        for day in self.days:
            uplift = day.uplift_percent
            if np.isfinite(uplift):
                ratios.append(1.0 + uplift / 100.0)
        return float(np.median(ratios)) if ratios else float("nan")

    @property
    def pooled_uplift_ratio(self) -> float:
        """P(fail | overlap) / P(fail | clear) pooled over all days.

        The per-day bars are the paper's presentation, but with tens of
        jobs per scaled day the daily clear-group rates are noisy; the
        pooled ratio is the stable version of the same comparison.
        """
        overlap_jobs = sum(d.jobs_overlapping for d in self.days)
        clear_jobs = sum(d.jobs_clear for d in self.days)
        if overlap_jobs == 0 or clear_jobs == 0:
            return float("nan")
        overlap_failures = sum(
            d.failure_rate_overlapping * d.jobs_overlapping for d in self.days
        )
        clear_failures = sum(d.failure_rate_clear * d.jobs_clear for d in self.days)
        if clear_failures == 0:
            return float("inf") if overlap_failures > 0 else float("nan")
        return (overlap_failures / overlap_jobs) / (clear_failures / clear_jobs)

    def uplift_bars(self) -> list[tuple[int, float]]:
        """(day, uplift %) pairs for rendering the Fig 8 bar chart."""
        return [(d.day, d.uplift_percent) for d in self.days]


def read_failure_impact(
    applog: ApplicationLog,
    flows: FlowTable,
    router: Router,
    utilization: np.ndarray,
    day_length: float,
    threshold: float = DEFAULT_THRESHOLD,
    bin_width: float = 1.0,
) -> ImpactStudy:
    """Correlate read failures with congestion overlap, per day.

    For each job: did any of its *input-read* flows overlap a hot
    link-second (congestion exposure), and did the application log record
    a read failure for it?  Jobs are assigned to the day containing their
    start.

    Only fetch flows (the storage-service port) qualify a job as
    congestion-exposed: Fig 8 is about "jobs ... unable to read requisite
    data over the network", and long-lived control connections would
    otherwise mark nearly every job as exposed whenever any link was ever
    hot during its lifetime.
    """
    if day_length <= 0:
        raise ValueError("day_length must be positive")
    fetch_flows = flows.select(flows.src_port == SERVICE_PORTS["fetch"])
    overlap_mask = flows_overlapping_congestion(
        fetch_flows, router, utilization, threshold, bin_width
    )
    job_overlapped: dict[int, bool] = {}
    flow_jobs = fetch_flows.job_id
    for i in range(len(fetch_flows)):
        job = int(flow_jobs[i])
        if job < 0:
            continue
        job_overlapped[job] = job_overlapped.get(job, False) or bool(overlap_mask[i])

    failed_jobs = applog.jobs_with_read_failures()
    days: dict[int, dict[str, int]] = {}
    for record in applog.job_starts:
        job = record.job_id
        day = int(record.time // day_length)
        bucket = days.setdefault(
            day,
            {"overlap": 0, "overlap_fail": 0, "clear": 0, "clear_fail": 0},
        )
        overlapped = job_overlapped.get(job, False)
        failed = job in failed_jobs
        if overlapped:
            bucket["overlap"] += 1
            bucket["overlap_fail"] += int(failed)
        else:
            bucket["clear"] += 1
            bucket["clear_fail"] += int(failed)

    results = []
    for day in sorted(days):
        bucket = days[day]
        results.append(
            DailyImpact(
                day=day,
                jobs_overlapping=bucket["overlap"],
                jobs_clear=bucket["clear"],
                failure_rate_overlapping=(
                    bucket["overlap_fail"] / bucket["overlap"]
                    if bucket["overlap"]
                    else 0.0
                ),
                failure_rate_clear=(
                    bucket["clear_fail"] / bucket["clear"] if bucket["clear"] else 0.0
                ),
            )
        )
    return ImpactStudy(days=results)
