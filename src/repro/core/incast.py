"""Incast precondition audit (paper §4.4).

The paper sees no direct evidence of TCP incast collapse and argues the
preconditions rarely co-occur in this cluster:

1. applications cap simultaneously open connections (default 4), so few
   flows contend at once;
2. computation placement keeps most exchanges local (in-rack / in-VLAN),
   isolating flows from shared bottlenecks;
3. many jobs multiplex the network, so freed bandwidth is re-used rather
   than collapsing.

This module audits those preconditions in a reconstructed flow table:
the distribution of simultaneous inbound flows per server (synchronised
fan-in is what triggers incast), locality shares, and job multiplexing.

Under the fluid transports the audit can only *assert* risk — the
ideal-by-construction allocator never collapses.  When a queue-aware
transport ran (``SimulationResult.cc`` is populated),
:func:`incast_report` replaces the asserted-precondition path with
*measured* collapse: delivered goodput against the bottleneck fair
share, plus the RTO and retransmission counters that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cluster.topology import ClusterTopology
from .flows import FlowTable

if TYPE_CHECKING:
    from ..simulation.simulator import SimulationResult

__all__ = [
    "IncastAudit",
    "incast_audit",
    "incast_report",
    "max_concurrent_inbound",
]


def max_concurrent_inbound(
    flows: FlowTable, server: int, resolution: float = 0.01
) -> int:
    """Peak number of simultaneously active inbound flows at one server.

    Computed by a sweep over flow start/end events quantised to
    ``resolution`` (sub-quantum overlaps count as simultaneous, which is
    exactly the incast-relevant case).
    """
    mask = flows.dst == server
    if not mask.any():
        return 0
    starts = np.floor(flows.start_time[mask] / resolution)
    ends = np.floor(flows.end_time[mask] / resolution) + 1
    events = np.concatenate([starts, ends])
    deltas = np.concatenate([np.ones(starts.size), -np.ones(ends.size)])
    order = np.argsort(events, kind="stable")
    running = np.cumsum(deltas[order])
    return int(running.max())


@dataclass(frozen=True)
class IncastAudit:
    """The §4.4 precondition report."""

    max_concurrent_inbound_per_server: np.ndarray
    frac_flows_in_rack: float
    frac_flows_in_vlan: float
    median_concurrent_jobs: float
    connection_cap: int

    @property
    def frac_servers_exceeding_cap(self) -> float:
        """Fraction of servers whose peak inbound fan-in exceeded the
        application connection cap (per-source cap times a small factor
        would be needed for synchronised incast)."""
        counts = self.max_concurrent_inbound_per_server
        if counts.size == 0:
            return 0.0
        return float((counts > self.connection_cap).sum() / counts.size)

    @property
    def peak_fan_in(self) -> int:
        """Largest simultaneous inbound flow count at any server."""
        counts = self.max_concurrent_inbound_per_server
        return int(counts.max()) if counts.size else 0


def incast_audit(
    flows: FlowTable,
    topology: ClusterTopology,
    connection_cap: int = 4,
    resolution: float = 0.01,
) -> IncastAudit:
    """Audit the incast preconditions over a reconstructed flow table."""
    fan_in = np.array(
        [
            max_concurrent_inbound(flows, server, resolution)
            for server in range(topology.num_servers)
        ]
    )
    total = len(flows)
    if total:
        in_rack = sum(
            1
            for i in range(total)
            if topology.same_rack(int(flows.src[i]), int(flows.dst[i]))
        )
        in_vlan = sum(
            1
            for i in range(total)
            if topology.same_vlan(int(flows.src[i]), int(flows.dst[i]))
        )
        frac_rack = in_rack / total
        frac_vlan = in_vlan / total
    else:
        frac_rack = frac_vlan = 0.0

    jobs = flows.job_id
    starts = flows.start_time
    ends = flows.end_time
    tagged = jobs >= 0
    if tagged.any():
        span_end = float(ends[tagged].max())
        seconds = np.arange(0.0, max(span_end, 1.0), 1.0)
        concurrent = []
        for second in seconds:
            active = tagged & (starts <= second + 1.0) & (ends >= second)
            concurrent.append(len(set(jobs[active].tolist())))
        median_jobs = float(np.median(concurrent)) if concurrent else 0.0
    else:
        median_jobs = 0.0

    return IncastAudit(
        max_concurrent_inbound_per_server=fan_in,
        frac_flows_in_rack=frac_rack,
        frac_flows_in_vlan=frac_vlan,
        median_concurrent_jobs=median_jobs,
        connection_cap=connection_cap,
    )


def incast_report(
    result: "SimulationResult",
    connection_cap: int = 4,
    resolution: float = 0.01,
) -> dict:
    """The §4.4 incast summary for one campaign, measured when possible.

    Fluid transports cannot exhibit collapse, so their report wraps the
    precondition audit and is tagged ``"asserted": True``.  Queued
    transports produce a *measured* report (``"asserted": False``):
    per-server delivered goodput against the access-link fair share over
    each server's busy window, the worst (lowest) goodput ratio, and the
    RTO/retransmission counters behind it.
    """
    report = getattr(result, "cc", None)
    if report is None:
        from .flows import reconstruct_flows

        flows = reconstruct_flows(result.socket_log)
        audit = incast_audit(
            flows, result.topology,
            connection_cap=connection_cap, resolution=resolution,
        )
        return {
            "asserted": True,
            "transport_impl": result.config.transport_impl,
            "peak_fan_in": audit.peak_fan_in,
            "frac_servers_exceeding_cap": audit.frac_servers_exceeding_cap,
            "frac_flows_in_rack": audit.frac_flows_in_rack,
            "median_concurrent_jobs": audit.median_concurrent_jobs,
        }

    topology = result.topology
    transfers = result.transfers
    # Per-receiver delivered goodput over its own busy window, against
    # the receiver's access downlink capacity (the incast bottleneck).
    worst_ratio = float("inf")
    worst_server = -1
    peak_fan_in = 0
    for server in {t.dst for t in transfers}:
        if not 0 <= server < topology.num_servers:
            continue
        inbound = [t for t in transfers if t.dst == server]
        window = max(t.end_time for t in inbound) - min(
            t.start_time for t in inbound
        )
        if window <= 0:
            continue
        capacity = topology.link_between(
            topology.tor_of_rack(topology.rack_of(server)), server
        ).capacity
        ratio = sum(t.size for t in inbound) / window / capacity
        if ratio < worst_ratio:
            worst_ratio = ratio
            worst_server = server
        peak_fan_in = max(peak_fan_in, len(inbound))
    if worst_server < 0:
        worst_ratio = 0.0
    return {
        "asserted": False,
        "transport_impl": result.config.transport_impl,
        "peak_fan_in": peak_fan_in,
        "worst_goodput_ratio": worst_ratio,
        "worst_server": worst_server,
        "timeouts": report.total_timeouts,
        "retransmitted_bytes": report.total_retransmitted_bytes,
        "dropped_packets": report.dropped_packets,
        "marked_packets": report.marked_packets,
    }
