"""Macroscopic traffic patterns (paper §4.1, Figs 2-4).

Quantifies the two dominant patterns and the pair-level statistics the
paper reports:

* **work-seeks-bandwidth** — traffic concentrates among servers that sit
  close in the topology (same rack, same VLAN);
* **scatter-gather** — single servers push to / pull from many servers
  across the cluster (map/reduce primitives);
* pair-byte distributions (Fig 3): heavy-tailed log-byte distributions
  with very different zero-probabilities in-rack vs cross-rack;
* correspondent counts (Fig 4): bimodal in-rack behaviour, median two
  in-rack and four cross-rack correspondents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterTopology
from ..util.stats import Ecdf, ecdf

__all__ = [
    "PairByteStats",
    "CorrespondentStats",
    "PatternSummary",
    "pair_byte_stats",
    "correspondent_stats",
    "pattern_summary",
    "scatter_gather_servers",
]


def _rack_masks(
    topology: ClusterTopology, endpoint_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(server mask, same-rack pair mask, cross-rack pair mask).

    Pair masks are (n, n) with the diagonal excluded; external endpoints
    are excluded from both masks (they have no rack).
    """
    racks = np.array(
        [
            topology.rack_of(int(node)) if int(node) < topology.num_servers else -1
            for node in endpoint_ids
        ]
    )
    is_server = racks >= 0
    same_rack = (racks[:, None] == racks[None, :]) & is_server[:, None] & is_server[None, :]
    cross_rack = (racks[:, None] != racks[None, :]) & is_server[:, None] & is_server[None, :]
    np.fill_diagonal(same_rack, False)
    return is_server, same_rack, cross_rack


@dataclass(frozen=True)
class PairByteStats:
    """Fig 3: distribution of bytes exchanged between server pairs."""

    in_rack_log_bytes: np.ndarray
    cross_rack_log_bytes: np.ndarray
    prob_zero_in_rack: float
    prob_zero_cross_rack: float

    @property
    def prob_talk_in_rack(self) -> float:
        """Probability an in-rack pair exchanged any traffic."""
        return 1.0 - self.prob_zero_in_rack

    @property
    def prob_talk_cross_rack(self) -> float:
        """Probability a cross-rack pair exchanged any traffic."""
        return 1.0 - self.prob_zero_cross_rack


def pair_byte_stats(
    tm: np.ndarray, topology: ClusterTopology, endpoint_ids: np.ndarray
) -> PairByteStats:
    """Split TM entries into in-rack/cross-rack and characterise them.

    Pairs are *directed* (TM entries), matching the paper's "non-zero
    entries of the TM".
    """
    _, same_rack, cross_rack = _rack_masks(topology, endpoint_ids)
    in_rack_values = tm[same_rack]
    cross_values = tm[cross_rack]
    in_nonzero = in_rack_values[in_rack_values > 0]
    cross_nonzero = cross_values[cross_values > 0]
    return PairByteStats(
        in_rack_log_bytes=np.log(in_nonzero) if in_nonzero.size else np.empty(0),
        cross_rack_log_bytes=np.log(cross_nonzero) if cross_nonzero.size else np.empty(0),
        prob_zero_in_rack=(
            1.0 - in_nonzero.size / in_rack_values.size if in_rack_values.size else 1.0
        ),
        prob_zero_cross_rack=(
            1.0 - cross_nonzero.size / cross_values.size if cross_values.size else 1.0
        ),
    )


@dataclass(frozen=True)
class CorrespondentStats:
    """Fig 4: how many other servers a server corresponds with."""

    in_rack_fraction: np.ndarray  # per server, fraction of rack peers talked to
    cross_rack_fraction: np.ndarray
    in_rack_counts: np.ndarray
    cross_rack_counts: np.ndarray

    @property
    def median_in_rack(self) -> float:
        """Median number of in-rack correspondents."""
        return float(np.median(self.in_rack_counts)) if self.in_rack_counts.size else 0.0

    @property
    def median_cross_rack(self) -> float:
        """Median number of cross-rack correspondents."""
        return (
            float(np.median(self.cross_rack_counts))
            if self.cross_rack_counts.size
            else 0.0
        )

    def in_rack_ecdf(self) -> Ecdf:
        """ECDF of the in-rack correspondent fraction."""
        return ecdf(self.in_rack_fraction)

    def cross_rack_ecdf(self) -> Ecdf:
        """ECDF of the cross-rack correspondent fraction."""
        return ecdf(self.cross_rack_fraction)


def correspondent_stats(
    tm: np.ndarray, topology: ClusterTopology, endpoint_ids: np.ndarray
) -> CorrespondentStats:
    """Count correspondents per server, in either direction.

    A pair corresponds when traffic flowed either way between them,
    matching "how many other servers does a server correspond with".
    """
    is_server, same_rack, cross_rack = _rack_masks(topology, endpoint_ids)
    talked = (tm > 0) | (tm.T > 0)
    per_rack_peers = max(topology.spec.servers_per_rack - 1, 1)
    cross_peers = max(topology.num_servers - topology.spec.servers_per_rack, 1)
    in_counts = (talked & same_rack).sum(axis=1)[is_server]
    cross_counts = (talked & cross_rack).sum(axis=1)[is_server]
    return CorrespondentStats(
        in_rack_fraction=in_counts / per_rack_peers,
        cross_rack_fraction=cross_counts / cross_peers,
        in_rack_counts=in_counts,
        cross_rack_counts=cross_counts,
    )


@dataclass(frozen=True)
class PatternSummary:
    """Aggregate measures of the two §4.1 patterns in one TM."""

    total_bytes: float
    in_rack_byte_fraction: float
    cross_rack_byte_fraction: float
    external_byte_fraction: float
    scatter_gather_server_count: int
    num_active_pairs: int

    @property
    def locality_ratio(self) -> float:
        """In-rack bytes relative to cross-rack bytes (work-seeks-bandwidth
        pushes this well above the uniform-spread expectation)."""
        if self.cross_rack_byte_fraction == 0:
            return float("inf")
        return self.in_rack_byte_fraction / self.cross_rack_byte_fraction


def scatter_gather_servers(
    tm: np.ndarray,
    topology: ClusterTopology,
    endpoint_ids: np.ndarray,
    min_fanout_fraction: float = 0.25,
) -> np.ndarray:
    """Servers exhibiting scatter or gather behaviour in this TM.

    A server scatters (or gathers) when it exchanges traffic with at
    least ``min_fanout_fraction`` of servers *outside* its rack in one
    window — the visible horizontal/vertical lines of Fig 2.
    """
    stats = correspondent_stats(tm, topology, endpoint_ids)
    mask = stats.cross_rack_fraction >= min_fanout_fraction
    servers = np.array(
        [int(node) for node in endpoint_ids if int(node) < topology.num_servers]
    )
    return servers[mask]


def pattern_summary(
    tm: np.ndarray, topology: ClusterTopology, endpoint_ids: np.ndarray
) -> PatternSummary:
    """Byte-share decomposition of a TM plus scatter-gather counts."""
    is_server, same_rack, cross_rack = _rack_masks(topology, endpoint_ids)
    total = float(tm.sum())
    in_rack = float(tm[same_rack].sum())
    cross = float(tm[cross_rack].sum())
    external = total - in_rack - cross
    return PatternSummary(
        total_bytes=total,
        in_rack_byte_fraction=in_rack / total if total else 0.0,
        cross_rack_byte_fraction=cross / total if total else 0.0,
        external_byte_fraction=external / total if total else 0.0,
        scatter_gather_server_count=int(
            scatter_gather_servers(tm, topology, endpoint_ids).size
        ),
        num_active_pairs=int(np.count_nonzero(tm)),
    )
