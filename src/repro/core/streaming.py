"""Streaming, mergeable counterparts of the core analyses.

The paper's pipeline digested two months of socket logs that could never
fit in memory; this module gives the reproduction the same property.
Each accumulator consumes a chunked trace one piece at a time under a
small protocol:

* ``update(chunk)`` — fold in the next *time-contiguous* chunk;
* ``merge(other)`` — absorb an accumulator that processed the chunks
  immediately following this one's (fan-out across processes, then a
  left-to-right merge);
* ``finalize()`` — produce the same result object as the in-memory
  analysis.

Exactness, not approximation
----------------------------
The accumulators are engineered so that streaming — sequential or
parallel — reproduces the in-memory results *bit for bit*, which is what
lets the test suite assert exact array equality instead of tolerances:

* **Traffic matrix** — the in-memory path accumulates with a single
  ``np.add.at``, which applies additions in event order.  Per-chunk
  ``np.add.at`` calls compose to the same per-cell addition order,
  except in the one time window a chunk boundary can split.  Each
  accumulator therefore keeps its *first* populated window's events raw
  (unaggregated) until merge/finalize, so no cell sum is ever started
  from zero twice.
* **Flows** — per-flow byte totals come from ``np.add.reduceat`` over
  the flow's complete event-byte segment on both paths (the reduction
  depends only on the segment's contents), so chunked reconstruction
  cannot drift.  Open flows and each accumulator's first flow per tuple
  stay raw so merges can re-join flows split at chunk boundaries, and
  the send-side-preference rule — a global property of the log — is
  resolved at finalize from per-direction sub-accumulators.
* **Congestion** — hot runs are tracked as absolute integer bin indices
  and stitched across boundaries; times and durations are produced by
  the same ``int * bin_width`` multiplications as
  :func:`~repro.core.congestion.find_episodes`.

:class:`FlowStatsSketch` aggregates integer histograms, exact under any
merge order by construction.
"""

from __future__ import annotations

import numpy as np

from ..cluster.topology import ClusterTopology
from ..instrumentation.events import DIRECTION_SEND, SocketEventLog
from .congestion import (
    DEFAULT_THRESHOLD,
    CongestionSummary,
    hot_matrix,
    summarize_episodes,
)
from .congestion import CongestionEpisode
from .flows import DEFAULT_INACTIVITY_TIMEOUT, FlowTable
from .traffic_matrix import (
    TrafficMatrixSeries,
    _endpoint_index,
    _event_contributions,
    _resolve_event_log,
)

__all__ = [
    "StreamingTrafficMatrix",
    "StreamingFlows",
    "StreamingCongestion",
    "FlowStatsSketch",
]


# --------------------------------------------------------------------- TM


class StreamingTrafficMatrix:
    """Chunk-at-a-time accumulation of :func:`tm_series_from_events`.

    Feed time-contiguous chunks through :meth:`update`; :meth:`merge`
    combines with an accumulator covering the immediately following
    chunk range.  ``finalize()`` returns a
    :class:`~repro.core.traffic_matrix.TrafficMatrixSeries` exactly equal
    to the in-memory one.
    """

    def __init__(
        self, topology: ClusterTopology, window: float, duration: float
    ) -> None:
        if window <= 0 or duration <= 0:
            raise ValueError("window and duration must be positive")
        self.topology = topology
        self.window = window
        self.duration = duration
        self._index, self._endpoints = _endpoint_index(topology)
        self.num_windows = int(np.ceil(duration / window))
        n = self._endpoints.size
        self._matrices = np.zeros((self.num_windows, n, n))
        #: First populated window: its events stay raw until finalize so
        #: a merge never restarts a cell sum mid-window (see module doc).
        self._head_window: int | None = None
        self._head_parts: list[tuple[np.ndarray, ...]] = []
        self.rows_processed = 0

    def update(self, chunk) -> "StreamingTrafficMatrix":
        """Fold in the next time-contiguous chunk of events."""
        log = _resolve_event_log(chunk)
        if len(log) == 0:
            return self
        self.rows_processed += len(log)
        window_ids, rows, cols, num_bytes = _event_contributions(
            log, self.topology, self._index, self.window, self.num_windows
        )
        if window_ids.size == 0:
            return self
        if self._head_window is None:
            self._head_window = int(window_ids[0])
        # Chunks are time-sorted, so head-window events form a prefix.
        head = window_ids == self._head_window
        if head.any():
            self._head_parts.append(
                (window_ids[head], rows[head], cols[head], num_bytes[head])
            )
        rest = ~head
        if rest.any():
            np.add.at(
                self._matrices,
                (window_ids[rest], rows[rest], cols[rest]),
                num_bytes[rest],
            )
        return self

    def merge(self, other: "StreamingTrafficMatrix") -> "StreamingTrafficMatrix":
        """Absorb an accumulator covering the following chunk range."""
        if (
            self.window != other.window
            or self.num_windows != other.num_windows
            or not np.array_equal(self._endpoints, other._endpoints)
        ):
            raise ValueError("cannot merge traffic matrices with different shapes")
        self.rows_processed += other.rows_processed
        if other._head_window is None:
            return self
        if self._head_window is None:
            self._matrices += other._matrices
            self._head_window = other._head_window
            self._head_parts = list(other._head_parts)
            return self
        # ``other`` covers strictly later events: its flushed windows are
        # disjoint from ours, so element-wise addition is exact (x + 0).
        self._matrices += other._matrices
        if other._head_window == self._head_window:
            self._head_parts.extend(other._head_parts)
        else:
            for window_ids, rows, cols, num_bytes in other._head_parts:
                np.add.at(self._matrices, (window_ids, rows, cols), num_bytes)
        return self

    def finalize(self) -> TrafficMatrixSeries:
        """The completed series; the accumulator must not be reused."""
        for window_ids, rows, cols, num_bytes in self._head_parts:
            np.add.at(self._matrices, (window_ids, rows, cols), num_bytes)
        self._head_parts = []
        self._head_window = None
        return TrafficMatrixSeries(self._matrices, self.window, self._endpoints)


# ------------------------------------------------------------------- flows


class _FlowState:
    """One (possibly still open) flow of a single five-tuple stream."""

    __slots__ = (
        "start", "end", "events", "job_id", "phase_index", "parts", "closed_bytes",
    )

    def __init__(
        self,
        start: float,
        end: float,
        events: int,
        job_id: int,
        phase_index: int,
        parts: list,
    ) -> None:
        self.start = start
        self.end = end
        self.events = events
        self.job_id = job_id
        self.phase_index = phase_index
        #: Raw per-event byte arrays while the flow may still grow.
        self.parts = parts
        self.closed_bytes: float | None = None

    def collapse(self) -> None:
        """Reduce the raw byte segment to its total (flow can no longer grow)."""
        if self.parts is not None:
            self.closed_bytes = _segment_sum(self.parts)
            self.parts = None

    def byte_total(self) -> float:
        """Total bytes, via the same reduction the in-memory path uses."""
        if self.parts is not None:
            return _segment_sum(self.parts)
        return self.closed_bytes


def _segment_sum(parts: list) -> float:
    """``np.add.reduceat`` over the flow's full event-byte segment.

    ``np.add.reduceat(big, starts)`` reduces each segment from its own
    contents alone, so reducing the concatenated segment standalone gives
    the identical float — this is what makes streamed byte totals equal
    the in-memory ones exactly (plain ``sum``/``np.sum`` would not).
    """
    segment = parts[0] if len(parts) == 1 else np.concatenate(parts)
    return float(np.add.reduceat(segment, [0])[0])


class _TupleStream:
    """Ordered flows of one five-tuple, one direction.

    ``flows[0]`` (the accumulator's first flow for this tuple) and
    ``flows[-1]`` (the still-open flow) keep raw byte parts; interior
    flows are collapsed to totals as soon as a later flow begins.
    """

    __slots__ = ("flows",)

    def __init__(self) -> None:
        self.flows: list[_FlowState] = []

    def _append(self, flow: _FlowState) -> None:
        if len(self.flows) >= 2:
            self.flows[-1].collapse()
        self.flows.append(flow)

    def add_segment(
        self,
        times: np.ndarray,
        num_bytes: np.ndarray,
        job_ids: np.ndarray,
        phases: np.ndarray,
        timeout: float,
    ) -> None:
        """Fold in this tuple's kept events from one chunk (time order)."""
        breaks = np.flatnonzero(np.diff(times) > timeout) + 1
        bounds = np.concatenate(([0], breaks, [times.size]))
        joins_open = (
            bool(self.flows) and float(times[0]) - self.flows[-1].end <= timeout
        )
        for k in range(bounds.size - 1):
            s, e = int(bounds[k]), int(bounds[k + 1])
            if k == 0 and joins_open:
                open_flow = self.flows[-1]
                open_flow.parts.append(num_bytes[s:e].copy())
                open_flow.end = float(times[e - 1])
                open_flow.events += e - s
            else:
                self._append(
                    _FlowState(
                        start=float(times[s]),
                        end=float(times[e - 1]),
                        events=e - s,
                        job_id=int(job_ids[s]),
                        phase_index=int(phases[s]),
                        parts=[num_bytes[s:e].copy()],
                    )
                )

    def merge(self, other: "_TupleStream", timeout: float) -> None:
        """Absorb the stream covering the following chunk range."""
        if not other.flows:
            return
        if not self.flows:
            self.flows = other.flows
            return
        first = other.flows[0]  # raw by construction (other's head flow)
        open_flow = self.flows[-1]  # raw (our open flow)
        rest = other.flows
        if first.start - open_flow.end <= timeout:
            open_flow.parts.extend(first.parts)
            open_flow.end = first.end
            open_flow.events += first.events
            rest = other.flows[1:]
        for flow in rest:
            self._append(flow)


class _TupleEntry:
    """Both direction streams of one five-tuple."""

    __slots__ = ("send", "recv")

    def __init__(self) -> None:
        self.send = _TupleStream()
        self.recv = _TupleStream()


class StreamingFlows:
    """Chunk-at-a-time flow reconstruction (see :func:`reconstruct_flows`).

    The send-side-preference rule — receive events count only for tuples
    with *no* send events anywhere in the log — is global, so both
    direction streams accumulate independently and finalize picks the
    winner per tuple.
    """

    def __init__(
        self, inactivity_timeout: float = DEFAULT_INACTIVITY_TIMEOUT
    ) -> None:
        if inactivity_timeout <= 0:
            raise ValueError("inactivity_timeout must be positive")
        self.inactivity_timeout = inactivity_timeout
        self._tuples: dict[tuple, _TupleEntry] = {}
        self.rows_processed = 0

    def update(self, chunk) -> "StreamingFlows":
        """Fold in the next time-contiguous chunk of events."""
        log = _resolve_event_log(chunk)
        if len(log) == 0:
            return self
        self.rows_processed += len(log)
        src = log.column("src")
        src_port = log.column("src_port")
        dst = log.column("dst")
        dst_port = log.column("dst_port")
        protocol = log.column("protocol")
        # Group by five-tuple; lexsort is stable, so each tuple's events
        # keep their time order (ties included).
        order = np.lexsort((protocol, dst_port, dst, src_port, src))
        src, src_port = src[order], src_port[order]
        dst, dst_port = dst[order], dst_port[order]
        protocol = protocol[order]
        times = log.column("timestamp")[order]
        num_bytes = log.column("num_bytes")[order]
        direction = log.column("direction")[order]
        job_ids = log.column("job_id")[order]
        phases = log.column("phase_index")[order]

        change = (
            (src[1:] != src[:-1])
            | (src_port[1:] != src_port[:-1])
            | (dst[1:] != dst[:-1])
            | (dst_port[1:] != dst_port[:-1])
            | (protocol[1:] != protocol[:-1])
        )
        bounds = np.concatenate(
            ([0], np.flatnonzero(change) + 1, [src.size])
        )
        timeout = self.inactivity_timeout
        for k in range(bounds.size - 1):
            s, e = int(bounds[k]), int(bounds[k + 1])
            key = (
                int(src[s]), int(src_port[s]),
                int(dst[s]), int(dst_port[s]), int(protocol[s]),
            )
            entry = self._tuples.get(key)
            if entry is None:
                entry = self._tuples[key] = _TupleEntry()
            sends = direction[s:e] == DIRECTION_SEND
            for stream, mask in ((entry.send, sends), (entry.recv, ~sends)):
                if mask.any():
                    idx = np.flatnonzero(mask) + s
                    stream.add_segment(
                        times[idx], num_bytes[idx], job_ids[idx], phases[idx],
                        timeout,
                    )
        return self

    def merge(self, other: "StreamingFlows") -> "StreamingFlows":
        """Absorb an accumulator covering the following chunk range."""
        if self.inactivity_timeout != other.inactivity_timeout:
            raise ValueError("cannot merge flows with different timeouts")
        self.rows_processed += other.rows_processed
        timeout = self.inactivity_timeout
        for key, other_entry in other._tuples.items():
            entry = self._tuples.get(key)
            if entry is None:
                self._tuples[key] = other_entry
            else:
                entry.send.merge(other_entry.send, timeout)
                entry.recv.merge(other_entry.recv, timeout)
        return self

    def finalize(self) -> FlowTable:
        """The completed flow table; the accumulator must not be reused."""
        src, src_port, dst, dst_port, protocol = [], [], [], [], []
        start, end, num_bytes, num_events, job_id, phase = [], [], [], [], [], []
        # Tuple-lexicographic order matches np.unique's row ordering in
        # the in-memory path; flows within a tuple are in time order.
        for key in sorted(self._tuples):
            entry = self._tuples[key]
            stream = entry.send if entry.send.flows else entry.recv
            for flow in stream.flows:
                src.append(key[0])
                src_port.append(key[1])
                dst.append(key[2])
                dst_port.append(key[3])
                protocol.append(key[4])
                start.append(flow.start)
                end.append(flow.end)
                num_bytes.append(flow.byte_total())
                num_events.append(flow.events)
                job_id.append(flow.job_id)
                phase.append(flow.phase_index)
        return FlowTable(
            src=np.array(src, dtype=np.int64),
            src_port=np.array(src_port, dtype=np.int64),
            dst=np.array(dst, dtype=np.int64),
            dst_port=np.array(dst_port, dtype=np.int64),
            protocol=np.array(protocol, dtype=np.int16),
            start_time=np.array(start, dtype=float),
            end_time=np.array(end, dtype=float),
            num_bytes=np.array(num_bytes, dtype=float),
            num_events=np.array(num_events, dtype=np.int64),
            job_id=np.array(job_id, dtype=np.int64),
            phase_index=np.array(phase, dtype=np.int64),
        )


# -------------------------------------------------------------- congestion


class StreamingCongestion:
    """Chunk-at-a-time congestion episodes over utilisation bin columns.

    ``update`` takes a ``(num_links, bins)`` slab of consecutive
    utilisation bins; runs of hot bins are tracked as absolute integer
    bin indices and stitched across slab (and merge) boundaries, so
    ``finalize()`` equals :func:`~repro.core.congestion.congestion_summary`
    on the full matrix exactly.
    """

    def __init__(
        self,
        num_links: int,
        threshold: float = DEFAULT_THRESHOLD,
        bin_width: float = 1.0,
        link_ids: np.ndarray | None = None,
    ) -> None:
        if not 0 < threshold <= 1:
            raise ValueError("threshold must lie in (0, 1]")
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.num_links = num_links
        self.threshold = threshold
        self.bin_width = bin_width
        ids = link_ids if link_ids is not None else np.arange(num_links)
        self.link_ids = np.asarray(ids)
        #: Per link: half-open ``[start, end)`` runs in absolute bins.
        self._runs: list[list[list[int]]] = [[] for _ in range(num_links)]
        self._first_bin: int | None = None
        self._next_bin: int | None = None

    def update(self, utilization: np.ndarray, start_bin: int | None = None):
        """Fold in the next consecutive block of utilisation bins."""
        util = np.asarray(utilization, dtype=float)
        if util.ndim != 2 or util.shape[0] != self.num_links:
            raise ValueError(
                f"expected a ({self.num_links}, bins) matrix, got {util.shape}"
            )
        if start_bin is None:
            start_bin = self._next_bin if self._next_bin is not None else 0
        if self._next_bin is not None and start_bin != self._next_bin:
            raise ValueError(
                f"non-contiguous update: expected bin {self._next_bin}, "
                f"got {start_bin}"
            )
        if self._next_bin is None:
            self._first_bin = start_bin
        hot = hot_matrix(util, self.threshold)
        for row in range(self.num_links):
            series = hot[row]
            if not series.any():
                continue
            padded = np.concatenate(([False], series, [False]))
            changes = np.diff(padded.astype(np.int8))
            starts = np.flatnonzero(changes == 1) + start_bin
            ends = np.flatnonzero(changes == -1) + start_bin
            runs = self._runs[row]
            for s, e in zip(starts, ends):
                if runs and runs[-1][1] == s:
                    runs[-1][1] = int(e)  # hot across the slab boundary
                else:
                    runs.append([int(s), int(e)])
        self._next_bin = start_bin + util.shape[1]
        return self

    def merge(self, other: "StreamingCongestion") -> "StreamingCongestion":
        """Absorb an accumulator covering the following bin range."""
        if (
            self.num_links != other.num_links
            or self.threshold != other.threshold
            or self.bin_width != other.bin_width
            or not np.array_equal(self.link_ids, other.link_ids)
        ):
            raise ValueError("cannot merge congestion trackers with different setups")
        if other._next_bin is None:
            return self
        if self._next_bin is None:
            self._runs = other._runs
            self._first_bin = other._first_bin
            self._next_bin = other._next_bin
            return self
        if other._first_bin != self._next_bin:
            raise ValueError(
                f"non-contiguous merge: expected bin {self._next_bin}, "
                f"got {other._first_bin}"
            )
        for row in range(self.num_links):
            theirs = other._runs[row]
            if not theirs:
                continue
            runs = self._runs[row]
            if runs and runs[-1][1] == theirs[0][0]:
                runs[-1][1] = theirs[0][1]
                theirs = theirs[1:]
            runs.extend(theirs)
        self._next_bin = other._next_bin
        return self

    def finalize(self) -> CongestionSummary:
        """The Fig 5/6 summary; equals the in-memory one exactly."""
        episodes = [
            CongestionEpisode(
                link_id=int(self.link_ids[row]),
                start=s * self.bin_width,
                duration=(e - s) * self.bin_width,
            )
            for row in range(self.num_links)
            for s, e in self._runs[row]
        ]
        return summarize_episodes(episodes, self.num_links)


# ----------------------------------------------------------------- sketch


class FlowStatsSketch:
    """Mergeable histograms of flow sizes, durations and event counts.

    Counts are integers over fixed log-spaced bin edges, so any update
    and merge order yields identical histograms; ``total_bytes`` is a
    float running sum and therefore exact only up to addition order.
    """

    def __init__(
        self,
        byte_edges: np.ndarray | None = None,
        duration_edges: np.ndarray | None = None,
        event_edges: np.ndarray | None = None,
    ) -> None:
        #: Four bins per decade from 1 B to 1 TB.
        self.byte_edges = (
            np.asarray(byte_edges, dtype=float)
            if byte_edges is not None
            else np.logspace(0, 12, 49)
        )
        #: Four bins per decade from 1 ms to ~28 h.
        self.duration_edges = (
            np.asarray(duration_edges, dtype=float)
            if duration_edges is not None
            else np.logspace(-3, 5, 33)
        )
        self.event_edges = (
            np.asarray(event_edges, dtype=float)
            if event_edges is not None
            else np.logspace(0, 6, 25)
        )
        self.byte_counts = np.zeros(self.byte_edges.size + 1, dtype=np.int64)
        self.duration_counts = np.zeros(
            self.duration_edges.size + 1, dtype=np.int64
        )
        self.event_counts = np.zeros(self.event_edges.size + 1, dtype=np.int64)
        self.flows = 0
        self.total_bytes = 0.0
        self.max_bytes = 0.0
        self.max_duration = 0.0

    def _dimensions(self):
        return (
            ("bytes", self.byte_edges, self.byte_counts),
            ("durations", self.duration_edges, self.duration_counts),
            ("events", self.event_edges, self.event_counts),
        )

    def update(self, flows: FlowTable) -> "FlowStatsSketch":
        """Fold in a table of reconstructed flows."""
        if len(flows) == 0:
            return self
        self.flows += len(flows)
        self.total_bytes += float(flows.num_bytes.sum())
        self.max_bytes = max(self.max_bytes, float(flows.num_bytes.max()))
        durations = flows.durations
        self.max_duration = max(self.max_duration, float(durations.max()))
        for values, edges, counts in (
            (flows.num_bytes, self.byte_edges, self.byte_counts),
            (durations, self.duration_edges, self.duration_counts),
            (flows.num_events, self.event_edges, self.event_counts),
        ):
            bins = np.searchsorted(edges, values, side="right")
            counts += np.bincount(bins, minlength=counts.size)
        return self

    def merge(self, other: "FlowStatsSketch") -> "FlowStatsSketch":
        """Add another sketch's counts (bin edges must match)."""
        for (name, edges, counts), (_, other_edges, other_counts) in zip(
            self._dimensions(), other._dimensions()
        ):
            if not np.array_equal(edges, other_edges):
                raise ValueError(f"cannot merge sketches: {name} edges differ")
            counts += other_counts
        self.flows += other.flows
        self.total_bytes += other.total_bytes
        self.max_bytes = max(self.max_bytes, other.max_bytes)
        self.max_duration = max(self.max_duration, other.max_duration)
        return self

    def approx_quantile(self, dimension: str, q: float) -> float:
        """Upper bin edge at quantile ``q`` for one dimension.

        Accurate to one log-spaced bin — the resolution the paper's
        distribution figures need.
        """
        if not 0 <= q <= 1:
            raise ValueError("quantile must lie in [0, 1]")
        for name, edges, counts in self._dimensions():
            if name == dimension:
                break
        else:
            raise KeyError(f"unknown dimension {dimension!r}")
        total = int(counts.sum())
        if total == 0:
            return float("nan")
        cumulative = np.cumsum(counts)
        bin_index = int(np.searchsorted(cumulative, q * total))
        return float(edges[min(bin_index, edges.size - 1)])

    def finalize(self) -> dict:
        """Histogram arrays plus headline scalars, JSON-friendly."""
        out: dict = {
            "flows": self.flows,
            "total_bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "max_duration": self.max_duration,
        }
        for name, edges, counts in self._dimensions():
            out[name] = {"edges": edges.tolist(), "counts": counts.tolist()}
        if self.flows:
            for name in ("bytes", "durations", "events"):
                out[f"median_{name}"] = self.approx_quantile(name, 0.5)
        return out
