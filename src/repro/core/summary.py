"""One-call traffic characterisation — the paper's §4 in a single object.

``characterize`` runs the full analysis pipeline over a campaign result
and returns a :class:`TrafficCharacterization` bundling every statistic
the paper reports, with a text rendering for operators.  This is the
facade downstream users reach for first; the individual analyses remain
available for surgical use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.routing import bisection_bandwidth
from ..simulation.simulator import SimulationResult
from ..util.units import format_bytes, format_duration
from .change import ChurnStats, churn_stats
from .congestion import CongestionSummary, congestion_summary
from .flow_stats import DurationStats, InterarrivalStats, duration_stats, interarrival_stats
from .flows import FlowTable, reconstruct_flows
from .incast import IncastAudit, incast_audit
from .patterns import PairByteStats, PatternSummary, pair_byte_stats, pattern_summary
from .traffic_matrix import TrafficMatrixSeries, tm_series_from_events

__all__ = ["TrafficCharacterization", "characterize"]


@dataclass(frozen=True)
class TrafficCharacterization:
    """Every §4 statistic for one campaign, in one place."""

    flows: FlowTable
    tm_series: TrafficMatrixSeries
    patterns: PatternSummary
    pair_bytes: PairByteStats
    congestion: CongestionSummary
    durations: DurationStats
    interarrivals: InterarrivalStats
    churn: ChurnStats
    incast: IncastAudit

    def render(self) -> str:
        """A compact operator-facing text report."""
        lines = [
            "Traffic characterization (after Kandula et al., IMC 2009)",
            "-" * 58,
            f"flows reconstructed:        {len(self.flows)} "
            f"({format_bytes(self.flows.total_bytes())})",
            f"  under 10 s:               {self.durations.frac_flows_under_10s:.1%}"
            "   (paper: >80%)",
            f"  bytes in flows < 25 s:    {self.durations.frac_bytes_under_25s:.1%}"
            "   (paper: >50%)",
            f"in-rack byte share:         {self.patterns.in_rack_byte_fraction:.1%}"
            "   (work-seeks-bandwidth)",
            f"P(pair silent) in/cross:    {self.pair_bytes.prob_zero_in_rack:.0%} / "
            f"{self.pair_bytes.prob_zero_cross_rack:.1%}"
            "   (paper: 89% / 99.5%)",
            f"links hot >=10 s:           "
            f"{self.congestion.frac_links_hot_at_least_10s:.0%}"
            "   (paper: 86%)",
            f"longest congestion episode: "
            f"{format_duration(self.congestion.longest_episode)}"
            "   (paper: 382 s)",
            f"median TM churn (10 s):     {self.churn.median_change_short:.0%}",
            f"inter-arrival mode spacing: "
            f"{self._spacing_text()}   (paper: ~15 ms)",
            f"peak inbound fan-in:        {self.incast.peak_fan_in} flows"
            "   (incast guard)",
        ]
        return "\n".join(lines)

    def _spacing_text(self) -> str:
        spacing = self.interarrivals.server_mode_spacing
        if not np.isfinite(spacing):
            return "none detected"
        return f"{spacing * 1e3:.1f} ms"


def characterize(
    result: SimulationResult,
    window: float = 10.0,
    threshold: float | None = None,
) -> TrafficCharacterization:
    """Run the complete §4 pipeline over one campaign result."""
    config = result.config
    if threshold is None:
        threshold = config.congestion_threshold
    flows = reconstruct_flows(result.socket_log)
    series = tm_series_from_events(
        result.socket_log, result.topology, window=window, duration=result.duration
    )
    total_tm = series.total()
    observed = np.array(
        [link.link_id for link in result.topology.inter_switch_links()], dtype=int
    )
    utilization = result.link_loads.utilization_matrix()
    return TrafficCharacterization(
        flows=flows,
        tm_series=series,
        patterns=pattern_summary(total_tm, result.topology, series.endpoint_ids),
        pair_bytes=pair_byte_stats(total_tm, result.topology, series.endpoint_ids),
        congestion=congestion_summary(
            utilization[observed], threshold=threshold, link_ids=observed
        ),
        durations=duration_stats(flows),
        interarrivals=interarrival_stats(flows, result.topology),
        churn=churn_stats(series, bisection_bandwidth(result.topology)),
        incast=incast_audit(
            flows, result.topology,
            connection_cap=config.workload.max_connections,
        ),
    )
