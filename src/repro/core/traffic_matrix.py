"""Traffic matrices at multiple time-scales and granularities (paper §3).

"A matrix representing how much traffic is exchanged from the server
denoted by the row to the server denoted by the column will be referred
to as a traffic matrix (TM).  We compute TMs at multiple time-scales,
1s, 10s and 100s and between both servers and top-of-rack (ToR)
switches.  The latter ToR-to-ToR TM has zero entries on the diagonal,
i.e. unlike the server-to-server TM only traffic that flows across racks
is included."

Two byte sources are supported:

* **socket events** (what the paper had): each event's bytes land in the
  window containing its timestamp;
* **ground-truth transfers** (simulator-only): each transfer's bytes are
  spread uniformly over its lifetime, which is exact for the fluid model
  up to rate variation and serves as the validation reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterTopology
from ..instrumentation.events import DIRECTION_SEND, SocketEventLog
from ..simulation.transport import Transfer
from ..util.timeseries import split_interval_over_bins

__all__ = [
    "TrafficMatrixSeries",
    "tm_series_from_events",
    "tm_series_from_transfers",
    "server_tm_to_tor_tm",
    "log_matrix",
]


@dataclass(frozen=True)
class TrafficMatrixSeries:
    """A sequence of same-shape traffic matrices over fixed windows.

    ``matrices[w][i, j]`` holds bytes sent from endpoint ``i`` to endpoint
    ``j`` during window ``w``.  ``window`` is the time-scale in seconds.
    Endpoint indexing matches topology node ids compacted over
    :meth:`ClusterTopology.endpoints` (in-cluster servers first, then
    external hosts).
    """

    matrices: np.ndarray  # (num_windows, n, n)
    window: float
    endpoint_ids: np.ndarray

    @property
    def num_windows(self) -> int:
        """Number of time windows."""
        return int(self.matrices.shape[0])

    @property
    def num_endpoints(self) -> int:
        """Number of endpoints per axis."""
        return int(self.matrices.shape[1])

    def window_start_times(self) -> np.ndarray:
        """Start time of each window."""
        return np.arange(self.num_windows) * self.window

    def total(self) -> np.ndarray:
        """The full-span TM: sum over all windows."""
        return self.matrices.sum(axis=0)

    def totals_per_window(self) -> np.ndarray:
        """Aggregate traffic per window (the Fig 10 top series)."""
        return self.matrices.sum(axis=(1, 2))

    def aggregate(self, factor: int) -> "TrafficMatrixSeries":
        """Coarsen the time-scale by an integer factor (1s → 10s → 100s)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        if factor == 1:
            return self
        usable = (self.num_windows // factor) * factor
        if usable == 0:
            raise ValueError("series too short to aggregate by that factor")
        coarse = (
            self.matrices[:usable]
            .reshape(usable // factor, factor, self.num_endpoints, self.num_endpoints)
            .sum(axis=1)
        )
        return TrafficMatrixSeries(
            matrices=coarse, window=self.window * factor,
            endpoint_ids=self.endpoint_ids,
        )


def _endpoint_index(topology: ClusterTopology) -> tuple[np.ndarray, np.ndarray]:
    """(dense index per node id, endpoint node ids)."""
    endpoints = np.asarray(topology.endpoints(), dtype=np.int64)
    index = np.full(topology.num_nodes, -1, dtype=np.int64)
    index[endpoints] = np.arange(endpoints.size)
    return index, endpoints


def _event_contributions(
    log: SocketEventLog,
    topology: ClusterTopology,
    index: np.ndarray,
    window: float,
    num_windows: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-event TM contributions ``(window_ids, rows, cols, bytes)``.

    Event order is preserved, so a single ``np.add.at`` over these arrays
    reproduces the in-memory accumulation exactly; the streaming TM
    accumulator reuses this per chunk.  The keep rule is a per-event
    property (send side, or receive side of an external sender), so
    chunk-local evaluation matches the global one.
    """
    direction = log.column("direction")
    src = log.column("src")
    # Prefer send side; external sources are only visible at receivers.
    external_src = np.array([topology.is_external(int(s)) for s in np.unique(src)])
    external_lookup = dict(zip(np.unique(src).tolist(), external_src.tolist()))
    is_external_src = np.fromiter(
        (external_lookup[int(s)] for s in src), dtype=bool, count=src.size
    )
    keep = (direction == DIRECTION_SEND) | is_external_src

    times = log.column("timestamp")[keep]
    rows = index[src[keep]]
    cols = index[log.column("dst")[keep]]
    window_ids = np.clip((times / window).astype(int), 0, num_windows - 1)
    return window_ids, rows, cols, log.column("num_bytes")[keep]


def tm_series_from_events(
    log,
    topology: ClusterTopology,
    window: float,
    duration: float,
) -> TrafficMatrixSeries:
    """Server-level TM series from socket events.

    ``log`` is a finalized :class:`SocketEventLog`, a trace path, or a
    :class:`~repro.trace.reader.TraceReader` (trace sources are loaded in
    full; use :class:`~repro.core.streaming.StreamingTrafficMatrix` for
    constant-memory accumulation).

    Send-side events are used where available; tuples seen only on the
    receive side (external senders) contribute through their receive
    events.  Event timestamps carry per-server clock skew, so a window
    boundary may misattribute a skew's worth of bytes — the same error a
    real campaign accepts (§3).
    """
    if window <= 0 or duration <= 0:
        raise ValueError("window and duration must be positive")
    log = _resolve_event_log(log)
    index, endpoints = _endpoint_index(topology)
    num_windows = int(np.ceil(duration / window))
    n = endpoints.size
    matrices = np.zeros((num_windows, n, n))
    if len(log) == 0:
        return TrafficMatrixSeries(matrices, window, endpoints)
    window_ids, rows, cols, num_bytes = _event_contributions(
        log, topology, index, window, num_windows
    )
    np.add.at(matrices, (window_ids, rows, cols), num_bytes)
    return TrafficMatrixSeries(matrices, window, endpoints)


def _resolve_event_log(log) -> SocketEventLog:
    """Accept a finalized log, a trace path, or a trace reader."""
    if isinstance(log, SocketEventLog):
        return log
    from ..trace.reader import as_event_log  # lazy: core must not need trace

    return as_event_log(log)


def tm_series_from_transfers(
    transfers: list[Transfer],
    topology: ClusterTopology,
    window: float,
    duration: float,
) -> TrafficMatrixSeries:
    """Ground-truth TM series: transfer bytes spread over their lifetime."""
    if window <= 0 or duration <= 0:
        raise ValueError("window and duration must be positive")
    index, endpoints = _endpoint_index(topology)
    num_windows = int(np.ceil(duration / window))
    n = endpoints.size
    matrices = np.zeros((num_windows, n, n))
    for transfer in transfers:
        row = index[transfer.src]
        col = index[transfer.dst]
        if row < 0 or col < 0:
            continue
        start = transfer.start_time
        end = min(transfer.end_time, duration)
        if end <= start:
            window_id = min(int(start / window), num_windows - 1)
            matrices[window_id, row, col] += transfer.size
            continue
        rate = transfer.size / (transfer.end_time - transfer.start_time)
        for window_id, overlap in split_interval_over_bins(start, end, window):
            if window_id < num_windows:
                matrices[window_id, row, col] += rate * overlap
    return TrafficMatrixSeries(matrices, window, endpoints)


def server_tm_to_tor_tm(
    tm: np.ndarray, topology: ClusterTopology, endpoint_ids: np.ndarray
) -> np.ndarray:
    """Collapse a server-level TM to the ToR-to-ToR TM (zero diagonal).

    External endpoints are dropped: ToR switches only see cluster racks,
    and the paper's ToR TM covers inter-rack traffic only.
    """
    n_racks = topology.num_racks
    tor_tm = np.zeros((n_racks, n_racks))
    racks = np.array(
        [
            topology.rack_of(int(node)) if int(node) < topology.num_servers else -1
            for node in endpoint_ids
        ]
    )
    valid = racks >= 0
    sub = tm[np.ix_(valid, valid)]
    sub_racks = racks[valid]
    np.add.at(tor_tm, (sub_racks[:, None], sub_racks[None, :]), sub)
    np.fill_diagonal(tor_tm, 0.0)
    return tor_tm


def log_matrix(tm: np.ndarray) -> np.ndarray:
    """``log_e(bytes)`` with zero entries mapped to NaN (Fig 2 rendering)."""
    with np.errstate(divide="ignore"):
        logged = np.log(tm)
    return np.where(tm > 0, logged, np.nan)
