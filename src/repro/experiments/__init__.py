"""Experiment harness: one module per paper figure, plus ablations.

Each ``figNN.run(dataset)`` reproduces one figure's analysis from the
shared, cached campaign dataset and returns a typed result with a
``rows()`` paper-vs-measured table.  Importing this package registers
every experiment with :mod:`~repro.experiments.registry`, which is how
the CLI, the viz layer and the multi-seed
:mod:`~repro.experiments.campaign` runner discover them.
"""

from . import (
    ablations,
    cc_study,
    ext_roleprior,
    ext_sampling,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table_s2,
    tomography_study,
    topo_study,
)
from . import scheduler, shm
from .cache import (
    DatasetDiskCache,
    config_fingerprint,
    dataset_content_hash,
)
from .campaign import (
    CampaignResult,
    SeedRun,
    campaign_manifest,
    render_campaign_report,
    run_campaign,
)
from .scheduler import (
    DEFAULT_LEASE_TTL,
    campaign_queue_id,
    queue_status,
)
from .common import (
    DAY_LENGTH,
    NUM_DAYS,
    ExperimentDataset,
    build_dataset,
    clear_dataset_cache,
    dataset_cache_stats,
    dataset_from_trace,
    set_dataset_cache_limit,
    small_config,
    standard_config,
)
from .registry import (
    ExperimentSpec,
    experiment,
    experiment_names,
    experiment_specs,
    get_experiment,
)
from .reporting import Row, format_table

__all__ = [
    "ExperimentDataset",
    "build_dataset",
    "dataset_from_trace",
    "clear_dataset_cache",
    "set_dataset_cache_limit",
    "dataset_cache_stats",
    "standard_config",
    "small_config",
    "DAY_LENGTH",
    "NUM_DAYS",
    "Row",
    "format_table",
    "ExperimentSpec",
    "experiment",
    "get_experiment",
    "experiment_names",
    "experiment_specs",
    "DatasetDiskCache",
    "config_fingerprint",
    "dataset_content_hash",
    "CampaignResult",
    "SeedRun",
    "run_campaign",
    "campaign_manifest",
    "render_campaign_report",
    "scheduler",
    "shm",
    "DEFAULT_LEASE_TTL",
    "campaign_queue_id",
    "queue_status",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table_s2",
    "tomography_study",
    "topo_study",
    "ablations",
    "cc_study",
    "ext_roleprior",
    "ext_sampling",
]
