"""Experiment harness: one module per paper figure, plus ablations.

Each ``figNN.run(dataset)`` reproduces one figure's analysis from the
shared, memoised campaign dataset and returns a typed result with a
``rows()`` paper-vs-measured table.  The benchmark suite and
EXPERIMENTS.md both consume these.
"""

from . import (
    ablations,
    ext_roleprior,
    ext_sampling,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table_s2,
    tomography_study,
)
from .common import (
    DAY_LENGTH,
    NUM_DAYS,
    ExperimentDataset,
    build_dataset,
    clear_dataset_cache,
    small_config,
    standard_config,
)
from .reporting import Row, format_table

__all__ = [
    "ExperimentDataset",
    "build_dataset",
    "clear_dataset_cache",
    "standard_config",
    "small_config",
    "DAY_LENGTH",
    "NUM_DAYS",
    "Row",
    "format_table",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table_s2",
    "tomography_study",
    "ablations",
    "ext_roleprior",
    "ext_sampling",
]
