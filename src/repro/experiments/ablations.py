"""Ablation experiments for the design choices DESIGN.md calls out.

* **A1 locality** — turn off the scheduler's locality preference
  (``locality_bias = 0``): the work-seeks-bandwidth diagonal should
  dissolve and cross-rack byte share rise, demonstrating that the Fig 2
  pattern is produced by placement policy, not by accident.
* **A2 connection cap** — remove the per-vertex connection cap and the
  stop-and-go quantum: the periodic inter-arrival modes of Fig 11 should
  vanish and peak fan-in (the incast precondition, §4.4) should grow.
* **A3 gravity regime** — run tomogravity on dense gravity-structured
  TMs (the ISP regime) vs sparse job-clustered DC TMs: the gravity prior
  should be excellent in the former and poor in the latter, the paper's
  §5 explanation for why ISP tomography does not transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cluster.routing import tor_routing_matrix
from ..cluster.topology import ClusterSpec, ClusterTopology
from ..core.flow_stats import interarrival_stats
from ..core.flows import reconstruct_flows
from ..core.incast import incast_audit
from ..instrumentation.collector import SERVICE_PORTS
from ..simulation.simulator import simulate
from ..synthetic.model import SyntheticTrafficModel, gravity_synthetic_tm
from ..tomography.gravity import gravity_prior_for_pairs
from ..tomography.metrics import rmsre
from ..tomography.tomogravity import tomogravity_estimate
from .common import small_config
from .registry import experiment
from .reporting import Row

__all__ = [
    "LocalityAblation",
    "run_locality_ablation",
    "ConnectionCapAblation",
    "run_connection_cap_ablation",
    "GravityRegimeAblation",
    "run_gravity_regime_ablation",
]


@dataclass(frozen=True)
class LocalityAblation:
    """A1: fetch locality with and without work-seeks-bandwidth."""

    in_rack_with_locality: float
    in_rack_without_locality: float
    cross_rack_with_locality: float
    cross_rack_without_locality: float
    #: Fraction of vertex placements that landed on a data-holding server.
    local_placements_with: float
    local_placements_without: float

    @property
    def locality_gain(self) -> float:
        """How much the preference ladder multiplies the in-rack share."""
        if self.in_rack_without_locality <= 0:
            return float("inf")
        return self.in_rack_with_locality / self.in_rack_without_locality

    def rows(self) -> list[Row]:
        """Summary table."""
        return [
            Row("data-local placements, locality on", "dominant",
                f"{self.local_placements_with:.1%}"),
            Row("data-local placements, locality off", "collapse",
                f"{self.local_placements_without:.1%}"),
            Row("in-rack fetch byte share, locality on", "large chunk (Fig 2)",
                f"{self.in_rack_with_locality:.1%}"),
            Row("in-rack fetch byte share, locality off", "dissolves",
                f"{self.in_rack_without_locality:.1%}"),
            Row("work-seeks-bandwidth gain", "> 1",
                f"{self.locality_gain:.1f}x"),
        ]


def _locality_profile(config) -> tuple[float, float, float]:
    """(in-rack fetch share, cross-rack fetch share, local placement frac).

    Fetch traffic isolates the scheduler's effect: replication and
    evacuation bytes follow block-placement policy, which the ablation
    does not vary.
    """
    result = simulate(config)
    flows = reconstruct_flows(result.socket_log)
    fetch_port = SERVICE_PORTS["fetch"]
    fetch = flows.select(flows.src_port == fetch_port)
    topo = result.topology
    total = fetch.total_bytes()
    in_rack = sum(
        float(fetch.num_bytes[i])
        for i in range(len(fetch))
        if topo.same_rack(int(fetch.src[i]), int(fetch.dst[i]))
    )
    placements = result.applog.vertex_starts
    local = sum(1 for p in placements if p.locality == "LOCAL")
    local_fraction = local / len(placements) if placements else 0.0
    if total <= 0:
        return (0.0, 0.0, local_fraction)
    return (in_rack / total, (total - in_rack) / total, local_fraction)


@experiment("locality", figure="A1", title="work-seeks-bandwidth placement",
            kind="ablation")
def run_locality_ablation(seed: int = 11) -> LocalityAblation:
    """Run A1 on the small campaign.

    "Locality off" disables both halves of work-seeks-bandwidth: the
    scheduler's preference ladder *and* the home-rack concentration of
    input data.
    """
    base = small_config(seed=seed)
    with_locality = _locality_profile(base)
    no_locality = _locality_profile(
        replace(
            base,
            workload=replace(
                base.workload,
                locality_bias=0.0,
                locality_wait=0.0,
                input_home_bias=0.0,
            ),
        )
    )
    return LocalityAblation(
        in_rack_with_locality=with_locality[0],
        cross_rack_with_locality=with_locality[1],
        in_rack_without_locality=no_locality[0],
        cross_rack_without_locality=no_locality[1],
        local_placements_with=with_locality[2],
        local_placements_without=no_locality[2],
    )


@dataclass(frozen=True)
class ConnectionCapAblation:
    """A2: inter-arrival modes and fan-in with/without the cap."""

    modes_with_cap: int
    modes_without_cap: int
    peak_fan_in_with_cap: int
    peak_fan_in_without_cap: int

    def rows(self) -> list[Row]:
        """Summary table."""
        return [
            Row("periodic modes, cap on", "pronounced (Fig 11)",
                f"{self.modes_with_cap}"),
            Row("periodic modes, cap off", "vanish",
                f"{self.modes_without_cap}"),
            Row("peak inbound fan-in, cap on", "bounded (incast guard)",
                f"{self.peak_fan_in_with_cap}"),
            Row("peak inbound fan-in, cap off", "grows",
                f"{self.peak_fan_in_without_cap}"),
        ]


def _arrival_structure(config) -> tuple[int, int]:
    result = simulate(config)
    flows = reconstruct_flows(result.socket_log)
    stats = interarrival_stats(flows, result.topology)
    audit = incast_audit(flows, result.topology,
                         connection_cap=config.workload.max_connections)
    return int(stats.server_modes.size), audit.peak_fan_in


@experiment("conncap", figure="A2", title="connection cap and stop-and-go",
            kind="ablation")
def run_connection_cap_ablation(seed: int = 12) -> ConnectionCapAblation:
    """Run A2 on the small campaign (connection cap on vs off)."""
    base = small_config(seed=seed)
    capped = _arrival_structure(base)
    uncapped = _arrival_structure(
        replace(
            base,
            workload=replace(
                base.workload,
                max_connections=512,
                connection_quantum=1e-4,
                connection_jitter=1e-4,
            ),
        )
    )
    return ConnectionCapAblation(
        modes_with_cap=capped[0],
        modes_without_cap=uncapped[0],
        peak_fan_in_with_cap=capped[1],
        peak_fan_in_without_cap=uncapped[1],
    )


@dataclass(frozen=True)
class GravityRegimeAblation:
    """A3: tomogravity error on ISP-like vs DC-like TMs."""

    isp_errors: np.ndarray
    dc_errors: np.ndarray

    @property
    def median_isp_error(self) -> float:
        """Median RMSRE in the dense gravity regime."""
        return float(np.median(self.isp_errors)) if self.isp_errors.size else float("nan")

    @property
    def median_dc_error(self) -> float:
        """Median RMSRE in the sparse job-clustered regime."""
        return float(np.median(self.dc_errors)) if self.dc_errors.size else float("nan")

    def rows(self) -> list[Row]:
        """Summary table."""
        return [
            Row("tomogravity RMSRE, ISP regime",
                "small (gravity prior fits)",
                f"{self.median_isp_error:.1%}"),
            Row("tomogravity RMSRE, DC regime",
                "large (paper median 60%)",
                f"{self.median_dc_error:.1%}"),
        ]


@experiment("gravity", figure="A3", title="gravity prior regime",
            kind="ablation")
def run_gravity_regime_ablation(
    racks: int = 12, trials: int = 12, seed: int = 13
) -> GravityRegimeAblation:
    """Run A3 on synthetic TMs over a shared topology."""
    topology = ClusterTopology(
        ClusterSpec(racks=racks, servers_per_rack=6, racks_per_vlan=4,
                    external_hosts=0)
    )
    routing, pairs, _ = tor_routing_matrix(topology)
    rng = np.random.default_rng(seed)
    model = SyntheticTrafficModel()
    isp_errors = []
    dc_errors = []
    for _ in range(trials):
        dense = gravity_synthetic_tm(racks, rng)
        truth_isp = np.array([dense[i, j] for i, j in pairs])
        sparse_tm = model.sample_tor_tm(topology, rng)
        truth_dc = np.array([sparse_tm[i, j] for i, j in pairs])
        for truth, bucket in ((truth_isp, isp_errors), (truth_dc, dc_errors)):
            if truth.sum() <= 0:
                continue
            counts = routing @ truth
            out_totals = np.zeros(racks)
            in_totals = np.zeros(racks)
            for k, (i, j) in enumerate(pairs):
                out_totals[i] += truth[k]
                in_totals[j] += truth[k]
            prior = gravity_prior_for_pairs(out_totals, in_totals, pairs)
            estimate = tomogravity_estimate(routing, counts, prior)
            error = rmsre(truth, estimate)
            if np.isfinite(error):
                bucket.append(error)
    return GravityRegimeAblation(
        isp_errors=np.asarray(isp_errors),
        dc_errors=np.asarray(dc_errors),
    )
