"""Dataset caching: content-addressed keys, a bounded LRU, a disk layer.

The paper's pipeline is only tractable because each stage's expensive
artefacts are computed once and reused by every downstream analysis
(§2); the reproduction mirrors that with three pieces layered under
:func:`repro.experiments.common.build_dataset`:

* :func:`config_fingerprint` — a content hash derived automatically from
  the *full* config dataclass tree (``dataclasses.fields``, recursively).
  Unlike a hand-maintained key tuple, it cannot silently go stale when
  :class:`~repro.config.SimulationConfig` grows a field: new fields (and
  their defaults) change the canonical form and therefore the hash.
* :class:`LRUCache` — a small bounded in-memory map so parameter sweeps
  and ablations no longer grow memory without limit.
* :class:`DatasetDiskCache` — a persistent content-addressed store under
  ``.repro-cache/`` (npz for the big arrays + pickle for the object
  graph, versioned via ``meta.json``) so a cold process reuses a prior
  campaign instead of re-simulating it.

:func:`dataset_content_hash` hashes the *output* arrays of a built
dataset; determinism tests assert that identical configs produce
identical content hashes in-process and across subprocess workers.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import pickle
import shutil
import time
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "canonical_config",
    "config_fingerprint",
    "dataset_content_hash",
    "LRUCache",
    "DatasetDiskCache",
    "default_cache_dir",
    "NPZ_FIELDS",
]

#: Bump to invalidate every persisted dataset (format or semantics change).
CACHE_SCHEMA_VERSION = 1

#: Environment override for the on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> pathlib.Path:
    """The disk-cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV, _DEFAULT_CACHE_DIR))


# --------------------------------------------------------------- fingerprint


def canonical_config(obj: Any) -> Any:
    """A config object as nested JSON-able primitives, deterministically.

    Dataclasses contribute their type name and *every* field (via
    :func:`dataclasses.fields`, recursively), so the canonical form — and
    any hash of it — changes whenever a field is added, removed or given
    a different value.  Dicts, tuples, enums and numpy scalars are
    normalised; anything else falls back to ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical_config(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__qualname__, **fields}
    if isinstance(obj, enum.Enum):
        return [type(obj).__qualname__, obj.name]
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, dict):
        return {"__dict__": {str(k): canonical_config(v) for k, v in obj.items()}}
    if isinstance(obj, (tuple, list)):
        return [canonical_config(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(obj).tobytes()
            ).hexdigest(),
            "shape": list(obj.shape),
            "dtype": str(obj.dtype),
        }
    if callable(obj):
        return f"<callable {getattr(obj, '__qualname__', repr(obj))}>"
    return repr(obj)


def config_fingerprint(config: Any) -> str:
    """Content-addressed cache key for a config dataclass tree (sha256 hex)."""
    payload = {
        "schema_version": CACHE_SCHEMA_VERSION,
        "config": canonical_config(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def dataset_content_hash(dataset: Any) -> str:
    """Hash of a built dataset's numeric content (sha256 hex).

    Covers the utilisation matrix, observed link set, the TM series and
    the flow table columns — the arrays every figure analysis reads.
    Two datasets with equal hashes are interchangeable for analysis.
    """
    digest = hashlib.sha256()

    def add(name: str, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        digest.update(name.encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(array.tobytes())

    add("utilization", dataset.utilization)
    add("observed_links", dataset.observed_links)
    add("tm10", dataset.tm10.matrices)
    flows = dataset.flows
    for column in ("src", "dst", "src_port", "dst_port",
                   "start_time", "end_time", "num_bytes"):
        add(f"flows.{column}", getattr(flows, column))
    return digest.hexdigest()


# ----------------------------------------------------------------- LRU cache


class LRUCache:
    """A small bounded mapping with least-recently-used eviction.

    ``on_evict`` (if given) is called once per evicted value — the
    experiments layer uses it to count evictions into telemetry.
    """

    def __init__(self, limit: int = 8,
                 on_evict: Callable[[str, Any], None] | None = None) -> None:
        if limit < 1:
            raise ValueError("cache limit must be >= 1")
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._limit = limit
        self._on_evict = on_evict
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    @property
    def limit(self) -> int:
        """Maximum number of entries held."""
        return self._limit

    def set_limit(self, limit: int) -> None:
        """Change the bound, evicting oldest entries if now over it."""
        if limit < 1:
            raise ValueError("cache limit must be >= 1")
        self._limit = limit
        self._shrink()

    def get(self, key: str) -> Any | None:
        """Fetch and mark as most recently used (None on miss)."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: str, value: Any) -> None:
        """Insert as most recently used, evicting past the limit."""
        self._data[key] = value
        self._data.move_to_end(key)
        self._shrink()

    def clear(self) -> None:
        """Drop every entry (not counted as evictions)."""
        self._data.clear()

    def keys(self) -> list[str]:
        """Keys, oldest first."""
        return list(self._data)

    def _shrink(self) -> None:
        while len(self._data) > self._limit:
            key, value = self._data.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)


# ---------------------------------------------------------------- disk cache

#: Big numeric payloads stored in ``arrays.npz`` instead of the pickle.
#: The scheduler's shared-memory hand-off publishes exactly this set.
NPZ_FIELDS = ("utilization", "observed_links")
_NPZ_FIELDS = NPZ_FIELDS


class DatasetDiskCache:
    """Content-addressed persistent dataset store.

    One directory per entry (``dataset-<fingerprint>/``) holding:

    * ``arrays.npz`` — the large numeric fields, compressed;
    * ``dataset.pkl`` — the remaining object graph (config, simulation
      result, flow table, TM series);
    * ``meta.json`` — schema version, creation time, seed/duration and
      the dataset content hash, for ``repro cache ls`` and validation.

    Writes go to a temp directory renamed into place, so concurrent
    campaign workers storing the same fingerprint race benignly.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()

    def entry_dir(self, fingerprint: str) -> pathlib.Path:
        """Directory that does/would hold this fingerprint's artefacts."""
        return self.root / f"dataset-{fingerprint}"

    def load(self, fingerprint: str, arrays: dict | None = None):
        """The cached dataset, or None on miss/version-mismatch/corruption.

        ``arrays`` (if given) supplies the large numeric fields from
        elsewhere — the scheduler passes arrays attached from shared
        memory (:mod:`repro.experiments.shm`) so only the pickled object
        graph is read from disk and the npz decompress is skipped.  Any
        field missing from ``arrays`` still loads from ``arrays.npz``.
        """
        entry = self.entry_dir(fingerprint)
        try:
            with open(entry / "meta.json", "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if meta.get("schema_version") != CACHE_SCHEMA_VERSION:
                return None
            with open(entry / "dataset.pkl", "rb") as handle:
                dataset = pickle.load(handle)
            restored = dict(arrays) if arrays else {}
            missing = [name for name in _NPZ_FIELDS if name not in restored]
            if missing:
                with np.load(entry / "arrays.npz") as stored:
                    for name in missing:
                        restored[name] = stored[name]
            return dataclasses.replace(
                dataset, **{name: restored[name] for name in _NPZ_FIELDS}
            )
        except (OSError, json.JSONDecodeError, KeyError, EOFError,
                pickle.UnpicklingError, ValueError, AttributeError,
                ModuleNotFoundError):
            return None

    def store(self, fingerprint: str, dataset) -> pathlib.Path:
        """Persist a dataset (no-op if the fingerprint already exists)."""
        entry = self.entry_dir(fingerprint)
        if entry.exists():
            return entry
        staging = entry.with_name(f"{entry.name}.tmp-{os.getpid()}")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            arrays = {
                name: np.ascontiguousarray(getattr(dataset, name))
                for name in _NPZ_FIELDS
            }
            np.savez_compressed(staging / "arrays.npz", **arrays)
            slim = dataclasses.replace(
                dataset,
                **{name: np.empty(0) for name in _NPZ_FIELDS},
            )
            with open(staging / "dataset.pkl", "wb") as handle:
                pickle.dump(slim, handle, protocol=pickle.HIGHEST_PROTOCOL)
            size = sum(p.stat().st_size for p in staging.iterdir())
            meta = {
                "schema_version": CACHE_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "created_at": time.time(),
                "seed": getattr(dataset.config, "seed", None),
                "duration": getattr(dataset.config, "duration", None),
                "content_hash": dataset_content_hash(dataset),
                "size_bytes": size,
            }
            with open(staging / "meta.json", "w", encoding="utf-8") as handle:
                json.dump(meta, handle, indent=2)
                handle.write("\n")
            try:
                staging.rename(entry)
            except OSError:
                # Another worker persisted the same fingerprint first.
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return entry

    def entries(self) -> list[dict]:
        """Metadata of every valid entry, oldest first."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in sorted(self.root.iterdir()):
            meta_path = entry / "meta.json"
            if not entry.is_dir() or not meta_path.is_file():
                continue
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            meta["path"] = str(entry)
            found.append(meta)
        found.sort(key=lambda meta: meta.get("created_at", 0.0))
        return found

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in list(self.root.iterdir()):
            if entry.is_dir() and entry.name.startswith("dataset-"):
                shutil.rmtree(entry, ignore_errors=True)
                removed += 1
        return removed
