"""Multi-seed campaign runner: confidence intervals, in parallel.

The paper's headline statistics come from one two-month campaign on one
cluster; a reproduction can do better by repeating the campaign over
many seeds and reporting the distribution.  :func:`run_campaign` builds
the dataset and runs a selected set of registered experiments for each
seed — serially, or fanned across a ``spawn`` :class:`ProcessPoolExecutor`
with ``jobs`` workers — then aggregates every numeric summary metric
into mean / sample stdev / normal-approximation 95% CI rows.

Workers share nothing in memory but everything on disk: each builds (or
loads) its dataset through the content-addressed disk cache, so a warm
campaign re-run touches no simulator code at all.  Each worker also
runs under its own :class:`~repro.telemetry.Telemetry` handle and
:class:`~repro.telemetry.ResourceProfiler` with a propagated trace
context (campaign id, seed, worker pid); its metrics, spans and
per-phase resource profile ship back with the seed result and the
parent merges them into one campaign-wide timeline
(:func:`repro.telemetry.merge_worker_reports`) — counters sum,
histograms merge reservoirs, spans interleave on wall-clock in
per-worker lanes.  The campaign's provenance — per-seed content hashes,
timings, cache behaviour and the aggregate table — lands in a
:class:`~repro.telemetry.RunManifest` that ``repro campaign report``
renders back into tables; the timeline is written next to it.
"""

from __future__ import annotations

import math
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from multiprocessing import get_context
from typing import Callable, Iterable, Sequence

from ..config import SimulationConfig
from ..telemetry import (
    NULL_TELEMETRY,
    ResourceProfiler,
    RunManifest,
    Telemetry,
    merge_worker_reports,
    worker_report,
)
from ..telemetry.resources import PHASE_COMPUTE, PHASE_DATASET
from .cache import config_fingerprint, dataset_content_hash
from .common import build_dataset, small_config
from .registry import experiment_names, get_experiment
from .reporting import format_table

__all__ = [
    "SeedRun",
    "CampaignResult",
    "run_campaign",
    "aggregate_summaries",
    "campaign_manifest",
    "render_campaign_report",
]

#: Normal-approximation z for a two-sided 95% confidence interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class SeedRun:
    """One seed's completed campaign: provenance, timings, summaries."""

    seed: int
    fingerprint: str
    content_hash: str
    wall_seconds: float
    build_seconds: float
    from_disk_cache: bool
    #: ``{experiment name: {metric: value}}`` numeric summary rows.
    summaries: dict = field(default_factory=dict)
    #: True when this seed's record was loaded from a previously
    #: published queue result (``pool="warm"`` with ``resume=True``)
    #: instead of being recomputed in this invocation.
    resumed: bool = False

    def to_dict(self) -> dict:
        """JSON-friendly record (manifest ``per_seed`` rows)."""
        return asdict(self)


@dataclass
class CampaignResult:
    """A finished multi-seed campaign and its aggregate statistics."""

    base_config: SimulationConfig
    seeds: list[int]
    experiments: list[str]
    jobs: int
    wall_seconds: float
    seed_runs: list[SeedRun]
    #: ``{experiment: {metric: {mean, stdev, ci95, n, min, max}}}``.
    aggregates: dict
    #: Propagated trace context shared by every worker.
    campaign_id: str = ""
    #: Merged cross-process timeline (:mod:`repro.telemetry.merge`);
    #: written next to the manifest by ``repro campaign run``.
    timeline: dict = field(default_factory=dict)
    #: Work-queue bookkeeping when run under ``pool="warm"``
    #: (queue id/dir, takeovers, resumed seeds, respawns).
    scheduler: dict = field(default_factory=dict)

    def extra(self) -> dict:
        """The manifest ``extra['campaign']`` payload."""
        payload = {
            "campaign_id": self.campaign_id,
            "seeds": list(self.seeds),
            "experiments": list(self.experiments),
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "per_seed": [run.to_dict() for run in self.seed_runs],
            "aggregates": self.aggregates,
        }
        if self.scheduler:
            payload["scheduler"] = dict(self.scheduler)
        if self.timeline:
            payload["observability"] = {
                "coverage": self.timeline.get("coverage", 0.0),
                "phase_totals": self.timeline.get("phase_totals", {}),
            }
        return payload


def aggregate_summaries(
    seed_runs: Sequence[SeedRun], experiments: Iterable[str]
) -> dict:
    """Per-experiment, per-metric mean / stdev / 95% CI across seeds.

    The CI half-width uses the normal approximation
    ``1.96 * stdev / sqrt(n)`` (stdev is the ``ddof=1`` sample estimate;
    both are 0 for a single seed) — adequate for the handful-of-seeds
    regime this runner targets, and dependency-free.
    """
    aggregates: dict = {}
    for name in experiments:
        metrics: dict = {}
        keys: list[str] = []
        for run in seed_runs:
            for key in run.summaries.get(name, {}):
                if key not in keys:
                    keys.append(key)
        for key in keys:
            values = [
                run.summaries[name][key]
                for run in seed_runs
                if key in run.summaries.get(name, {})
            ]
            n = len(values)
            mean = sum(values) / n
            if n > 1:
                variance = sum((v - mean) ** 2 for v in values) / (n - 1)
                stdev = math.sqrt(variance)
            else:
                stdev = 0.0
            metrics[key] = {
                "mean": mean,
                "stdev": stdev,
                "ci95": _Z95 * stdev / math.sqrt(n),
                "n": n,
                "min": min(values),
                "max": max(values),
            }
        aggregates[name] = metrics
    return aggregates


def _seed_heartbeat(seed: int) -> Callable[[dict], None]:
    """A per-seed progress printer for long campaigns (stderr)."""

    def beat(snapshot: dict) -> None:
        print(
            "[campaign seed {seed}] t={now:.1f}s/{duration:.1f}s "
            "({percent:.0f}%) events={events_processed} "
            "active_flows={active_flows}".format(seed=seed, **snapshot),
            file=sys.stderr,
            flush=True,
        )

    return beat


def _run_one_seed(payload: tuple) -> dict:
    """Build one seed's dataset and run the experiment set (worker body).

    Top-level so :class:`ProcessPoolExecutor` can pickle it; importing
    this module pulls in :mod:`repro.experiments`, which registers every
    experiment in the worker process.  The worker runs under its own
    telemetry handle and resource profiler; everything it measured ships
    home in the record's ``report`` entry for the parent to merge.
    """
    config, names, cache_dir, disk_cache, campaign_id, submitted_at, \
        heartbeat_interval = payload
    started_at = time.time()
    tele = Telemetry()
    profiler = ResourceProfiler()
    profiler.start()
    profiler.add_startup_phases(submitted_at)
    heartbeat = _seed_heartbeat(config.seed) if heartbeat_interval else None
    started = time.perf_counter()
    with tele.span("campaign.seed", seed=config.seed,
                   campaign_id=campaign_id, pid=profiler.pid):
        with profiler.phase(PHASE_DATASET):
            dataset = build_dataset(
                config, telemetry=tele, disk_cache=disk_cache,
                cache_dir=cache_dir, heartbeat=heartbeat,
                heartbeat_interval=heartbeat_interval,
            )
        build_seconds = time.perf_counter() - started
        summaries = {}
        with profiler.phase(PHASE_COMPUTE):
            for name in names:
                spec = get_experiment(name)
                with tele.span("campaign.experiment", experiment=name):
                    if spec.kind == "ablation":
                        result = spec.run(seed=config.seed)
                    else:
                        result = spec.run(dataset)
                summaries[name] = spec.summary(result)
    profiler.stop()
    snapshot = tele.metrics.snapshot()
    from_disk_cache = (
        snapshot.get("dataset.disk_cache_hits", {}).get("value", 0.0) > 0
    )
    return {
        "seed": config.seed,
        "fingerprint": config_fingerprint(config),
        "content_hash": dataset_content_hash(dataset),
        "wall_seconds": time.perf_counter() - started,
        "build_seconds": build_seconds,
        "from_disk_cache": from_disk_cache,
        "summaries": summaries,
        "report": worker_report(
            tele, profiler,
            campaign_id=campaign_id, seed=config.seed,
            submitted_at=submitted_at, started_at=started_at,
        ),
    }


def run_campaign(
    base_config: SimulationConfig | None = None,
    *,
    seeds: int | Sequence[int] = 4,
    experiments: Sequence[str] | None = None,
    jobs: int = 1,
    telemetry: Telemetry | None = None,
    cache_dir=None,
    disk_cache: bool | None = True,
    progress: Callable[[dict, int, int], None] | None = None,
    campaign_id: str | None = None,
    heartbeat_interval: float | None = None,
    pool: str = "spawn",
    resume: bool = False,
    lease_ttl: float | None = None,
    use_shm: bool | None = None,
) -> CampaignResult:
    """Run the campaign over multiple seeds, optionally in parallel.

    ``seeds`` is either a count (seeds ``base.seed .. base.seed+N-1``) or
    an explicit sequence.  ``experiments`` defaults to every registered
    figure experiment.  ``jobs <= 1`` runs in-process (sharing the
    in-memory dataset cache); ``jobs > 1`` fans seeds across fresh
    ``spawn`` worker processes, which is also what makes the
    serial-vs-parallel determinism tests meaningful.  ``progress`` (if
    given) is called with ``(record, completed, total)`` per seed.

    ``pool`` selects the execution substrate: ``"spawn"`` (default) is
    the one-shot per-seed process pool described above; ``"warm"`` runs
    the :mod:`~repro.experiments.scheduler` work queue — persistent
    workers claiming config-fingerprint keys through lease files in the
    cache directory, with shared-memory dataset hand-off.  Under
    ``"warm"``, ``resume=True`` honours results a previous (possibly
    interrupted) invocation published — only missing seeds are
    computed, and the finished campaign's content hashes are identical
    to an uninterrupted run — while ``resume=False`` resets the queue
    first.  ``lease_ttl`` bounds how long a dead worker's claim blocks
    takeover; ``use_shm`` force-enables/disables the shared-memory
    hand-off (default: on for multi-worker warm pools with a disk
    cache).  Both are ignored by the spawn pool.

    ``campaign_id`` is the trace context every worker stamps on its
    spans (default: derived from the config fingerprint — deterministic,
    so re-runs of the same campaign are diffable).  With
    ``heartbeat_interval`` set, each seed's simulation prints progress
    heartbeats to stderr every that many simulated seconds.  The result
    carries a merged cross-process ``timeline`` whose per-worker lanes
    and phase totals say where the wall-clock went.
    """
    if pool not in ("spawn", "warm"):
        raise ValueError(f"unknown pool {pool!r}: expected 'spawn' or 'warm'")
    tele = telemetry or NULL_TELEMETRY
    if base_config is None:
        base_config = small_config()
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        seed_list = [base_config.seed + i for i in range(seeds)]
    else:
        seed_list = list(seeds)
        if not seed_list:
            raise ValueError("seeds must not be empty")
    if len(set(seed_list)) != len(seed_list):
        raise ValueError("seeds must be distinct")
    names = list(experiments) if experiments else experiment_names(kind="figure")
    for name in names:
        get_experiment(name)  # fail fast on unknown experiments
    if campaign_id is None:
        campaign_id = (
            f"{config_fingerprint(base_config)[:12]}"
            f".s{seed_list[0]}x{len(seed_list)}.j{jobs}"
        )

    def payload(seed: int) -> tuple:
        # Built at submit time so ``submitted_at`` prices the real
        # spawn/queue gap, not payload construction.
        return (
            base_config.with_seed(seed), tuple(names), cache_dir, disk_cache,
            campaign_id, time.time(), heartbeat_interval,
        )

    records: dict[int, dict] = {}
    scheduler_info: dict = {}
    window_start = time.time()
    started = time.perf_counter()
    with tele.span("campaign.run", seeds=len(seed_list), jobs=jobs,
                   campaign_id=campaign_id, pool=pool):
        def fan_in() -> tuple[list[dict], dict]:
            # Merge every worker's metrics, spans and resource phases
            # into the campaign-wide timeline (and, through it, the
            # parent telemetry session the manifest snapshots).  For
            # parallel runs this happens *inside* the pool context: the
            # timeline window closes at merge end, and pool shutdown is
            # not billed as campaign dead time.  Resumed records carry
            # no report — their stale lanes would misdate the window —
            # so they contribute hashes and summaries only.
            ordered = [records[seed] for seed in seed_list]
            reports = []
            for record in ordered:
                record.setdefault("resumed", False)
                report = record.pop("report", None)
                if report is not None and not record["resumed"]:
                    reports.append(report)
            with tele.span("campaign.merge", campaign_id=campaign_id):
                timeline = merge_worker_reports(
                    reports,
                    campaign_id=campaign_id,
                    window_start=window_start,
                    jobs=jobs,
                    telemetry=tele,
                )
            return ordered, timeline

        if pool == "warm":
            from .scheduler import DEFAULT_LEASE_TTL, run_queue

            outcome = run_queue(
                base_config, seed_list, names,
                jobs=jobs, telemetry=tele, cache_dir=cache_dir,
                disk_cache=disk_cache, progress=progress,
                campaign_id=campaign_id,
                heartbeat_interval=heartbeat_interval,
                lease_ttl=lease_ttl if lease_ttl else DEFAULT_LEASE_TTL,
                resume=resume, use_shm=use_shm,
            )
            records.update(outcome["records"])
            scheduler_info = {
                "pool": "warm",
                "queue_id": outcome["queue_id"],
                "queue_dir": outcome["queue_dir"],
                "takeovers": outcome["takeovers"],
                "resumed_seeds": outcome["resumed_seeds"],
                "respawns": outcome["respawns"],
                "use_shm": outcome["use_shm"],
            }
            ordered, timeline = fan_in()
        elif jobs <= 1:
            for seed in seed_list:
                record = _run_one_seed(payload(seed))
                records[record["seed"]] = record
                if progress is not None:
                    progress(record, len(records), len(seed_list))
            ordered, timeline = fan_in()
        else:
            context = get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(seed_list)), mp_context=context
            ) as pool:
                pending = {pool.submit(_run_one_seed, payload(seed))
                           for seed in seed_list}
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        record = future.result()
                        records[record["seed"]] = record
                        if progress is not None:
                            progress(record, len(records), len(seed_list))
                ordered, timeline = fan_in()
    wall_seconds = time.perf_counter() - started

    tele.counter("campaign.seeds_completed").inc(len(ordered))
    seed_runs = [SeedRun(**record) for record in ordered]
    return CampaignResult(
        base_config=base_config,
        seeds=seed_list,
        experiments=names,
        jobs=jobs,
        wall_seconds=wall_seconds,
        seed_runs=seed_runs,
        aggregates=aggregate_summaries(seed_runs, names),
        campaign_id=campaign_id,
        timeline=timeline,
        scheduler=scheduler_info,
    )


def campaign_manifest(
    result: CampaignResult, telemetry: Telemetry
) -> RunManifest:
    """A provenance manifest for a finished campaign."""
    return RunManifest.capture(
        "campaign run",
        result.base_config,
        telemetry,
        extra={"campaign": result.extra()},
    )


def _format_value(value: float) -> str:
    return f"{value:.6g}"


def _seed_row(run: dict) -> tuple:
    """One per-seed table row, tolerant of partial records.

    A manifest written mid-campaign (interrupted run, or a queue result
    recovered without timings) may lack any field; missing values render
    as ``?`` instead of crashing the report.
    """
    def seconds(name: str) -> str:
        value = run.get(name)
        return f"{value:.2f}" if isinstance(value, (int, float)) else "?"

    source = "disk" if run.get("from_disk_cache") else "built"
    if run.get("resumed"):
        source += " (resumed)"
    content_hash = run.get("content_hash") or "?"
    return (
        str(run.get("seed", "?")),
        content_hash[:12],
        seconds("build_seconds"),
        seconds("wall_seconds"),
        source,
    )


def render_campaign_report(campaign: dict) -> str:
    """Human-readable tables from a manifest's ``extra['campaign']``.

    Degrades gracefully on a manifest from an interrupted run: partial
    per-seed records render with ``?`` placeholders, and seeds the
    campaign planned but never completed appear as ``missing`` rows so
    the operator sees exactly what a ``--resume`` would pick up.
    """
    sections = []
    per_seed = [run for run in campaign.get("per_seed", []) if isinstance(run, dict)]
    rows = [_seed_row(run) for run in per_seed]
    completed = {run.get("seed") for run in per_seed}
    missing = [
        seed for seed in campaign.get("seeds", []) if seed not in completed
    ]
    for seed in missing:
        rows.append((str(seed), "-", "-", "-", "missing"))
    title = (
        f"campaign — {len(per_seed)} seeds, jobs={campaign.get('jobs', '?')}, "
        f"{campaign.get('wall_seconds', 0.0):.2f}s wall"
    )
    if missing:
        title += f" — INCOMPLETE ({len(missing)} seed(s) missing)"
    sections.append(format_table(
        title, rows,
        headers=("seed", "content hash", "build s", "total s", "dataset"),
    ))
    scheduler = campaign.get("scheduler")
    if scheduler:
        notes = [
            f"queue {scheduler.get('queue_id', '?')} at "
            f"{scheduler.get('queue_dir', '?')}"
        ]
        if scheduler.get("resumed_seeds"):
            notes.append(f"resumed seeds {scheduler['resumed_seeds']}")
        if scheduler.get("takeovers"):
            notes.append(f"{scheduler['takeovers']} lease takeover(s)")
        if scheduler.get("respawns"):
            notes.append(f"{scheduler['respawns']} worker respawn(s)")
        sections.append("scheduler: " + "; ".join(notes))
    observability = campaign.get("observability")
    if observability and observability.get("phase_totals"):
        rows = [
            (name, f"{seconds:.2f}")
            for name, seconds in observability["phase_totals"].items()
        ]
        sections.append(format_table(
            "where the wall-clock went — lane coverage "
            f"{observability.get('coverage', 0.0):.0%}",
            rows,
            headers=("phase", "total s"),
        ))
    for name in campaign.get("experiments", []):
        metrics = campaign.get("aggregates", {}).get(name, {})
        rows = [
            (
                metric,
                f"{_format_value(agg['mean'])} ± {_format_value(agg['ci95'])}",
                _format_value(agg["stdev"]),
                _format_value(agg["min"]),
                _format_value(agg["max"]),
                str(agg["n"]),
            )
            for metric, agg in metrics.items()
        ]
        sections.append(format_table(
            f"{name} — across seeds",
            rows,
            headers=("metric", "mean ± 95% CI", "stdev", "min", "max", "n"),
        ))
    return "\n\n".join(sections)
