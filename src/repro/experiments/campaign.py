"""Multi-seed campaign runner: confidence intervals, in parallel.

The paper's headline statistics come from one two-month campaign on one
cluster; a reproduction can do better by repeating the campaign over
many seeds and reporting the distribution.  :func:`run_campaign` builds
the dataset and runs a selected set of registered experiments for each
seed — serially, or fanned across a ``spawn`` :class:`ProcessPoolExecutor`
with ``jobs`` workers — then aggregates every numeric summary metric
into mean / sample stdev / normal-approximation 95% CI rows.

Workers share nothing in memory but everything on disk: each builds (or
loads) its dataset through the content-addressed disk cache, so a warm
campaign re-run touches no simulator code at all.  The campaign's
provenance — per-seed content hashes, timings, cache behaviour and the
aggregate table — lands in a :class:`~repro.telemetry.RunManifest` that
``repro campaign report`` renders back into tables.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from multiprocessing import get_context
from typing import Callable, Iterable, Sequence

from ..config import SimulationConfig
from ..telemetry import NULL_TELEMETRY, RunManifest, Telemetry
from .cache import config_fingerprint, dataset_content_hash
from .common import build_dataset, small_config
from .registry import experiment_names, get_experiment
from .reporting import format_table

__all__ = [
    "SeedRun",
    "CampaignResult",
    "run_campaign",
    "aggregate_summaries",
    "campaign_manifest",
    "render_campaign_report",
]

#: Normal-approximation z for a two-sided 95% confidence interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class SeedRun:
    """One seed's completed campaign: provenance, timings, summaries."""

    seed: int
    fingerprint: str
    content_hash: str
    wall_seconds: float
    build_seconds: float
    from_disk_cache: bool
    #: ``{experiment name: {metric: value}}`` numeric summary rows.
    summaries: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-friendly record (manifest ``per_seed`` rows)."""
        return asdict(self)


@dataclass
class CampaignResult:
    """A finished multi-seed campaign and its aggregate statistics."""

    base_config: SimulationConfig
    seeds: list[int]
    experiments: list[str]
    jobs: int
    wall_seconds: float
    seed_runs: list[SeedRun]
    #: ``{experiment: {metric: {mean, stdev, ci95, n, min, max}}}``.
    aggregates: dict

    def extra(self) -> dict:
        """The manifest ``extra['campaign']`` payload."""
        return {
            "seeds": list(self.seeds),
            "experiments": list(self.experiments),
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "per_seed": [run.to_dict() for run in self.seed_runs],
            "aggregates": self.aggregates,
        }


def aggregate_summaries(
    seed_runs: Sequence[SeedRun], experiments: Iterable[str]
) -> dict:
    """Per-experiment, per-metric mean / stdev / 95% CI across seeds.

    The CI half-width uses the normal approximation
    ``1.96 * stdev / sqrt(n)`` (stdev is the ``ddof=1`` sample estimate;
    both are 0 for a single seed) — adequate for the handful-of-seeds
    regime this runner targets, and dependency-free.
    """
    aggregates: dict = {}
    for name in experiments:
        metrics: dict = {}
        keys: list[str] = []
        for run in seed_runs:
            for key in run.summaries.get(name, {}):
                if key not in keys:
                    keys.append(key)
        for key in keys:
            values = [
                run.summaries[name][key]
                for run in seed_runs
                if key in run.summaries.get(name, {})
            ]
            n = len(values)
            mean = sum(values) / n
            if n > 1:
                variance = sum((v - mean) ** 2 for v in values) / (n - 1)
                stdev = math.sqrt(variance)
            else:
                stdev = 0.0
            metrics[key] = {
                "mean": mean,
                "stdev": stdev,
                "ci95": _Z95 * stdev / math.sqrt(n),
                "n": n,
                "min": min(values),
                "max": max(values),
            }
        aggregates[name] = metrics
    return aggregates


def _run_one_seed(payload: tuple) -> dict:
    """Build one seed's dataset and run the experiment set (worker body).

    Top-level so :class:`ProcessPoolExecutor` can pickle it; importing
    this module pulls in :mod:`repro.experiments`, which registers every
    experiment in the worker process.
    """
    config, names, cache_dir, disk_cache = payload
    tele = Telemetry()
    started = time.perf_counter()
    with tele.span("campaign.seed", seed=config.seed):
        dataset = build_dataset(
            config, telemetry=tele, disk_cache=disk_cache, cache_dir=cache_dir,
        )
        build_seconds = time.perf_counter() - started
        summaries = {}
        for name in names:
            spec = get_experiment(name)
            with tele.span("campaign.experiment", experiment=name):
                if spec.kind == "ablation":
                    result = spec.run(seed=config.seed)
                else:
                    result = spec.run(dataset)
            summaries[name] = spec.summary(result)
    snapshot = tele.metrics.snapshot()
    counters = {
        name: state["value"]
        for name, state in snapshot.items()
        if state.get("type") == "counter"
    }
    return {
        "seed": config.seed,
        "fingerprint": config_fingerprint(config),
        "content_hash": dataset_content_hash(dataset),
        "wall_seconds": time.perf_counter() - started,
        "build_seconds": build_seconds,
        "from_disk_cache": counters.get("dataset.disk_cache_hits", 0.0) > 0,
        "summaries": summaries,
        "counters": counters,
    }


def run_campaign(
    base_config: SimulationConfig | None = None,
    *,
    seeds: int | Sequence[int] = 4,
    experiments: Sequence[str] | None = None,
    jobs: int = 1,
    telemetry: Telemetry | None = None,
    cache_dir=None,
    disk_cache: bool | None = True,
    progress: Callable[[dict, int, int], None] | None = None,
) -> CampaignResult:
    """Run the campaign over multiple seeds, optionally in parallel.

    ``seeds`` is either a count (seeds ``base.seed .. base.seed+N-1``) or
    an explicit sequence.  ``experiments`` defaults to every registered
    figure experiment.  ``jobs <= 1`` runs in-process (sharing the
    in-memory dataset cache); ``jobs > 1`` fans seeds across fresh
    ``spawn`` worker processes, which is also what makes the
    serial-vs-parallel determinism tests meaningful.  ``progress`` (if
    given) is called with ``(record, completed, total)`` per seed.
    """
    tele = telemetry or NULL_TELEMETRY
    if base_config is None:
        base_config = small_config()
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        seed_list = [base_config.seed + i for i in range(seeds)]
    else:
        seed_list = list(seeds)
        if not seed_list:
            raise ValueError("seeds must not be empty")
    if len(set(seed_list)) != len(seed_list):
        raise ValueError("seeds must be distinct")
    names = list(experiments) if experiments else experiment_names(kind="figure")
    for name in names:
        get_experiment(name)  # fail fast on unknown experiments
    payloads = [
        (base_config.with_seed(seed), tuple(names), cache_dir, disk_cache)
        for seed in seed_list
    ]

    records: dict[int, dict] = {}
    started = time.perf_counter()
    with tele.span("campaign.run", seeds=len(seed_list), jobs=jobs):
        if jobs <= 1:
            for payload in payloads:
                record = _run_one_seed(payload)
                records[record["seed"]] = record
                if progress is not None:
                    progress(record, len(records), len(payloads))
        else:
            context = get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(payloads)), mp_context=context
            ) as pool:
                pending = {pool.submit(_run_one_seed, p) for p in payloads}
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        record = future.result()
                        records[record["seed"]] = record
                        if progress is not None:
                            progress(record, len(records), len(payloads))
    wall_seconds = time.perf_counter() - started

    ordered = [records[seed] for seed in seed_list]
    # Fold worker-side counters into the campaign session so the manifest
    # reports dataset/cache traffic across every seed.
    for record in ordered:
        for name, value in record.pop("counters", {}).items():
            if value:
                tele.counter(name).inc(value)
    tele.counter("campaign.seeds_completed").inc(len(ordered))
    seed_runs = [SeedRun(**record) for record in ordered]
    return CampaignResult(
        base_config=base_config,
        seeds=seed_list,
        experiments=names,
        jobs=jobs,
        wall_seconds=wall_seconds,
        seed_runs=seed_runs,
        aggregates=aggregate_summaries(seed_runs, names),
    )


def campaign_manifest(
    result: CampaignResult, telemetry: Telemetry
) -> RunManifest:
    """A provenance manifest for a finished campaign."""
    return RunManifest.capture(
        "campaign run",
        result.base_config,
        telemetry,
        extra={"campaign": result.extra()},
    )


def _format_value(value: float) -> str:
    return f"{value:.6g}"


def render_campaign_report(campaign: dict) -> str:
    """Human-readable tables from a manifest's ``extra['campaign']``."""
    sections = []
    per_seed = campaign.get("per_seed", [])
    rows = [
        (
            str(run["seed"]),
            run["content_hash"][:12],
            f"{run['build_seconds']:.2f}",
            f"{run['wall_seconds']:.2f}",
            "disk" if run.get("from_disk_cache") else "built",
        )
        for run in per_seed
    ]
    title = (
        f"campaign — {len(per_seed)} seeds, jobs={campaign.get('jobs', '?')}, "
        f"{campaign.get('wall_seconds', 0.0):.2f}s wall"
    )
    sections.append(format_table(
        title, rows,
        headers=("seed", "content hash", "build s", "total s", "dataset"),
    ))
    for name in campaign.get("experiments", []):
        metrics = campaign.get("aggregates", {}).get(name, {})
        rows = [
            (
                metric,
                f"{_format_value(agg['mean'])} ± {_format_value(agg['ci95'])}",
                _format_value(agg["stdev"]),
                _format_value(agg["min"]),
                _format_value(agg["max"]),
                str(agg["n"]),
            )
            for metric, agg in metrics.items()
        ]
        sections.append(format_table(
            f"{name} — across seeds",
            rows,
            headers=("metric", "mean ± 95% CI", "stdev", "min", "max", "n"),
        ))
    return "\n\n".join(sections)
