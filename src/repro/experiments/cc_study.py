"""Congestion-control studies: what §4.4 could not measure.

The paper *asserts* that incast preconditions rarely co-occur; it cannot
show collapse because SNMP counters hide sub-second queue dynamics.
These experiments run the queued transports
(:mod:`repro.simulation.cc`) through the canonical synchronized-incast
scenario and measure what the paper's instrumentation could not:

* **cc_fct** — flow-completion-time and queueing-delay distributions
  under the same burst for each variant (DCTCP vs Reno vs fixed-K ECN
  tail-drop);
* **cc_ecn_sweep** — the fixed-threshold trade-off: low K keeps queues
  (and RTTs) short but marks early enough to shave throughput, high K
  buys throughput back at the cost of standing queueing delay;
* **cc_incast** — goodput against the bottleneck share as the sender
  fan-in N grows: loss-driven Reno and fixed-K tail-drop collapse into
  synchronized RTOs, DCTCP's proportional backoff degrades gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..simulation.cc import (
    CongestionControlConfig,
    run_incast,
    run_incast_with_report,
)
from ..simulation.cc.scenarios import IncastRunResult
from .registry import experiment
from .reporting import Row

__all__ = [
    "VariantFctProfile",
    "FctStudy",
    "run_fct_study",
    "EcnSweepPoint",
    "EcnSweep",
    "run_ecn_sweep",
    "IncastCollapseStudy",
    "run_incast_collapse",
]

#: The variants every study sweeps, in presentation order.
VARIANTS = ("dctcp", "reno", "ecn_taildrop")

#: Fan-in sweep for the collapse study.  Chosen to straddle the collapse
#: onset under loss-driven variants while staying cheap; deliberately a
#: power-of-two ladder (synchronized windows interleave most adversarially
#: when every sender is identical).
INCAST_FAN_IN = (2, 4, 8, 16, 32, 64)

#: ECN thresholds (packets) for the fixed-K sweep.
ECN_THRESHOLDS = (10, 30, 60)


# ------------------------------------------------------------------ cc_fct


@dataclass(frozen=True)
class VariantFctProfile:
    """Per-variant FCT / queue-delay distribution for one shared burst."""

    variant: str
    #: Sorted per-flow completion times, seconds (the FCT CDF support).
    fct: tuple[float, ...]
    #: Sorted per-flow mean queueing delays, seconds.
    queue_delay: tuple[float, ...]
    goodput_ratio: float
    timeouts: float

    @property
    def median_fct(self) -> float:
        """Median flow completion time, seconds."""
        return float(np.median(self.fct)) if self.fct else 0.0

    @property
    def p99_fct(self) -> float:
        """99th-percentile flow completion time, seconds."""
        return float(np.quantile(self.fct, 0.99)) if self.fct else 0.0

    @property
    def median_queue_delay(self) -> float:
        """Median per-flow mean queueing delay, seconds."""
        return float(np.median(self.queue_delay)) if self.queue_delay else 0.0


@dataclass(frozen=True)
class FctStudy:
    """cc_fct: the same synchronized burst under each variant."""

    n_senders: int
    bytes_per_sender: float
    ideal_fct: float
    profiles: tuple[VariantFctProfile, ...]

    def profile(self, variant: str) -> VariantFctProfile:
        """The profile for one variant (KeyError when absent)."""
        for entry in self.profiles:
            if entry.variant == variant:
                return entry
        raise KeyError(variant)

    @property
    def dctcp_median_fct(self) -> float:
        """DCTCP median FCT, seconds (campaign summary hook)."""
        return self.profile("dctcp").median_fct

    @property
    def reno_median_fct(self) -> float:
        """Reno median FCT, seconds (campaign summary hook)."""
        return self.profile("reno").median_fct

    def rows(self) -> list[Row]:
        """Summary table."""
        rows = [Row("ideal burst FCT", "fair share", f"{self.ideal_fct * 1e3:.1f} ms")]
        for p in self.profiles:
            rows.append(Row(
                f"{p.variant}: median / p99 FCT",
                "dctcp lowest tail",
                f"{p.median_fct * 1e3:.1f} / {p.p99_fct * 1e3:.1f} ms",
            ))
            rows.append(Row(
                f"{p.variant}: median queue delay",
                "dctcp smallest",
                f"{p.median_queue_delay * 1e3:.2f} ms",
            ))
        return rows


def _summarise_fct(result: FctStudy) -> dict[str, float]:
    out: dict[str, float] = {"ideal_fct": result.ideal_fct}
    for p in result.profiles:
        out[f"{p.variant}.median_fct"] = p.median_fct
        out[f"{p.variant}.p99_fct"] = p.p99_fct
        out[f"{p.variant}.median_queue_delay"] = p.median_queue_delay
        out[f"{p.variant}.goodput_ratio"] = p.goodput_ratio
        out[f"{p.variant}.timeouts"] = p.timeouts
    return out


@experiment("cc_fct", figure="C1", title="FCT and queue delay by transport",
            kind="ablation", summarise=_summarise_fct)
def run_fct_study(
    seed: int = 0,
    n_senders: int = 8,
    bytes_per_sender: float = 256_000.0,
) -> FctStudy:
    """Run the same synchronized burst under each queued variant.

    The scenario is deterministic (no randomness is consumed), so
    ``seed`` exists only for the uniform ablation calling convention.
    """
    profiles = []
    ideal = 0.0
    for variant in VARIANTS:
        summary, report = run_incast_with_report(
            variant, n_senders, bytes_per_sender=bytes_per_sender,
        )
        ideal = summary.ideal_fct
        base_rtt = CongestionControlConfig().base_rtt
        delays = np.maximum(report.flow_mean_rtt - base_rtt, 0.0)
        profiles.append(VariantFctProfile(
            variant=variant,
            fct=tuple(float(x) for x in np.sort(report.flow_fct)),
            queue_delay=tuple(float(x) for x in np.sort(delays)),
            goodput_ratio=summary.goodput_ratio,
            timeouts=summary.timeouts,
        ))
    return FctStudy(
        n_senders=n_senders,
        bytes_per_sender=bytes_per_sender,
        ideal_fct=ideal,
        profiles=tuple(profiles),
    )


# ------------------------------------------------------------ cc_ecn_sweep


@dataclass(frozen=True)
class EcnSweepPoint:
    """One fixed-K operating point of the DCTCP transport."""

    ecn_threshold_packets: int
    goodput_ratio: float
    mean_queue_delay: float
    peak_queue_bytes: float


@dataclass(frozen=True)
class EcnSweep:
    """cc_ecn_sweep: the marking-threshold trade-off (DCTCP §3 analysis)."""

    n_senders: int
    bytes_per_sender: float
    points: tuple[EcnSweepPoint, ...]

    @property
    def delay_span(self) -> float:
        """Queueing-delay increase from the lowest to the highest K, s."""
        return self.points[-1].mean_queue_delay - self.points[0].mean_queue_delay

    @property
    def throughput_span(self) -> float:
        """Goodput-ratio increase from the lowest to the highest K."""
        return self.points[-1].goodput_ratio - self.points[0].goodput_ratio

    def rows(self) -> list[Row]:
        """Summary table."""
        rows = []
        for p in self.points:
            rows.append(Row(
                f"K = {p.ecn_threshold_packets} pkts",
                "delay grows with K",
                f"goodput {p.goodput_ratio:.3f}, "
                f"queue delay {p.mean_queue_delay * 1e3:.2f} ms",
            ))
        rows.append(Row("delay span (K max - K min)", "> 0",
                        f"{self.delay_span * 1e3:.2f} ms"))
        rows.append(Row("throughput span (K max - K min)", "> 0",
                        f"{self.throughput_span:.3f}"))
        return rows


def _summarise_ecn(result: EcnSweep) -> dict[str, float]:
    out = {
        "delay_span": result.delay_span,
        "throughput_span": result.throughput_span,
    }
    for p in result.points:
        key = f"k{p.ecn_threshold_packets}"
        out[f"{key}.goodput_ratio"] = p.goodput_ratio
        out[f"{key}.mean_queue_delay"] = p.mean_queue_delay
    return out


@experiment("cc_ecn_sweep", figure="C2", title="fixed-K ECN threshold sweep",
            kind="ablation", summarise=_summarise_ecn)
def run_ecn_sweep(
    seed: int = 0,
    thresholds: tuple[int, ...] = ECN_THRESHOLDS,
    n_senders: int = 2,
    bytes_per_sender: float = 8_000_000.0,
) -> EcnSweep:
    """Sweep the marking threshold K under long-running DCTCP flows.

    Two senders with large blocks hold the bottleneck near saturation
    for many RTTs, so the standing-queue operating point K selects is
    what the measurement sees (a short burst would measure slow-start
    instead).  Deterministic; ``seed`` is the uniform convention.
    """
    points = []
    for k in sorted(thresholds):
        cc = replace(CongestionControlConfig(), ecn_threshold_packets=k)
        run = run_incast(
            "dctcp", n_senders, bytes_per_sender=bytes_per_sender, cc=cc,
        )
        points.append(EcnSweepPoint(
            ecn_threshold_packets=k,
            goodput_ratio=run.goodput_ratio,
            mean_queue_delay=run.mean_queue_delay,
            peak_queue_bytes=run.peak_queue_bytes,
        ))
    return EcnSweep(
        n_senders=n_senders,
        bytes_per_sender=bytes_per_sender,
        points=tuple(points),
    )


# -------------------------------------------------------------- cc_incast


@dataclass(frozen=True)
class IncastCollapseStudy:
    """cc_incast: goodput vs fan-in N for each variant."""

    fan_in: tuple[int, ...]
    bytes_per_sender: float
    runs: tuple[IncastRunResult, ...]

    #: Fan-in at which collapse can manifest: below this the burst fits
    #: the buffer and low ratios only measure slow-start overhead.
    COLLAPSE_REGION_MIN_N = 8

    def curve(self, variant: str) -> list[IncastRunResult]:
        """The goodput-vs-N curve of one variant, in fan-in order."""
        return sorted(
            (r for r in self.runs if r.variant == variant),
            key=lambda r: r.n_senders,
        )

    def _region_min(self, variant: str) -> float:
        region = [
            r.goodput_ratio
            for r in self.curve(variant)
            if r.n_senders >= self.COLLAPSE_REGION_MIN_N
        ]
        return min(region) if region else min(
            r.goodput_ratio for r in self.curve(variant)
        )

    @property
    def dctcp_min_goodput_ratio(self) -> float:
        """Worst DCTCP goodput ratio in the collapse region (stays high)."""
        return self._region_min("dctcp")

    @property
    def reno_min_goodput_ratio(self) -> float:
        """Worst Reno goodput ratio in the collapse region (collapses)."""
        return self._region_min("reno")

    @property
    def collapse_margin(self) -> float:
        """How much goodput DCTCP preserves over Reno at their worst."""
        return self.dctcp_min_goodput_ratio - self.reno_min_goodput_ratio

    def rows(self) -> list[Row]:
        """Summary table."""
        rows = []
        for variant in VARIANTS:
            curve = self.curve(variant)
            region = [
                r for r in curve
                if r.n_senders >= self.COLLAPSE_REGION_MIN_N
            ] or curve
            worst = min(region, key=lambda r: r.goodput_ratio)
            timeouts = sum(r.timeouts for r in curve)
            rows.append(Row(
                f"{variant}: worst goodput ratio",
                "dctcp high, reno collapses",
                f"{worst.goodput_ratio:.3f} at N={worst.n_senders} "
                f"({timeouts:.0f} RTOs)",
            ))
        rows.append(Row("dctcp - reno margin at worst", "large",
                        f"{self.collapse_margin:.3f}"))
        return rows


def _summarise_incast(result: IncastCollapseStudy) -> dict[str, float]:
    out = {
        "dctcp_min_goodput_ratio": result.dctcp_min_goodput_ratio,
        "reno_min_goodput_ratio": result.reno_min_goodput_ratio,
        "collapse_margin": result.collapse_margin,
    }
    for run in result.runs:
        key = f"{run.variant}.n{run.n_senders}"
        out[f"{key}.goodput_ratio"] = run.goodput_ratio
        out[f"{key}.timeouts"] = run.timeouts
    return out


@experiment("cc_incast", figure="C3", title="incast collapse vs fan-in",
            kind="ablation", summarise=_summarise_incast)
def run_incast_collapse(
    seed: int = 0,
    fan_in: tuple[int, ...] = INCAST_FAN_IN,
    bytes_per_sender: float = 256_000.0,
) -> IncastCollapseStudy:
    """Sweep fan-in N for every variant over the synchronized incast.

    Deterministic; ``seed`` is the uniform ablation convention.
    """
    runs = []
    for variant in VARIANTS:
        for n in fan_in:
            runs.append(run_incast(
                variant, n, bytes_per_sender=bytes_per_sender,
            ))
    return IncastCollapseStudy(
        fan_in=tuple(sorted(fan_in)),
        bytes_per_sender=bytes_per_sender,
        runs=tuple(runs),
    )
