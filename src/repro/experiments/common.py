"""Shared experiment infrastructure: standard configs and memoised datasets.

Every figure reproduction runs against the same simulated measurement
campaign (one cluster, one multi-day workload), exactly as the paper's
figures all come from one instrumented cluster.  ``build_dataset``
memoises the expensive artefacts (simulation, flow reconstruction, TM
series, utilisation matrices) per configuration so a benchmark session
pays for the campaign once.

Scale notes (recorded in EXPERIMENTS.md): the production cluster is
~1500 servers measured over months; the standard campaign here is 150
servers over eight scaled "days" of 200 s each.  Sizes, rates and
capacities are scaled together so that the *shape* statistics (locality,
tails, churn, estimator orderings) are preserved.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..cluster.routing import bisection_bandwidth
from ..cluster.topology import ClusterSpec
from ..config import SimulationConfig
from ..core.flows import FlowTable, reconstruct_flows
from ..core.traffic_matrix import TrafficMatrixSeries, tm_series_from_events
from ..simulation.simulator import SimulationResult, simulate
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..util.units import GBPS
from ..workload.generator import WorkloadConfig
from .cache import DatasetDiskCache, LRUCache, config_fingerprint

__all__ = [
    "ExperimentDataset",
    "standard_config",
    "small_config",
    "build_dataset",
    "dataset_from_trace",
    "clear_dataset_cache",
    "set_dataset_cache_limit",
    "dataset_cache_stats",
    "DAY_LENGTH",
    "NUM_DAYS",
]

#: One scaled "day" of the standard campaign, seconds.
DAY_LENGTH = 150.0
#: The Fig 8 study covers eight days (5-12 Jan in the paper).
NUM_DAYS = 8

#: Relative load per day: busy weekdays, a light weekend (days 5-6,
#: matching the paper's 10-11 Jan), then a normal Monday.
_DAY_LOAD = (1.1, 1.0, 1.25, 0.95, 1.15, 0.40, 0.35, 1.05)


def standard_config(seed: int = 42) -> SimulationConfig:
    """The standard measurement campaign: 96 servers over 8 scaled days.

    The ToR uplinks are ~3:1 oversubscribed (8 × 1 Gbps servers behind
    2.5 Gbps), typical of the paper's era and necessary for hot-spots to
    be *possible* at all.  The size is chosen so a full campaign builds
    in a couple of minutes; scaling up (e.g. 150 servers, longer days)
    sharpens the statistics without changing their shape.
    """
    return SimulationConfig(
        cluster=ClusterSpec(
            racks=12,
            servers_per_rack=8,
            racks_per_vlan=4,
            external_hosts=3,
            tor_uplink_capacity=2.5 * GBPS,
            agg_uplink_capacity=8 * GBPS,
        ),
        workload=WorkloadConfig(
            job_arrival_rate=0.30,
            evacuation_rate=0.002,
            ingestion_rate=0.005,
            day_load_factors=_DAY_LOAD,
            day_length=DAY_LENGTH,
        ),
        duration=NUM_DAYS * DAY_LENGTH,
        seed=seed,
    )


def small_config(seed: int = 7) -> SimulationConfig:
    """A small, fast campaign for tests and quick demos (under ~15 s)."""
    return SimulationConfig(
        cluster=ClusterSpec(
            racks=6,
            servers_per_rack=8,
            racks_per_vlan=3,
            external_hosts=2,
            tor_uplink_capacity=2.5 * GBPS,
            agg_uplink_capacity=6 * GBPS,
        ),
        workload=WorkloadConfig(
            job_arrival_rate=0.3,
            evacuation_rate=0.006,
            day_load_factors=(1.0, 0.5),
            day_length=120.0,
        ),
        duration=240.0,
        seed=seed,
    )


@dataclass
class ExperimentDataset:
    """Everything the figure analyses need, computed once per config."""

    config: SimulationConfig
    result: SimulationResult
    flows: FlowTable
    #: Server-level TM series at a 10 s window (Figs 2-4, 10).
    tm10: TrafficMatrixSeries
    #: Per-link utilisation at 1 s bins, indexed by topology link id.
    utilization: np.ndarray
    #: Inter-switch link ids (the observable/congestion-study links).
    observed_links: np.ndarray
    bisection: float
    extras: dict = field(default_factory=dict)

    @property
    def observed_utilization(self) -> np.ndarray:
        """Utilisation restricted to inter-switch links."""
        return self.utilization[self.observed_links]

    @property
    def day_length(self) -> float:
        """Length of one simulated day."""
        return self.config.workload.day_length


#: In-memory dataset cache: content-addressed, bounded, LRU-evicted so
#: parameter sweeps and ablations do not grow memory without limit.
#: ``REPRO_DATASET_CACHE_SIZE`` overrides the default bound.
_CACHE: LRUCache = LRUCache(
    limit=max(1, int(os.environ.get("REPRO_DATASET_CACHE_SIZE", "8")))
)

#: Environment switch for the default disk-cache behaviour.
_DISK_CACHE_ENV = "REPRO_DISK_CACHE"


def set_dataset_cache_limit(limit: int) -> int:
    """Bound the in-memory dataset cache; returns the previous limit."""
    previous = _CACHE.limit
    _CACHE.set_limit(limit)
    return previous


def dataset_cache_stats() -> dict:
    """Size, bound and lifetime eviction count of the in-memory cache."""
    return {
        "size": len(_CACHE),
        "limit": _CACHE.limit,
        "evictions": _CACHE.evictions,
    }


def _disk_cache_enabled(disk_cache: bool | None, cache_dir) -> bool:
    if disk_cache is not None:
        return disk_cache
    if cache_dir is not None:
        return True
    return os.environ.get(_DISK_CACHE_ENV, "0").lower() in ("1", "true", "yes", "on")


def build_dataset(
    config: SimulationConfig | None = None,
    telemetry: Telemetry | None = None,
    heartbeat=None,
    heartbeat_interval: float | None = None,
    *,
    disk_cache: bool | None = None,
    cache_dir=None,
) -> ExperimentDataset:
    """Run (or fetch the cached) campaign for a configuration.

    Lookups go memory first (a bounded LRU keyed by
    :func:`~repro.experiments.cache.config_fingerprint`, a content hash
    of the full config tree), then — when ``disk_cache`` is enabled — the
    persistent :class:`~repro.experiments.cache.DatasetDiskCache`, so a
    cold process reuses a prior campaign instead of re-simulating it.
    ``disk_cache=None`` defers to the ``REPRO_DISK_CACHE`` environment
    switch unless ``cache_dir`` is given (which implies the disk layer).

    With a :class:`~repro.telemetry.Telemetry` session attached, each
    build stage gets its own span and cache traffic is counted
    (``dataset.cache_hits`` / ``dataset.cache_misses`` for the memory
    layer, ``dataset.disk_cache_hits`` / ``dataset.disk_cache_misses``
    for the disk layer, ``dataset.cache_evictions`` for LRU pressure).
    ``heartbeat`` and ``heartbeat_interval`` are forwarded to
    :func:`~repro.simulation.simulator.simulate` for progress reporting.
    """
    tele = telemetry or NULL_TELEMETRY
    # Resolve both counters up front so every manifest reports the pair,
    # zeros included.
    cache_hits = tele.counter("dataset.cache_hits")
    cache_misses = tele.counter("dataset.cache_misses")
    evictions = tele.counter("dataset.cache_evictions")
    if config is None:
        config = standard_config()
    key = config_fingerprint(config)
    disk = (
        DatasetDiskCache(cache_dir)
        if _disk_cache_enabled(disk_cache, cache_dir)
        else None
    )
    cached = _CACHE.get(key)
    if cached is not None:
        cache_hits.inc()
        if disk is not None and not disk.entry_dir(key).exists():
            # Backfill: the campaign predates this disk layer, but later
            # cold processes should still find it.
            with tele.span("build_dataset.disk_store"):
                disk.store(key, cached)
        return cached
    cache_misses.inc()
    if disk is not None:
        loaded = disk.load(key)
        if loaded is not None:
            tele.counter("dataset.disk_cache_hits").inc()
            _cache_insert(key, loaded, evictions)
            return loaded
        tele.counter("dataset.disk_cache_misses").inc()
    with tele.span("build_dataset", seed=config.seed, duration=config.duration):
        with tele.span("build_dataset.simulate"):
            result = simulate(
                config,
                telemetry=telemetry,
                heartbeat=heartbeat,
                heartbeat_interval=heartbeat_interval,
            )
        with tele.span("build_dataset.reconstruct_flows") as span:
            flows = reconstruct_flows(result.socket_log)
            span.set(num_flows=len(flows))
        with tele.span("build_dataset.tm_series"):
            tm10 = tm_series_from_events(
                result.socket_log, result.topology, window=10.0,
                duration=config.duration,
            )
        with tele.span("build_dataset.utilization"):
            utilization = result.link_loads.utilization_matrix()
    observed = np.array(
        [link.link_id for link in result.topology.inter_switch_links()], dtype=int
    )
    dataset = ExperimentDataset(
        config=config,
        result=result,
        flows=flows,
        tm10=tm10,
        utilization=utilization,
        observed_links=observed,
        bisection=bisection_bandwidth(result.topology),
    )
    if disk is not None:
        with tele.span("build_dataset.disk_store"):
            disk.store(key, dataset)
    _cache_insert(key, dataset, evictions)
    return dataset


def dataset_from_trace(
    path,
    telemetry: Telemetry | None = None,
    jobs: int = 1,
) -> ExperimentDataset:
    """Build an :class:`ExperimentDataset` from a recorded trace.

    The flows, TM series and utilisation come from one streaming pass
    (:func:`~repro.trace.analyze.analyze_trace`; ``jobs > 1`` fans the
    chunks across processes), so they equal what :func:`build_dataset`
    computes for the same campaign — without ever materialising the
    event log.  The embedded :class:`SimulationResult` is a shell: the
    socket log is empty (it lives on disk), the transfer list and
    application log were not persisted, and the workload config carries
    only the recorded ``day_length`` — the manifest's
    ``config_fingerprint`` is the full-config provenance.
    """
    from ..cluster.routing import Router
    from ..cluster.topology import ClusterTopology
    from ..instrumentation.applog import ApplicationLog
    from ..instrumentation.events import SocketEventLog
    from ..trace.analyze import analyze_trace
    from ..trace.reader import TraceReader

    tele = telemetry or NULL_TELEMETRY
    reader = TraceReader(path)
    meta = reader.meta
    spec = ClusterSpec(**meta["cluster_spec"])
    topology = ClusterTopology(spec)
    duration = float(meta.get("duration", reader.time_span()[1]))
    config = SimulationConfig(
        cluster=spec,
        workload=WorkloadConfig(day_length=float(meta.get("day_length", 300.0))),
        duration=duration,
        seed=int(meta.get("seed", 0)),
    )
    with tele.span("dataset_from_trace", path=str(path), rows=reader.total_rows):
        analysis = analyze_trace(path, jobs=jobs, window=10.0, telemetry=telemetry)
        loads = reader.linkloads()
        if loads is None:
            raise ValueError(f"trace has no recorded link loads: {path}")
        utilization = loads.utilization_matrix()
    empty_log = SocketEventLog()
    empty_log.finalize()
    result = SimulationResult(
        config=config,
        topology=topology,
        router=Router(topology),
        socket_log=empty_log,
        applog=ApplicationLog(),
        link_loads=loads,
        transfers=[],
        jobs={},
        duration=duration,
        stats={"socket_events": float(reader.total_rows)},
    )
    return ExperimentDataset(
        config=config,
        result=result,
        flows=analysis.flows,
        tm10=analysis.tm,
        utilization=utilization,
        observed_links=np.asarray(loads.observed_links, dtype=int),
        bisection=bisection_bandwidth(topology),
        extras={"trace_path": str(path), "flow_stats": analysis.flow_stats},
    )


def _cache_insert(key: str, dataset: ExperimentDataset, eviction_counter) -> None:
    before = _CACHE.evictions
    _CACHE.put(key, dataset)
    evicted = _CACHE.evictions - before
    if evicted:
        eviction_counter.inc(evicted)


def clear_dataset_cache() -> None:
    """Drop all in-memory datasets (the disk layer is untouched)."""
    _CACHE.clear()
