"""Extension E1 — the §5.3 future work: a role-aware tomography prior.

The paper attributes the job prior's marginal gains to "nodes in a job
assuming different roles over time" and proposes incorporating role
information as future work.  This experiment does so: it compares, per
TM window, tomogravity under (i) the plain gravity prior, (ii) the
symmetric job-co-location prior, and (iii) the directional
producer→consumer role prior of :mod:`repro.tomography.roleprior`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.routing import tor_routing_matrix
from ..core.traffic_matrix import server_tm_to_tor_tm
from ..tomography.gravity import gravity_prior_for_pairs
from ..tomography.jobprior import job_affinity_matrix, job_aware_prior
from ..tomography.metrics import rmsre
from ..tomography.roleprior import role_affinity_matrix, role_aware_prior
from ..tomography.tomogravity import tomogravity_estimate
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["RolePriorStudy", "run"]


@dataclass(frozen=True)
class RolePriorStudy:
    """Per-window RMSRE of the three priors."""

    gravity_errors: np.ndarray
    job_errors: np.ndarray
    role_errors: np.ndarray

    def median(self, which: str) -> float:
        """Median RMSRE for one prior ('gravity', 'job' or 'role')."""
        errors = {
            "gravity": self.gravity_errors,
            "job": self.job_errors,
            "role": self.role_errors,
        }[which]
        return float(np.median(errors)) if errors.size else float("nan")

    @property
    def role_beats_job_fraction(self) -> float:
        """Fraction of windows where the role prior beats the job prior."""
        if self.role_errors.size == 0:
            return float("nan")
        return float((self.role_errors < self.job_errors).mean())

    def rows(self) -> list[Row]:
        """Summary table."""
        return [
            Row("median RMSRE, gravity prior", "60% (paper Fig 12)",
                f"{self.median('gravity'):.0%}"),
            Row("median RMSRE, job prior (§5.3)", "only marginally better",
                f"{self.median('job'):.0%}"),
            Row("median RMSRE, role prior (future work)",
                "paper: expected to help further",
                f"{self.median('role'):.0%}"),
            Row("windows where role beats job prior", "(new result)",
                f"{self.role_beats_job_fraction:.0%}"),
        ]


@experiment("ext_roleprior", figure="ext", title="role-aware tomography prior")
def run(
    dataset: ExperimentDataset | None = None,
    window: float = 100.0,
    strength: float = 1.0,
) -> RolePriorStudy:
    """Run the role-prior comparison over a campaign's TM windows."""
    if dataset is None:
        dataset = build_dataset()
    topology = dataset.result.topology
    routing, pairs, _ = tor_routing_matrix(topology)
    factor = max(1, int(round(window / dataset.tm10.window)))
    series = dataset.tm10.aggregate(factor)
    applog = dataset.result.applog

    totals = series.totals_per_window()
    busy = np.flatnonzero(totals > 0.05 * totals.mean()) if totals.size else []
    gravity_errors, job_errors, role_errors = [], [], []
    for index in busy:
        tor_tm = server_tm_to_tor_tm(series.matrices[index], topology,
                                     series.endpoint_ids)
        truth = np.array([tor_tm[i, j] for i, j in pairs])
        if truth.sum() <= 0:
            continue
        counts = routing @ truth
        out_totals = tor_tm.sum(axis=1)
        in_totals = tor_tm.sum(axis=0)
        start = index * series.window
        end = start + series.window

        prior = gravity_prior_for_pairs(out_totals, in_totals, pairs)
        gravity_error = rmsre(truth, tomogravity_estimate(routing, counts, prior))

        symmetric = job_aware_prior(
            out_totals, in_totals,
            job_affinity_matrix(applog, topology, start, end),
            strength=strength,
        )
        job_vec = np.array([symmetric[i, j] for i, j in pairs])
        job_error = rmsre(truth, tomogravity_estimate(routing, counts, job_vec))

        directional = role_aware_prior(
            out_totals, in_totals,
            role_affinity_matrix(applog, topology, start, end),
            strength=strength,
        )
        role_vec = np.array([directional[i, j] for i, j in pairs])
        role_error = rmsre(truth, tomogravity_estimate(routing, counts, role_vec))

        if all(np.isfinite(e) for e in (gravity_error, job_error, role_error)):
            gravity_errors.append(gravity_error)
            job_errors.append(job_error)
            role_errors.append(role_error)

    return RolePriorStudy(
        gravity_errors=np.asarray(gravity_errors),
        job_errors=np.asarray(job_errors),
        role_errors=np.asarray(role_errors),
    )
