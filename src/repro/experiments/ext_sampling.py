"""Extension E2 — why the paper chose socket logs over sampled NetFlow.

Paper §2 weighs three instrumentation options and picks server-side
socket-level logging.  This experiment measures what the rejected
packet-sampling option would have seen on the same campaign: at the
1-in-N rates switches sustain, most of the (short, small) flows that
dominate datacenter traffic produce zero samples, so Fig 9's
distributions — and anything built on them — would be unobtainable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..instrumentation.sampling import sampling_bias_report
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["SamplingStudy", "run", "DEFAULT_RATES"]

#: Sampling rates to sweep: 1-in-100 through 1-in-10000 (typical switch
#: configurations of the paper's era and today).
DEFAULT_RATES = (1e-2, 1e-3, 1e-4)


@dataclass(frozen=True)
class SamplingStudy:
    """Per-rate sampling bias reports plus the exact-view baseline."""

    reports: list[dict]

    def detected_fraction(self, rate: float) -> float:
        """Fraction of flows detected at a sampling rate."""
        for report in self.reports:
            if report["sampling_rate"] == rate:
                return report["detected_fraction"]
        raise KeyError(f"no report for rate {rate}")

    def rows(self) -> list[Row]:
        """Summary table."""
        rows = []
        for report in self.reports:
            rate = report["sampling_rate"]
            rows.append(
                Row(
                    f"flows detected at 1-in-{round(1 / rate)} sampling",
                    "short flows invisible (why §2 rejects sampling)",
                    f"{report['detected_fraction']:.1%} of "
                    f"{report['true_flows']:.0f}",
                )
            )
            rows.append(
                Row(
                    f"  total-bytes estimate accuracy at 1-in-{round(1 / rate)}",
                    "volume estimable, flow detail not",
                    f"{report['estimated_total_bytes'] / report['true_total_bytes']:.2f}x "
                    f"of truth",
                )
            )
        return rows


def _summarise(study: SamplingStudy) -> dict[str, float]:
    # One row per swept rate: flatten the per-rate report dicts.
    out: dict[str, float] = {}
    for report in study.reports:
        denominator = round(1.0 / report["sampling_rate"])
        for key in ("detected_fraction", "seen_flows", "seen_frac_under_10s"):
            value = float(report[key])
            if np.isfinite(value):
                out[f"{key}@1in{denominator}"] = value
    return out


@experiment("ext_sampling", figure="ext", title="packet-sampling bias",
            summarise=_summarise)
def run(
    dataset: ExperimentDataset | None = None,
    rates: tuple[float, ...] = DEFAULT_RATES,
    seed: int = 1234,
) -> SamplingStudy:
    """Sweep packet-sampling rates over the campaign's flow table."""
    if dataset is None:
        dataset = build_dataset()
    rng = np.random.default_rng(seed)
    reports = [
        sampling_bias_report(dataset.flows, rate, rng) for rate in rates
    ]
    return SamplingStudy(reports=reports)
