"""Experiment F2 — Fig 2: the work-seeks-bandwidth / scatter-gather TM.

The paper's Fig 2 plots ``ln(bytes)`` exchanged between server pairs in a
representative 10 s period: dense blocks around the diagonal (in-rack
exchanges), horizontal/vertical lines (scatter-gather), and a sparse far
corner (external hosts).  This experiment picks a representative busy
window from the standard campaign, summarises the same structure
quantitatively, and renders the heatmap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import PatternSummary, pattern_summary
from ..viz.figures import figure2_heatmap
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row, format_table

__all__ = ["Fig02Result", "run"]


@dataclass(frozen=True)
class Fig02Result:
    """Representative-window TM and its pattern decomposition."""

    window_index: int
    window_start: float
    tm: np.ndarray
    summary: PatternSummary
    full_span_summary: PatternSummary
    #: In-rack byte share relative to a uniform spread: with ``r`` servers
    #: per rack out of ``n``, uniform traffic puts ``(r-1)/(n-1)`` of
    #: bytes in-rack; work-seeks-bandwidth multiplies that severalfold.
    locality_amplification: float

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        s = self.summary
        return [
            Row("in-rack byte share (10 s window)",
                "dense diagonal blocks carry a large chunk",
                f"{s.in_rack_byte_fraction:.1%}"),
            Row("cross-rack byte share", "scatter-gather lines",
                f"{s.cross_rack_byte_fraction:.1%}"),
            Row("external byte share", "sparse far corner",
                f"{s.external_byte_fraction:.1%}"),
            Row("servers in scatter/gather roles", "visible lines",
                f"{s.scatter_gather_server_count}"),
            Row("in-rack/cross-rack locality ratio vs uniform",
                "well above uniform spread",
                f"{self.locality_amplification:.1f}x"),
        ]

    def render(self) -> str:
        """ASCII heatmap plus the summary table."""
        heatmap = figure2_heatmap(self.tm)
        table = format_table("F2 summary", self.rows())
        return f"{heatmap}\n\n{table}"


@experiment("fig02", figure="Fig 2", title="work-seeks-bandwidth / scatter-gather TM")
def run(dataset: ExperimentDataset | None = None) -> Fig02Result:
    """Reproduce Fig 2 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    series = dataset.tm10
    totals = series.totals_per_window()
    # Representative window: the busiest-but-not-extreme one (80th pct).
    if totals.size == 0 or totals.max() <= 0:
        raise RuntimeError("campaign produced no traffic")
    cutoff = np.percentile(totals[totals > 0], 80)
    candidates = np.flatnonzero(totals >= cutoff)
    window = int(candidates[len(candidates) // 2])
    tm = series.matrices[window]
    topology = dataset.result.topology
    summary = pattern_summary(tm, topology, series.endpoint_ids)
    full = pattern_summary(series.total(), topology, series.endpoint_ids)
    spec = topology.spec
    uniform_share = max(spec.servers_per_rack - 1, 1) / max(topology.num_servers - 1, 1)
    amplification = (
        summary.in_rack_byte_fraction / uniform_share if uniform_share else float("nan")
    )
    return Fig02Result(
        window_index=window,
        window_start=window * series.window,
        tm=tm,
        summary=summary,
        full_span_summary=full,
        locality_amplification=amplification,
    )
