"""Experiment F3 — Fig 3: bytes exchanged between server pairs.

Paper headline: non-zero TM entries are heavy-tailed over roughly
``[e^4, e^20]`` bytes, in-rack pairs skew larger, and the zero
probabilities differ sharply — "the probability of exchanging no traffic
is 89% for server pairs that belong to the same rack and 99.5% for pairs
that are in different racks".

Pair statistics are computed per 10 s window (Fig 2's time-scale) and
pooled across the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import pair_byte_stats
from ..util.stats import Ecdf, ecdf
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig03Result", "run"]


@dataclass(frozen=True)
class Fig03Result:
    """Pooled pair-byte distributions and zero probabilities."""

    in_rack_log_bytes: np.ndarray
    cross_rack_log_bytes: np.ndarray
    prob_zero_in_rack: float
    prob_zero_cross_rack: float
    window: float

    def in_rack_ecdf(self) -> Ecdf:
        """ECDF of ln(bytes) for non-zero in-rack pairs."""
        return ecdf(self.in_rack_log_bytes)

    def cross_rack_ecdf(self) -> Ecdf:
        """ECDF of ln(bytes) for non-zero cross-rack pairs."""
        return ecdf(self.cross_rack_log_bytes)

    @property
    def log_range(self) -> tuple[float, float]:
        """Observed range of ln(bytes) over non-zero pairs."""
        pooled = np.concatenate([self.in_rack_log_bytes, self.cross_rack_log_bytes])
        if pooled.size == 0:
            return (float("nan"), float("nan"))
        return (float(pooled.min()), float(pooled.max()))

    @property
    def in_rack_median_log(self) -> float:
        """Median ln(bytes) of non-zero in-rack pairs."""
        return float(np.median(self.in_rack_log_bytes)) if self.in_rack_log_bytes.size else float("nan")

    @property
    def cross_rack_median_log(self) -> float:
        """Median ln(bytes) of non-zero cross-rack pairs."""
        return float(np.median(self.cross_rack_log_bytes)) if self.cross_rack_log_bytes.size else float("nan")

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        low, high = self.log_range
        return [
            Row("P(no traffic), in-rack pair", "89%",
                f"{self.prob_zero_in_rack:.1%}"),
            Row("P(no traffic), cross-rack pair", "99.5%",
                f"{self.prob_zero_cross_rack:.2%}"),
            Row("ln(bytes) range of non-zero pairs", "~[4, 20]",
                f"[{low:.1f}, {high:.1f}]"),
            Row("median ln(bytes), in-rack vs cross-rack",
                "in-rack pairs exchange more",
                f"{self.in_rack_median_log:.1f} vs {self.cross_rack_median_log:.1f}"),
        ]


@experiment("fig03", figure="Fig 3", title="bytes exchanged between server pairs")
def run(dataset: ExperimentDataset | None = None) -> Fig03Result:
    """Reproduce Fig 3 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    series = dataset.tm10
    topology = dataset.result.topology
    in_logs: list[np.ndarray] = []
    cross_logs: list[np.ndarray] = []
    zero_in: list[float] = []
    zero_cross: list[float] = []
    for window in range(series.num_windows):
        stats = pair_byte_stats(series.matrices[window], topology, series.endpoint_ids)
        if stats.in_rack_log_bytes.size:
            in_logs.append(stats.in_rack_log_bytes)
        if stats.cross_rack_log_bytes.size:
            cross_logs.append(stats.cross_rack_log_bytes)
        zero_in.append(stats.prob_zero_in_rack)
        zero_cross.append(stats.prob_zero_cross_rack)
    return Fig03Result(
        in_rack_log_bytes=(
            np.concatenate(in_logs) if in_logs else np.empty(0)
        ),
        cross_rack_log_bytes=(
            np.concatenate(cross_logs) if cross_logs else np.empty(0)
        ),
        prob_zero_in_rack=float(np.mean(zero_in)) if zero_in else 1.0,
        prob_zero_cross_rack=float(np.mean(zero_cross)) if zero_cross else 1.0,
        window=series.window,
    )
