"""Experiment F4 — Fig 4: how many other servers a server talks to.

Paper headline: per window, "a server either talks to almost all the
other servers within the rack or it talks to fewer than 25% of servers
within the rack.  Further, a server either doesn't talk to servers
outside its rack or it talks to about 1-10% of outside servers.  The
median numbers of correspondents for a server are two (other) servers
within its rack and four servers outside the rack."

Correspondent counts are computed per 10 s window over servers with any
traffic and pooled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import correspondent_stats
from ..util.stats import Ecdf, ecdf
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig04Result", "run"]


@dataclass(frozen=True)
class Fig04Result:
    """Pooled correspondent-count distributions."""

    in_rack_fractions: np.ndarray
    cross_rack_fractions: np.ndarray
    in_rack_counts: np.ndarray
    cross_rack_counts: np.ndarray
    window: float

    def in_rack_ecdf(self) -> Ecdf:
        """ECDF of the in-rack correspondent fraction (Fig 4 left)."""
        return ecdf(self.in_rack_fractions)

    def cross_rack_ecdf(self) -> Ecdf:
        """ECDF of the cross-rack correspondent fraction (Fig 4 right)."""
        return ecdf(self.cross_rack_fractions)

    @property
    def median_in_rack(self) -> float:
        """Median in-rack correspondents (active servers, pooled windows)."""
        return float(np.median(self.in_rack_counts)) if self.in_rack_counts.size else 0.0

    @property
    def median_cross_rack(self) -> float:
        """Median cross-rack correspondents."""
        return float(np.median(self.cross_rack_counts)) if self.cross_rack_counts.size else 0.0

    @property
    def frac_talking_to_most_of_rack(self) -> float:
        """Fraction of (server, window) samples talking to >=75% of the rack."""
        if self.in_rack_fractions.size == 0:
            return 0.0
        return float((self.in_rack_fractions >= 0.75).mean())

    @property
    def frac_silent_outside_rack(self) -> float:
        """Fraction of samples with zero cross-rack correspondents."""
        if self.cross_rack_fractions.size == 0:
            return 1.0
        return float((self.cross_rack_fractions == 0).mean())

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        return [
            Row("median in-rack correspondents", "2",
                f"{self.median_in_rack:.0f}"),
            Row("median cross-rack correspondents", "4",
                f"{self.median_cross_rack:.0f}"),
            Row("samples talking to most (>=75%) of rack",
                "bump near 1 (bimodal)",
                f"{self.frac_talking_to_most_of_rack:.1%}"),
            Row("samples silent outside rack", "spike at zero",
                f"{self.frac_silent_outside_rack:.1%}"),
        ]


@experiment("fig04", figure="Fig 4", title="correspondent counts")
def run(dataset: ExperimentDataset | None = None) -> Fig04Result:
    """Reproduce Fig 4 from a (memoised) campaign dataset.

    Only servers that exchanged *any* traffic in a window contribute that
    window's sample (an idle server has no correspondents to count).
    """
    if dataset is None:
        dataset = build_dataset()
    series = dataset.tm10
    topology = dataset.result.topology
    in_fracs: list[np.ndarray] = []
    cross_fracs: list[np.ndarray] = []
    in_counts: list[np.ndarray] = []
    cross_counts: list[np.ndarray] = []
    for window in range(series.num_windows):
        stats = correspondent_stats(series.matrices[window], topology,
                                    series.endpoint_ids)
        active = (stats.in_rack_counts + stats.cross_rack_counts) > 0
        if not active.any():
            continue
        in_fracs.append(stats.in_rack_fraction[active])
        cross_fracs.append(stats.cross_rack_fraction[active])
        in_counts.append(stats.in_rack_counts[active])
        cross_counts.append(stats.cross_rack_counts[active])
    empty = np.empty(0)
    return Fig04Result(
        in_rack_fractions=np.concatenate(in_fracs) if in_fracs else empty,
        cross_rack_fractions=np.concatenate(cross_fracs) if cross_fracs else empty.copy(),
        in_rack_counts=np.concatenate(in_counts) if in_counts else empty.copy(),
        cross_rack_counts=np.concatenate(cross_counts) if cross_counts else empty.copy(),
        window=series.window,
    )
