"""Experiment F5 — Fig 5: when and where congestion happens.

Paper headline: "Highly utilized links happen often!  Among the
inter-switch links that carry the traffic of the monitored machines, 86%
of the links observe congestion lasting at least 10 seconds and 15%
observe congestion lasting at least 100 seconds.  Short congestion
periods are highly correlated across many tens of links ... long lasting
congestion periods tend to be more localized to a small set of links."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.congestion import CongestionSummary, congestion_summary, simultaneous_hot_links
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig05Result", "run"]


@dataclass(frozen=True)
class Fig05Result:
    """Link-level congestion coverage and cross-link correlation."""

    summary: CongestionSummary
    #: Per-second count of simultaneously hot observed links.
    simultaneous: np.ndarray
    #: Number of distinct links involved in long (>=100 s) episodes.
    links_with_long_episodes: int
    threshold: float

    @property
    def peak_simultaneous(self) -> int:
        """Largest number of links hot in the same second."""
        return int(self.simultaneous.max()) if self.simultaneous.size else 0

    @property
    def frac_links_hot_10s(self) -> float:
        """Fraction of observed links with a >=10 s hot run."""
        return self.summary.frac_links_hot_at_least_10s

    @property
    def frac_links_hot_100s(self) -> float:
        """Fraction of observed links with a >=100 s hot run."""
        return self.summary.frac_links_hot_at_least_100s

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        return [
            Row("links with congestion >= 10 s", "86%",
                f"{self.frac_links_hot_10s:.1%}"),
            Row("links with congestion >= 100 s", "15%",
                f"{self.frac_links_hot_100s:.1%}"),
            Row("peak simultaneously hot links",
                "short periods correlated across many tens of links",
                f"{self.peak_simultaneous}"),
            Row("links involved in >=100 s episodes",
                "long congestion localized to a small set",
                f"{self.links_with_long_episodes}"),
        ]


@experiment("fig05", figure="Fig 5", title="when and where congestion happens")
def run(
    dataset: ExperimentDataset | None = None, threshold: float | None = None
) -> Fig05Result:
    """Reproduce Fig 5.  ``threshold`` defaults to the campaign's C=70%;
    the paper notes 90%/95% give qualitatively similar results, which the
    threshold-sweep test checks."""
    if dataset is None:
        dataset = build_dataset()
    if threshold is None:
        threshold = dataset.config.congestion_threshold
    observed = dataset.observed_utilization
    summary = congestion_summary(
        observed, threshold=threshold, link_ids=dataset.observed_links
    )
    simultaneous = simultaneous_hot_links(observed, threshold=threshold)
    long_links = len(
        {episode.link_id for episode in summary.episodes if episode.duration >= 100.0}
    )
    return Fig05Result(
        summary=summary,
        simultaneous=simultaneous,
        links_with_long_episodes=long_links,
        threshold=threshold,
    )
