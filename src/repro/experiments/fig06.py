"""Experiment F6 — Fig 6: lengths of congestion episodes.

Paper headline: "most periods of congestion tend to be short-lived.  Of
all congestion events that are more than one second long, over 90% are
no longer than ten seconds, but long epochs of congestion exist — in one
day's worth of data, there were 665 unique episodes of congestion that
each lasted more than 10s ... and the longest lasted for 382 seconds."

Episode counts scale with campaign size, so the count is reported per
simulated day alongside the raw number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.congestion import CongestionSummary, congestion_summary
from ..util.stats import Ecdf
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig06Result", "run"]


@dataclass(frozen=True)
class Fig06Result:
    """Congestion episode duration distribution."""

    summary: CongestionSummary
    num_days: float

    def episode_ecdf(self) -> Ecdf:
        """ECDF of episode durations >= 1 s (Fig 6's x-axis)."""
        return self.summary.episode_duration_ecdf(min_duration=1.0)

    @property
    def frac_short(self) -> float:
        """Fraction of >=1 s episodes lasting <= 10 s."""
        return self.summary.frac_episodes_at_most(10.0, min_duration=1.0)

    @property
    def episodes_over_10s_per_day(self) -> float:
        """Count of >10 s episodes, normalised per simulated day."""
        if self.num_days <= 0:
            return 0.0
        return self.summary.episodes_over_10s / self.num_days

    @property
    def longest(self) -> float:
        """Longest episode in seconds."""
        return self.summary.longest_episode

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        return [
            Row("episodes (>1 s) lasting <= 10 s", "over 90%",
                f"{self.frac_short:.1%}"),
            Row("episodes > 10 s per day",
                "665 (1500-server day)",
                f"{self.episodes_over_10s_per_day:.1f} "
                f"({self.summary.episodes_over_10s} total)"),
            Row("longest episode", "382 s",
                f"{self.longest:.0f} s"),
            Row("episodes lasting hundreds of seconds exist", "a few",
                f"{sum(1 for e in self.summary.episodes if e.duration >= 100)}"),
        ]


@experiment("fig06", figure="Fig 6", title="congestion episode lengths")
def run(dataset: ExperimentDataset | None = None) -> Fig06Result:
    """Reproduce Fig 6 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    summary = congestion_summary(
        dataset.observed_utilization,
        threshold=dataset.config.congestion_threshold,
        link_ids=dataset.observed_links,
    )
    num_days = dataset.config.duration / dataset.day_length
    return Fig06Result(summary=summary, num_days=num_days)
