"""Experiment F7 — Fig 7: collateral damage to flows under congestion.

Paper headline: "Figure 7 compares the rates of flows that overlap high
utilization periods with the rates of all flows.  From an initial
inspection, it appears as if the rates do not change appreciably" —
i.e. the two CDFs nearly coincide, so rate statistics alone miss the
damage (which Fig 8 finds in the application logs instead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.congestion import VictimFlowComparison, victim_flow_comparison
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig07Result", "run"]


@dataclass(frozen=True)
class Fig07Result:
    """Rates of congestion-overlapping flows vs the population."""

    comparison: VictimFlowComparison
    frac_flows_overlapping: float

    @property
    def median_ratio(self) -> float:
        """median(overlapping rates) / median(all rates)."""
        return self.comparison.median_ratio

    def max_cdf_gap(self, points: int = 50) -> float:
        """Largest vertical gap between the two rate CDFs (a two-sample
        KS-style statistic; small means the curves nearly coincide)."""
        all_rates = self.comparison.all_rates
        overlap = self.comparison.overlapping_rates
        if all_rates.size == 0 or overlap.size == 0:
            return float("nan")
        lo = max(min(all_rates.min(), overlap.min()), 1e-3)
        hi = max(all_rates.max(), overlap.max())
        grid = np.logspace(np.log10(lo), np.log10(hi), points)
        gap = np.abs(
            self.comparison.all_ecdf().evaluate(grid)
            - self.comparison.overlapping_ecdf().evaluate(grid)
        )
        return float(gap.max())

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        return [
            Row("median rate ratio (overlap / all)",
                "~1 (rates do not change appreciably)",
                f"{self.median_ratio:.2f}"),
            Row("max CDF gap between groups", "curves nearly coincide",
                f"{self.max_cdf_gap():.2f}"),
            Row("flows overlapping congestion", "(not reported)",
                f"{self.frac_flows_overlapping:.1%}"),
        ]


@experiment("fig07", figure="Fig 7", title="victim flows")
def run(dataset: ExperimentDataset | None = None) -> Fig07Result:
    """Reproduce Fig 7 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    comparison = victim_flow_comparison(
        dataset.flows,
        dataset.result.router,
        dataset.utilization,
        threshold=dataset.config.congestion_threshold,
    )
    total = len(dataset.flows)
    frac = comparison.overlapping_rates.size / total if total else 0.0
    return Fig07Result(comparison=comparison, frac_flows_overlapping=frac)
