"""Experiment F8 — Fig 8: congestion's impact on job read failures.

Paper headline: "jobs experience a median increase of 1.1x in their
probability of failing to read input(s) if they have flows traversing
high utilization links", measured per day over 5-12 Jan; "the more
prevalent the congestion, the larger the increase and in particular the
days with little increase correspond to a lightly loaded weekend."

The standard campaign replays eight scaled days with a light weekend
(days 5-6), so the analysis can check both the median uplift and the
weekday/weekend contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.impact import ImpactStudy, read_failure_impact
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig08Result", "run", "WEEKEND_DAYS"]

#: Day indices of the campaign's light weekend (see common._DAY_LOAD).
WEEKEND_DAYS = (5, 6)


@dataclass(frozen=True)
class Fig08Result:
    """Per-day read-failure uplift."""

    study: ImpactStudy
    weekend_days: tuple[int, ...]

    @property
    def median_uplift_ratio(self) -> float:
        """Median across days of P(fail | overlap)/P(fail | clear)."""
        return self.study.median_uplift_ratio

    def weekday_weekend_contrast(self) -> tuple[float, float]:
        """(median weekday uplift %, median weekend uplift %)."""
        weekday, weekend = [], []
        for day in self.study.days:
            uplift = day.uplift_percent
            if not np.isfinite(uplift):
                continue
            (weekend if day.day in self.weekend_days else weekday).append(uplift)
        med = lambda xs: float(np.median(xs)) if xs else float("nan")
        return med(weekday), med(weekend)

    @property
    def pooled_uplift_ratio(self) -> float:
        """All-days pooled P(fail | overlap)/P(fail | clear)."""
        return self.study.pooled_uplift_ratio

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        weekday, weekend = self.weekday_weekend_contrast()
        return [
            Row("median daily uplift in P(read failure)", "1.1x",
                f"{self.median_uplift_ratio:.2f}x"),
            Row("pooled uplift (all days)", "well above 1x",
                f"{self.pooled_uplift_ratio:.1f}x"),
            Row("median weekday uplift", "large on congested days",
                f"{weekday:+.0f}%"),
            Row("median weekend uplift", "small on light days",
                f"{weekend:+.0f}%"),
            Row("days analysed", "8 (5-12 Jan)",
                f"{len(self.study.days)}"),
        ]


@experiment("fig08", figure="Fig 8", title="read-failure uplift")
def run(dataset: ExperimentDataset | None = None) -> Fig08Result:
    """Reproduce Fig 8 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    study = read_failure_impact(
        dataset.result.applog,
        dataset.flows,
        dataset.result.router,
        dataset.utilization,
        day_length=dataset.day_length,
        threshold=dataset.config.congestion_threshold,
    )
    return Fig08Result(study=study, weekend_days=WEEKEND_DAYS)
