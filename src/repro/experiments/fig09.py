"""Experiment F9 — Fig 9: flow durations and where the bytes live.

Paper headline: "More than 80% of the flows last less than ten seconds,
fewer than 0.1% last longer than 200s and more than half the bytes are
in flows lasting less than 25s" — so neither centralized per-flow
scheduling nor scheduling only long flows is attractive.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.flow_stats import DurationStats, duration_stats
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig09Result", "run"]


@dataclass(frozen=True)
class Fig09Result:
    """Flow duration distribution and byte weighting."""

    stats: DurationStats

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        s = self.stats
        return [
            Row("flows lasting < 10 s", "more than 80%",
                f"{s.frac_flows_under_10s:.1%}"),
            Row("flows lasting > 200 s", "fewer than 0.1%",
                f"{s.frac_flows_over_200s:.3%}"),
            Row("bytes in flows < 25 s", "more than 50%",
                f"{s.frac_bytes_under_25s:.1%}"),
            Row("flows analysed", "~100 million (a day)",
                f"{s.total_flows}"),
        ]


@experiment("fig09", figure="Fig 9", title="flow durations")
def run(dataset: ExperimentDataset | None = None) -> Fig09Result:
    """Reproduce Fig 9 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    return Fig09Result(stats=duration_stats(dataset.flows))
