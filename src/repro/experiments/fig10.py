"""Experiment F10 — Fig 10: how traffic changes over time.

Paper headline: the aggregate rate "changes quite quickly", spiking past
half the full-duplex bisection bandwidth; and participants churn — the
normalised L1 change between TMs 10 s or 100 s apart has a large median,
"even when the total traffic in the matrix remains the same ... the
server pairs that are involved in these traffic exchanges change
appreciably".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.change import ChurnStats, churn_stats
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig10Result", "run"]


@dataclass(frozen=True)
class Fig10Result:
    """Aggregate-rate series and TM churn at two time-scales."""

    stats: ChurnStats

    @property
    def median_change_10s(self) -> float:
        """Median normalised TM change at tau = 10 s."""
        return self.stats.median_change_short

    @property
    def median_change_100s(self) -> float:
        """Median normalised TM change at tau = 100 s."""
        return self.stats.median_change_long

    def change_percentiles(self, tau: str = "short") -> tuple[float, float]:
        """(10th, 90th) percentile of the normalised change series."""
        series = (
            self.stats.change_short if tau == "short" else self.stats.change_long
        )
        valid = series[~np.isnan(series)]
        if valid.size == 0:
            return (float("nan"), float("nan"))
        return (float(np.percentile(valid, 10)), float(np.percentile(valid, 90)))

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        p10, p90 = self.change_percentiles("short")
        return [
            Row("median TM change over 10 s", "large (tens of %)",
                f"{self.median_change_10s:.0%}"),
            Row("median TM change over 100 s", "similar at both scales",
                f"{self.median_change_100s:.0%}"),
            Row("10th-90th pct change (10 s)", "wide spread",
                f"{p10:.0%} .. {p90:.0%}"),
            Row("peak rate / bisection bandwidth",
                "spikes above half of full-duplex bisection",
                f"{self.stats.peak_over_bisection:.2f}"),
        ]


@experiment("fig10", figure="Fig 10", title="traffic churn")
def run(dataset: ExperimentDataset | None = None) -> Fig10Result:
    """Reproduce Fig 10 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    stats = churn_stats(dataset.tm10, dataset.bisection, long_factor=10)
    return Fig10Result(stats=stats)
