"""Experiment F11 — Fig 11: flow inter-arrival times.

Paper headline: "The inter-arrivals at both servers and top-of-rack
switches have pronounced periodic modes spaced apart by roughly 15ms ...
likely due to the stop-and-go behavior of the application that
rate-limits the creation of new flows.  The tail ... is quite long as
well, servers may see flows spaced apart by up to 10s.  Finally, the
median arrival rate of all flows in the cluster is 10^5 flows per
second" (at 1500-server production scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.flow_stats import InterarrivalStats, interarrival_stats
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row

__all__ = ["Fig11Result", "run"]


@dataclass(frozen=True)
class Fig11Result:
    """Inter-arrival distributions and the detected periodic modes."""

    stats: InterarrivalStats
    expected_quantum: float

    @property
    def mode_spacing(self) -> float:
        """Autocorrelation-estimated spacing of the periodic modes (s)."""
        return self.stats.server_mode_spacing

    @property
    def server_tail(self) -> float:
        """99.9th percentile of per-server inter-arrival gaps."""
        if self.stats.per_server.n == 0:
            return float("nan")
        return float(self.stats.per_server.quantile(0.999)[0])

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        modes = self.stats.server_modes
        return [
            Row("periodic inter-arrival modes at servers",
                "modes spaced ~15 ms apart",
                f"{modes.size} modes, spacing {self.mode_spacing * 1e3:.1f} ms"),
            Row("expected spacing (connection quantum)", "~15 ms",
                f"{self.expected_quantum * 1e3:.0f} ms"),
            Row("per-server inter-arrival tail (p99.9)", "up to ~10 s",
                f"{self.server_tail:.2f} s"),
            Row("cluster-wide flow arrival rate",
                "10^5 flows/s at 1500 servers",
                f"{self.stats.median_cluster_rate:.0f} flows/s "
                f"(scaled cluster)"),
        ]


@experiment("fig11", figure="Fig 11", title="flow inter-arrivals")
def run(dataset: ExperimentDataset | None = None) -> Fig11Result:
    """Reproduce Fig 11 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    stats = interarrival_stats(dataset.flows, dataset.result.topology)
    return Fig11Result(
        stats=stats,
        expected_quantum=dataset.config.workload.connection_quantum,
    )
