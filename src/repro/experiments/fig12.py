"""Experiment F12 — Fig 12: CDF of tomography estimation errors.

Paper headline: "Tomogravity results in fairly inaccurate inferences,
with estimation errors ranging from 35% to 184% and a median of 60%."
The job-metadata prior improves things "only marginally", and sparsity
maximisation "yields a worse estimate than tomogravity".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.stats import Ecdf, ecdf
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row
from .tomography_study import TomographyStudy, run_study

__all__ = ["Fig12Result", "run"]


@dataclass(frozen=True)
class Fig12Result:
    """Estimation-error distributions for the three methods."""

    study: TomographyStudy

    def error_cdfs(self) -> dict[str, Ecdf]:
        """Named error CDFs, as plotted in Fig 12."""
        return {
            "tomogravity": ecdf(self.study.tomogravity_errors),
            "tomogravity+job": ecdf(self.study.job_prior_errors),
            "sparsity-max": ecdf(self.study.sparsity_errors),
        }

    @property
    def median_tomogravity_error(self) -> float:
        """Median tomogravity RMSRE."""
        errors = self.study.tomogravity_errors
        return float(np.median(errors)) if errors.size else float("nan")

    @property
    def median_job_prior_error(self) -> float:
        """Median job-augmented RMSRE."""
        errors = self.study.job_prior_errors
        return float(np.median(errors)) if errors.size else float("nan")

    @property
    def median_sparsity_error(self) -> float:
        """Median sparsity-max RMSRE (over MILP windows)."""
        errors = self.study.sparsity_errors
        return float(np.median(errors)) if errors.size else float("nan")

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        errors = self.study.tomogravity_errors
        span = (
            f"{errors.min():.0%} .. {errors.max():.0%}"
            if errors.size
            else "n/a"
        )
        return [
            Row("tomogravity median RMSRE", "60%",
                f"{self.median_tomogravity_error:.0%}"),
            Row("tomogravity error range", "35% .. 184%", span),
            Row("tomogravity + job info median RMSRE",
                "only marginally better",
                f"{self.median_job_prior_error:.0%}"),
            Row("sparsity-max median RMSRE", "worse than tomogravity",
                f"{self.median_sparsity_error:.0%}"),
            Row("TM windows analysed", "~96 (day of 15-min TMs)",
                f"{len(self.study.windows)}"),
        ]


@experiment("fig12", figure="Fig 12", title="tomography estimation error")
def run(
    dataset: ExperimentDataset | None = None, window: float = 100.0
) -> Fig12Result:
    """Reproduce Fig 12 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    return Fig12Result(study=run_study(dataset, window=window))
