"""Experiment F13 — Fig 13: tomogravity error vs TM sparsity.

Paper headline: "the estimation error of tomogravity is correlated with
the sparsity of the ground truth TM — the fewer the number of entries in
ground truth TM the larger the estimation error", with a logarithmic
best-fit curve through the scatter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.stats import logarithmic_fit, pearson_correlation
from .common import ExperimentDataset, build_dataset
from .registry import experiment
from .reporting import Row
from .tomography_study import TomographyStudy, run_study

__all__ = ["Fig13Result", "run"]


@dataclass(frozen=True)
class Fig13Result:
    """Per-window (sparsity, error) scatter and its fit."""

    study: TomographyStudy
    sparsity_fractions: np.ndarray
    errors: np.ndarray

    @property
    def correlation(self) -> float:
        """Pearson correlation between sparsity fraction and error.

        Negative: the fewer entries carry 75% of volume (sparser truth),
        the larger the tomogravity error.
        """
        if self.sparsity_fractions.size < 2:
            return float("nan")
        return pearson_correlation(self.sparsity_fractions, self.errors)

    def log_fit(self) -> tuple[float, float]:
        """(a, b) of the Fig 13 best-fit ``error = a·ln(fraction) + b``."""
        return logarithmic_fit(self.sparsity_fractions, self.errors)

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        a, b = (
            self.log_fit()
            if self.sparsity_fractions.size >= 2
            else (float("nan"), float("nan"))
        )
        return [
            Row("corr(sparsity fraction, error)", "negative (clear trend)",
                f"{self.correlation:+.2f}"),
            Row("log-fit slope a (error = a ln x + b)",
                "negative (error falls as truth densifies)",
                f"{a:+.2f}"),
            Row("windows in scatter", "~96", f"{self.errors.size}"),
        ]


@experiment("fig13", figure="Fig 13", title="error vs ground-truth sparsity")
def run(
    dataset: ExperimentDataset | None = None, window: float = 100.0
) -> Fig13Result:
    """Reproduce Fig 13 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    study = run_study(dataset, window=window)
    fractions = []
    errors = []
    for estimate in study.windows:
        fraction = estimate.truth_sparsity()
        error = estimate.rmsre_tomogravity()
        if np.isfinite(fraction) and np.isfinite(error):
            fractions.append(fraction)
            errors.append(error)
    return Fig13Result(
        study=study,
        sparsity_fractions=np.asarray(fractions),
        errors=np.asarray(errors),
    )
