"""Experiment F14 — Fig 14: sparsity of estimated vs ground-truth TMs.

Paper headline: "Ground truth TMs are sparser than tomogravity estimated
TMs, and denser than sparsity maximized estimated TMs."  The MILP's TMs
"contain typically 150 non-zero entries, which is about 3% of the total
TM entries.  Further, these non-zero entries do not correspond to heavy
hitters in the ground truth TMs — only a handful (5-20) of these entries
correspond to entries in ground truth TM with value greater than the
97-th percentile."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.stats import Ecdf, ecdf
from .common import ExperimentDataset, build_dataset
from .registry import default_summary, experiment
from .reporting import Row
from .tomography_study import TomographyStudy, run_study

__all__ = ["Fig14Result", "run"]


@dataclass(frozen=True)
class Fig14Result:
    """Entries-for-75%-volume distributions per method."""

    study: TomographyStudy

    def sparsity_cdfs(self) -> dict[str, Ecdf]:
        """Named CDFs of the fraction of entries carrying 75% of volume."""
        return {
            "ground truth": ecdf(self.study.sparsity_fractions("truth")),
            "tomogravity": ecdf(self.study.sparsity_fractions("tomogravity")),
            "tomogravity+job": ecdf(self.study.sparsity_fractions("job_prior")),
            "sparsity-max": ecdf(self.study.sparsity_fractions("sparsity")),
        }

    def median_fraction(self, method: str) -> float:
        """Median entries-for-75%-volume fraction for one method."""
        values = self.study.sparsity_fractions(method)
        return float(np.median(values)) if values.size else float("nan")

    @property
    def milp_nonzero_fraction(self) -> float:
        """Median fraction of TM entries the MILP leaves non-zero."""
        counts = self.study.sparsity_nonzeros()
        if not counts:
            return float("nan")
        total_entries = self.study.num_racks * (self.study.num_racks - 1)
        return float(np.median(counts)) / total_entries

    @property
    def milp_heavy_hitter_overlap(self) -> float:
        """Median count of MILP non-zeros that are true heavy hitters."""
        overlaps = self.study.sparsity_heavy_hitter_overlaps()
        return float(np.median(overlaps)) if overlaps else float("nan")

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        return [
            Row("median 75%-volume fraction, truth",
                "between the two estimators",
                f"{self.median_fraction('truth'):.1%}"),
            Row("median 75%-volume fraction, tomogravity",
                "denser than truth",
                f"{self.median_fraction('tomogravity'):.1%}"),
            Row("median 75%-volume fraction, sparsity-max",
                "sparser than truth",
                f"{self.median_fraction('sparsity'):.1%}"),
            Row("MILP non-zero entries", "~3% of TM entries",
                f"{self.milp_nonzero_fraction:.1%}"),
            Row("MILP non-zeros that are true heavy hitters",
                "only a handful (5-20 of ~150)",
                f"{self.milp_heavy_hitter_overlap:.0f}"),
        ]


def _summarise(result: Fig14Result) -> dict[str, float]:
    out = default_summary(result)
    for method in ("truth", "tomogravity", "job_prior", "sparsity"):
        value = result.median_fraction(method)
        if np.isfinite(value):
            out[f"median_fraction_{method}"] = value
    return out


@experiment("fig14", figure="Fig 14", title="sparsity of estimated TMs",
            summarise=_summarise)
def run(
    dataset: ExperimentDataset | None = None, window: float = 100.0
) -> Fig14Result:
    """Reproduce Fig 14 from a (memoised) campaign dataset."""
    if dataset is None:
        dataset = build_dataset()
    return Fig14Result(study=run_study(dataset, window=window))
