"""Experiment registry: one discoverable catalogue of every analysis.

Each figure module decorates its ``run`` function with
:func:`experiment`; ablations register their runners the same way with
``kind="ablation"``.  The CLI, the campaign runner and the viz layer all
resolve experiments through :func:`get_experiment` instead of hard-coded
import lists, so adding a figure module is the *only* step needed to
make it runnable everywhere.

The uniform protocol:

* ``spec.run(dataset)`` (figures) / ``spec.run(seed=s)`` (ablations)
  produces the module's typed result object;
* ``spec.summary(result)`` reduces that result to a flat
  ``{metric: float}`` dict — the rows a multi-seed campaign aggregates
  into mean/stdev/CI.  Modules may register a bespoke ``summarise``;
  by default every finite scalar field and property of the result
  dataclass is harvested automatically.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = [
    "ExperimentSpec",
    "experiment",
    "get_experiment",
    "experiment_names",
    "experiment_specs",
    "default_summary",
]

_REGISTRY: dict[str, "ExperimentSpec"] = {}


def default_summary(result: Any) -> dict[str, float]:
    """Every finite scalar field and property of a result, by name.

    Result objects commonly wrap a stats dataclass (e.g. Fig 9's
    ``DurationStats``), so dataclass-typed fields are harvested one
    level deep with dotted names (``stats.frac_flows_under_10s``).
    """
    out: dict[str, float] = {}

    def consider(name: str, value: Any) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float, np.integer, np.floating)):
            value = float(value)
            if math.isfinite(value):
                out[name] = value

    def harvest(obj: Any, prefix: str, depth: int) -> None:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            for field in dataclasses.fields(obj):
                value = getattr(obj, field.name)
                name = f"{prefix}{field.name}"
                consider(name, value)
                if depth > 0 and dataclasses.is_dataclass(value) \
                        and not isinstance(value, type):
                    harvest(value, f"{name}.", depth - 1)
        for name in dir(type(obj)):
            if name.startswith("_"):
                continue
            if not isinstance(getattr(type(obj), name, None), property):
                continue
            try:
                value = getattr(obj, name)
            except Exception:
                continue
            consider(f"{prefix}{name}", value)

    harvest(result, "", 1)
    return dict(sorted(out.items()))


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: identity, runner and summariser."""

    name: str
    figure: str
    title: str
    kind: str  # "figure" (needs a dataset) or "ablation" (self-contained)
    runner: Callable
    summarise: Callable[[Any], dict[str, float]] | None = None

    def run(self, dataset=None, *, seed: int | None = None) -> Any:
        """Execute the experiment with its uniform calling convention."""
        if self.kind == "ablation":
            return self.runner() if seed is None else self.runner(seed=seed)
        return self.runner(dataset)

    def summary(self, result: Any) -> dict[str, float]:
        """Flat numeric summary of a result (campaign aggregation rows)."""
        summarise = self.summarise or default_summary
        return {str(key): float(value) for key, value in summarise(result).items()}


def experiment(
    name: str,
    *,
    figure: str = "",
    title: str = "",
    kind: str = "figure",
    summarise: Callable[[Any], dict[str, float]] | None = None,
) -> Callable:
    """Decorator registering a runner under ``name``; returns it unchanged."""
    if kind not in ("figure", "ablation"):
        raise ValueError(f"unknown experiment kind {kind!r}")

    def register(runner: Callable) -> Callable:
        existing = _REGISTRY.get(name)
        if existing is not None and (
            existing.runner.__module__ != runner.__module__
            or existing.runner.__qualname__ != runner.__qualname__
        ):
            raise ValueError(
                f"experiment {name!r} already registered by "
                f"{existing.runner.__module__}.{existing.runner.__qualname__}"
            )
        _REGISTRY[name] = ExperimentSpec(
            name=name, figure=figure, title=title, kind=kind,
            runner=runner, summarise=summarise,
        )
        return runner

    return register


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment; KeyError lists what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: "
            f"{', '.join(experiment_names())}"
        ) from None


def _sort_key(name: str) -> tuple:
    # Figures first in paper order, extensions last.
    return (name.startswith("ext_"), name)


def experiment_specs(kind: str | None = None) -> list[ExperimentSpec]:
    """All registered specs (optionally one kind), in stable name order."""
    specs = [
        spec for spec in _REGISTRY.values()
        if kind is None or spec.kind == kind
    ]
    return sorted(specs, key=lambda spec: _sort_key(spec.name))


def experiment_names(kind: str | None = None) -> list[str]:
    """Names of registered experiments (optionally one kind)."""
    return [spec.name for spec in experiment_specs(kind)]
