"""Paper-vs-measured reporting helpers shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Row", "format_table"]


@dataclass(frozen=True)
class Row:
    """One line of an experiment's paper-vs-measured table."""

    metric: str
    paper: str
    measured: str

    def as_tuple(self) -> tuple[str, str, str]:
        """(metric, paper, measured)."""
        return (self.metric, self.paper, self.measured)


#: Default column headers: the paper-vs-measured comparison.
_DEFAULT_HEADERS = ("metric", "paper", "measured (this repro)")


def format_table(
    title: str,
    rows: list,
    headers: tuple[str, ...] = _DEFAULT_HEADERS,
) -> str:
    """Render rows as a fixed-width text table.

    ``rows`` may be :class:`Row` instances or plain tuples of strings;
    custom ``headers`` let other reports (e.g. ``repro
    telemetry-report``) reuse the same renderer with different columns.
    """
    cells = [
        row.as_tuple() if hasattr(row, "as_tuple") else tuple(row) for row in rows
    ]
    for cell_row in cells:
        if len(cell_row) != len(headers):
            raise ValueError(
                f"row has {len(cell_row)} columns, headers have {len(headers)}"
            )
    widths = [
        max(len(header), *(len(row[column]) for row in cells)) if cells else len(header)
        for column, header in enumerate(headers)
    ]
    lines = [title]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for cell_row in cells:
        lines.append(
            " | ".join(value.ljust(width) for value, width in zip(cell_row, widths))
        )
    return "\n".join(lines)
