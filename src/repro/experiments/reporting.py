"""Paper-vs-measured reporting helpers shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Row", "format_table"]


@dataclass(frozen=True)
class Row:
    """One line of an experiment's paper-vs-measured table."""

    metric: str
    paper: str
    measured: str

    def as_tuple(self) -> tuple[str, str, str]:
        """(metric, paper, measured)."""
        return (self.metric, self.paper, self.measured)


def format_table(title: str, rows: list[Row]) -> str:
    """Render rows as a fixed-width text table."""
    headers = ("metric", "paper", "measured (this repro)")
    widths = [
        max(len(headers[0]), *(len(r.metric) for r in rows)) if rows else len(headers[0]),
        max(len(headers[1]), *(len(r.paper) for r in rows)) if rows else len(headers[1]),
        max(len(headers[2]), *(len(r.measured) for r in rows)) if rows else len(headers[2]),
    ]
    lines = [title]
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(
                value.ljust(width)
                for value, width in zip(row.as_tuple(), widths)
            )
        )
    return "\n".join(lines)
