"""Resumable work-queue campaign scheduler over the content-addressed cache.

The spawn-pool campaign runner assigns each seed to a worker up front;
a crashed worker loses its seed and a re-run repeats everything.  This
module replaces assignment with a **work queue coordinated entirely
through the disk cache directory**: every unit of work is a
config-fingerprint key (the same sha256 the dataset cache is addressed
by), and a campaign's queue lives in ``<cache-root>/queue-<id>/`` as
three kinds of small files —

* ``<fingerprint>.lease`` — an atomically-created (``O_CREAT|O_EXCL``)
  claim holding pid / host / heartbeat / TTL.  A background thread
  renews the heartbeat; any worker that finds a lease whose heartbeat
  is older than its TTL (or whose pid is dead on this host) may take
  the unit over.
* ``<fingerprint>.result.json`` — the published result record, written
  via temp-file + ``os.replace`` so publication is atomic and
  idempotent: two workers racing the same unit (a takeover of a slow
  but living worker) publish byte-identical records, deterministically.
* ``<fingerprint>.shm.json`` — a shared-memory manifest
  (:mod:`repro.experiments.shm`) so later workers on the same host
  attach the dataset's large arrays instead of re-reading the npz.

Because the queue *is* the state, a crashed, killed or late-added
worker is a no-op and ``repro campaign run`` is resumable by
construction — re-invoking with ``resume=True`` loads every published
result and only the missing keys are computed.  Workers are a
**persistent warm pool**: each spawned process imports numpy/repro
once, then loops claim → load-or-compute → run experiments → publish
until every key in the queue has a result.  The timeline gains three
phases for the new machinery: ``claim`` (lease acquisition),
``lease-wait`` (idle while every remaining unit is leased elsewhere)
and ``shm-attach`` (array hand-off from shared memory).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import queue as queue_module
import secrets
import signal
import socket
import threading
import time
from typing import Callable, Sequence

from ..telemetry import NULL_TELEMETRY, ResourceProfiler, Telemetry, worker_report
from ..telemetry.resources import (
    PHASE_CLAIM,
    PHASE_COMPUTE,
    PHASE_DATASET,
    PHASE_LEASE_WAIT,
    PHASE_SHM_ATTACH,
    PHASE_WAIT,
)
from . import shm
from .cache import (
    NPZ_FIELDS,
    DatasetDiskCache,
    config_fingerprint,
    dataset_content_hash,
    default_cache_dir,
)
from .common import _disk_cache_enabled, build_dataset
from .registry import get_experiment

__all__ = [
    "DEFAULT_LEASE_TTL",
    "campaign_queue_id",
    "queue_dir_for",
    "claim_lease",
    "read_lease",
    "lease_is_stale",
    "Lease",
    "publish_result",
    "load_result",
    "reset_queue",
    "queue_status",
    "run_queue",
]

#: Default lease time-to-live, seconds.  A worker whose heartbeat is
#: older than this is presumed dead and its unit may be taken over;
#: heartbeats renew every TTL/4, so transient stalls shorter than
#: ~3/4 TTL never trigger a takeover.
DEFAULT_LEASE_TTL = 30.0

#: Worker poll cadence while every remaining unit is leased elsewhere.
_POLL_INTERVAL = 0.05

#: Parent drain cadence (result-queue timeout between housekeeping).
_DRAIN_INTERVAL = 0.25

#: Upper bound on the concurrent-build gate wait.  The gate serialises
#: CPU-bound dataset builds to the core count (an optimisation, never a
#: correctness dependency); the timeout guarantees a permit leaked by a
#: SIGKILLed builder cannot wedge the queue.
_GATE_TIMEOUT = 120.0

#: Fields that make up a published (and resumable) result record.
_RESULT_FIELDS = (
    "seed",
    "fingerprint",
    "content_hash",
    "wall_seconds",
    "build_seconds",
    "from_disk_cache",
    "summaries",
)

#: Test hook: ``"<seed>:<stage>"`` makes the first worker to reach that
#: stage (``claimed`` or ``published``) for that seed SIGKILL itself,
#: exactly once per queue.  Used by the crash-injection tests and the
#: CI kill-one-worker scenario; never set in normal operation.
KILL_ENV = "REPRO_SCHEDULER_KILL"


# ------------------------------------------------------------------ queue id


def campaign_queue_id(base_config, seeds: Sequence[int],
                      experiments: Sequence[str]) -> str:
    """Stable id for a campaign's work queue (16 hex chars).

    Derived from the base config fingerprint plus the seed and
    experiment lists, so re-invoking the same campaign — hours later,
    from another process — lands on the same queue directory, which is
    what makes ``resume`` find its own results.
    """
    blob = json.dumps(
        {
            "base": config_fingerprint(base_config),
            "seeds": list(seeds),
            "experiments": list(experiments),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def queue_dir_for(queue_id: str, cache_dir=None) -> pathlib.Path:
    """The on-disk queue directory for a campaign queue id."""
    root = pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return root / f"queue-{queue_id}"


def _lease_path(queue_dir: pathlib.Path, key: str) -> pathlib.Path:
    return queue_dir / f"{key}.lease"


def _result_path(queue_dir: pathlib.Path, key: str) -> pathlib.Path:
    return queue_dir / f"{key}.result.json"


def _shm_manifest_path(queue_dir: pathlib.Path, key: str) -> pathlib.Path:
    return queue_dir / f"{key}.shm.json"


# -------------------------------------------------------------------- leases


def read_lease(path) -> dict | None:
    """The lease body at ``path``, or None when absent/corrupt."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - exists, not ours
        return True
    return True


def lease_is_stale(lease: dict, now: float | None = None) -> bool:
    """Whether a lease's holder should be presumed dead.

    Stale means either the heartbeat is older than the lease's TTL, or
    — cheaper and immediate — the holding pid no longer exists on this
    host.  A stale lease may be unlinked and the unit re-claimed.
    """
    now = time.time() if now is None else now
    if lease.get("host") == socket.gethostname():
        pid = int(lease.get("pid", -1))
        if pid > 0 and not _pid_alive(pid):
            return True
    ttl = float(lease.get("ttl", DEFAULT_LEASE_TTL))
    return now - float(lease.get("heartbeat", 0.0)) > ttl


class Lease:
    """One held claim on a work unit, renewed by a background thread.

    ``acquire`` creates the lease file with ``O_CREAT | O_EXCL`` — the
    kernel guarantees exactly one winner per filename — then starts a
    renewer that rewrites the body (fresh ``heartbeat``) every TTL/4
    via temp-file + ``os.replace``.  ``release`` stops the renewer and
    unlinks the file (only if it still carries this lease's token).
    """

    def __init__(self, path, ttl: float = DEFAULT_LEASE_TTL) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.path = pathlib.Path(path)
        self.ttl = float(ttl)
        self.token = secrets.token_hex(8)
        self.claimed_at: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _body(self) -> dict:
        return {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "token": self.token,
            "claimed_at": self.claimed_at,
            "heartbeat": time.time(),
            "ttl": self.ttl,
        }

    def acquire(self) -> bool:
        """Try to create the lease file; True exactly for the winner."""
        self.claimed_at = time.time()
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(self._body(), handle)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._renew_loop, name="repro-lease-renewer", daemon=True
        )
        self._thread.start()
        return True

    def _renew(self) -> None:
        staging = self.path.with_name(
            f"{self.path.name}.renew-{os.getpid()}"
        )
        try:
            with open(staging, "w", encoding="utf-8") as handle:
                json.dump(self._body(), handle)
            os.replace(staging, self.path)
        except OSError:  # pragma: no cover - disk full / dir removed
            pass

    def _renew_loop(self) -> None:
        interval = self.ttl / 4.0
        while not self._stop.wait(interval):
            self._renew()

    def release(self) -> None:
        """Stop renewing and remove the lease file (token-checked)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        current = read_lease(self.path)
        if current is not None and current.get("token") != self.token:
            return  # taken over while we were presumed dead; not ours
        try:
            os.unlink(self.path)
        except OSError:  # pragma: no cover - already gone
            pass


def claim_lease(queue_dir, key: str,
                ttl: float = DEFAULT_LEASE_TTL) -> tuple[Lease | None, bool]:
    """Try to claim a unit; returns ``(lease, was_takeover)``.

    The fast path is a plain exclusive create.  When the file already
    exists, the current lease is read and — only if stale — unlinked
    (token-checked, so a fresh lease written in between survives) and
    claimed again.  ``(None, False)`` means someone live holds it.
    """
    path = _lease_path(pathlib.Path(queue_dir), key)
    lease = Lease(path, ttl)
    if lease.acquire():
        return lease, False
    current = read_lease(path)
    if current is not None and not lease_is_stale(current):
        return None, False
    recheck = read_lease(path)
    if recheck is not None and current is not None and \
            recheck.get("token") != current.get("token"):
        return None, False  # replaced underneath us; holder is live
    try:
        os.unlink(path)
    except OSError:
        pass
    if lease.acquire():
        return lease, True
    return None, False


# ------------------------------------------------------------------- results


def publish_result(queue_dir, key: str, record: dict) -> pathlib.Path:
    """Atomically publish a unit's result record into the queue.

    Only the resumable fields are written (telemetry reports stay
    in-band: a resumed unit contributes its hashes and summaries but
    not a stale timeline lane).  ``os.replace`` makes publication
    atomic and idempotent — the records are deterministic, so a
    takeover double-publish is byte-identical.
    """
    path = _result_path(pathlib.Path(queue_dir), key)
    payload = {name: record[name] for name in _RESULT_FIELDS}
    staging = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(staging, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging, path)
    return path


def load_result(queue_dir, key: str) -> dict | None:
    """A previously published record, or None if absent/invalid."""
    try:
        with open(_result_path(pathlib.Path(queue_dir), key),
                  "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if any(name not in record for name in _RESULT_FIELDS):
        return None
    if record.get("fingerprint") != key:
        return None
    return record


def reset_queue(queue_dir) -> int:
    """Remove every queue artefact (leases, results, shm manifests).

    Shared-memory blocks named by on-disk manifests are unlinked first
    so a reset never leaks ``/dev/shm`` segments.  Returns the number
    of files removed.  This is what a non-``resume`` campaign run does
    on startup — the default is a fresh computation.
    """
    root = pathlib.Path(queue_dir)
    if not root.is_dir():
        return 0
    removed = 0
    for path in root.glob("*.shm.json"):
        try:
            shm.unlink_manifest(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError):
            pass
    for pattern in ("*.lease", "*.result.json", "*.shm.json", "*.killed",
                    "*.tmp-*", "*.renew-*"):
        for path in root.glob(pattern):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
    return removed


def queue_status(base_config, seeds: Sequence[int],
                 experiments: Sequence[str], *, cache_dir=None) -> dict:
    """Inspect a campaign queue without touching it.

    Recomputes the queue id from the campaign parameters (the same
    derivation ``run_queue`` uses) and classifies every unit as
    ``done`` (result published), ``leased`` (live heartbeat),
    ``stale`` (takeover-eligible lease) or ``pending``.
    """
    qid = campaign_queue_id(base_config, seeds, experiments)
    qdir = queue_dir_for(qid, cache_dir)
    now = time.time()
    units = []
    counts = {"done": 0, "leased": 0, "stale": 0, "pending": 0}
    for seed in seeds:
        key = config_fingerprint(base_config.with_seed(seed))
        lease = None
        if _result_path(qdir, key).exists():
            state = "done"
        else:
            lease = read_lease(_lease_path(qdir, key))
            if lease is None:
                state = "pending"
            elif lease_is_stale(lease, now=now):
                state = "stale"
            else:
                state = "leased"
        counts[state] += 1
        units.append({
            "seed": seed,
            "fingerprint": key,
            "state": state,
            "lease": lease,
            "shm": _shm_manifest_path(qdir, key).exists(),
        })
    return {
        "queue_id": qid,
        "queue_dir": str(qdir),
        "exists": qdir.is_dir(),
        "units": units,
        "counts": counts,
    }


# ------------------------------------------------------------ crash injection


def _maybe_self_kill(stage: str, seed: int, queue_dir: pathlib.Path,
                     key: str) -> None:
    """Honour the ``REPRO_SCHEDULER_KILL`` test hook (at most once)."""
    spec = os.environ.get(KILL_ENV)
    if not spec:
        return
    try:
        want_seed, want_stage = spec.split(":", 1)
        if int(want_seed) != seed or want_stage != stage:
            return
    except ValueError:
        return
    marker = queue_dir / f"{key}.killed"
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # this queue already took its one injected crash
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


# ------------------------------------------------------------- worker bodies


def _read_shm_manifest(queue_dir: pathlib.Path, key: str) -> dict | None:
    try:
        return json.loads(
            _shm_manifest_path(queue_dir, key).read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError):
        return None


def _write_shm_manifest(queue_dir: pathlib.Path, key: str,
                        manifest: dict) -> None:
    path = _shm_manifest_path(queue_dir, key)
    staging = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(staging, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    os.replace(staging, path)


def _acquire_dataset(config, key: str, tele, profiler, *, queue_dir,
                     cache_dir, disk_cache, use_shm, build_gate,
                     heartbeat, heartbeat_interval):
    """Materialise the unit's dataset, cheapest source first.

    Order: shared-memory attach (arrays from a sibling worker + object
    graph from disk), then :func:`build_dataset` (memory LRU → disk
    cache → simulate).  CPU-bound builds serialise through
    ``build_gate`` so N workers on a C-core host never run more than C
    simulations at once — the wait is billed to the ``wait`` phase, the
    build itself to ``dataset-load``, keeping the summed dataset-load
    comparable to a serial run.  Returns ``(dataset, via_shm,
    published_manifest)``.
    """
    disk_on = _disk_cache_enabled(disk_cache, cache_dir)
    if use_shm and disk_on:
        manifest = _read_shm_manifest(queue_dir, key)
        if manifest is not None:
            with profiler.phase(PHASE_SHM_ATTACH):
                arrays = shm.attach_arrays(manifest)
                dataset = (
                    DatasetDiskCache(cache_dir).load(key, arrays)
                    if arrays is not None else None
                )
            if dataset is not None:
                tele.counter("dataset.shm_attach_hits").inc()
                return dataset, True, None
            tele.counter("dataset.shm_attach_misses").inc()
    needs_build = True
    if disk_on:
        needs_build = not DatasetDiskCache(cache_dir).entry_dir(key).exists()
    gated = needs_build and build_gate is not None
    if gated:
        wait_started = time.time()
        acquired = build_gate.acquire(timeout=_GATE_TIMEOUT)
        waited = time.time() - wait_started
        gated = acquired  # a timed-out permit is simply not released
        if waited > 0.01:
            profiler.add_phase(PHASE_WAIT, wait_started, waited,
                               reason="build-gate")
    try:
        with profiler.phase(PHASE_DATASET):
            dataset = build_dataset(
                config, telemetry=tele, disk_cache=disk_cache,
                cache_dir=cache_dir, heartbeat=heartbeat,
                heartbeat_interval=heartbeat_interval,
            )
    finally:
        if gated:
            build_gate.release()
    manifest = None
    if use_shm and disk_on and shm.HAVE_SHM and \
            not _shm_manifest_path(queue_dir, key).exists():
        try:
            manifest = shm.publish_arrays(
                key, {name: getattr(dataset, name) for name in NPZ_FIELDS}
            )
            _write_shm_manifest(queue_dir, key, manifest)
        except OSError:
            manifest = None  # shm full/unavailable: stay on the disk path
    return dataset, False, manifest


def _process_unit(seed: int, key: str, params: dict, build_gate, *,
                  submitted_at: float, idle_since: float | None,
                  claim_started: float, takeover: bool) -> dict:
    """Run one claimed unit end to end; returns the full result record.

    The caller holds the lease.  Mirrors the spawn pool's per-seed
    worker body (dataset → experiments → summaries → worker report) and
    adds the queue phases: ``lease-wait`` for time idle before this
    claim, ``claim`` for the acquisition itself.
    """
    from .campaign import _seed_heartbeat

    queue_dir = pathlib.Path(params["queue_dir"])
    config = params["base_config"].with_seed(seed)
    heartbeat_interval = params["heartbeat_interval"]
    started_at = time.time()
    tele = Telemetry()
    profiler = ResourceProfiler()
    profiler.start()
    profiler.add_startup_phases(submitted_at)
    if idle_since is not None and claim_started - idle_since > 0.01:
        profiler.add_phase(PHASE_LEASE_WAIT, idle_since,
                           claim_started - idle_since)
    profiler.add_phase(PHASE_CLAIM, claim_started,
                       started_at - claim_started, takeover=takeover)
    heartbeat = _seed_heartbeat(seed) if heartbeat_interval else None
    started = time.perf_counter()
    with tele.span("campaign.seed", seed=seed,
                   campaign_id=params["campaign_id"], pid=profiler.pid,
                   takeover=takeover):
        dataset, via_shm, shm_manifest = _acquire_dataset(
            config, key, tele, profiler,
            queue_dir=queue_dir, cache_dir=params["cache_dir"],
            disk_cache=params["disk_cache"], use_shm=params["use_shm"],
            build_gate=build_gate, heartbeat=heartbeat,
            heartbeat_interval=heartbeat_interval,
        )
        build_seconds = time.perf_counter() - started
        _maybe_self_kill("published", seed, queue_dir, key)
        summaries = {}
        with profiler.phase(PHASE_COMPUTE):
            for name in params["names"]:
                spec = get_experiment(name)
                with tele.span("campaign.experiment", experiment=name):
                    if spec.kind == "ablation":
                        result = spec.run(seed=seed)
                    else:
                        result = spec.run(dataset)
                summaries[name] = spec.summary(result)
    profiler.stop()
    snapshot = tele.metrics.snapshot()
    from_disk_cache = via_shm or (
        snapshot.get("dataset.disk_cache_hits", {}).get("value", 0.0) > 0
    )
    record = {
        "seed": seed,
        "fingerprint": key,
        "content_hash": dataset_content_hash(dataset),
        "wall_seconds": time.perf_counter() - started,
        "build_seconds": build_seconds,
        "from_disk_cache": from_disk_cache,
        "summaries": summaries,
        "resumed": False,
        "takeover": takeover,
        "report": worker_report(
            tele, profiler,
            campaign_id=params["campaign_id"], seed=seed,
            submitted_at=submitted_at, started_at=started_at,
        ),
    }
    if shm_manifest is not None:
        record["shm_manifest"] = shm_manifest
    return record


def _worker_loop(params: dict, emit: Callable[[dict], None],
                 build_gate) -> int:
    """Claim-and-process until every unit in the queue has a result.

    The warm-pool body: runs in a long-lived process (or in-process for
    ``jobs <= 1``), so imports are paid once and the loop touches only
    queue files between units.  Returns the number of units this worker
    completed.  Crash tolerance is structural — if this process dies at
    *any* point in the loop, its lease goes stale and another worker
    redoes the unit from the cache.
    """
    queue_dir = pathlib.Path(params["queue_dir"])
    units = list(params["units"])
    offset = int(params.get("worker_index", 0))
    submitted_at = params["submitted_at"]
    lease_ttl = params["lease_ttl"]
    completed = 0
    first_unit = True
    idle_since: float | None = None
    while True:
        progressed = False
        remaining = False
        for index in range(len(units)):
            seed, key = units[(index + offset) % len(units)]
            if _result_path(queue_dir, key).exists():
                continue
            remaining = True
            claim_started = time.time()
            lease, takeover = claim_lease(queue_dir, key, ttl=lease_ttl)
            if lease is None:
                continue
            try:
                _maybe_self_kill("claimed", seed, queue_dir, key)
                record = _process_unit(
                    seed, key, params, build_gate,
                    submitted_at=(submitted_at if first_unit
                                  else claim_started),
                    idle_since=idle_since, claim_started=claim_started,
                    takeover=takeover,
                )
                publish_result(queue_dir, key, record)
                emit(record)
            finally:
                lease.release()
            completed += 1
            progressed = True
            first_unit = False
            idle_since = None
        if not remaining:
            return completed
        if not progressed:
            if idle_since is None:
                idle_since = time.time()
            time.sleep(_POLL_INTERVAL)


def _pool_worker(params: dict, result_queue, build_gate) -> None:
    """Entry point of one warm-pool process (spawn context).

    Importing this module in the child pulls in :mod:`repro.experiments`
    — numpy, the simulator and every registered experiment load once,
    then the worker loops on the queue shipping each record home.
    """
    _worker_loop(params, result_queue.put, build_gate)


# ----------------------------------------------------------------- the queue


def run_queue(
    base_config,
    seed_list: Sequence[int],
    names: Sequence[str],
    *,
    jobs: int = 1,
    telemetry: Telemetry | None = None,
    cache_dir=None,
    disk_cache: bool | None = True,
    progress: Callable[[dict, int, int], None] | None = None,
    campaign_id: str = "",
    heartbeat_interval: float | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resume: bool = False,
    use_shm: bool | None = None,
) -> dict:
    """Drive a campaign's work queue to completion; the warm-pool parent.

    Builds the unit list (one config-fingerprint key per seed), resumes
    any published results when ``resume`` (otherwise resets the queue),
    then runs the claim/compute/publish loop — in-process for
    ``jobs <= 1``, else across ``jobs`` persistent spawn workers whose
    records drain through a multiprocessing queue.  Dead workers are
    respawned while unpublished units remain; results published by a
    worker that died before shipping its record are recovered from the
    queue directory.  Shared-memory segments reported by workers (and
    any left by crashed ones) are unlinked before returning.

    Returns ``{"records", "queue_id", "queue_dir", "takeovers",
    "resumed_seeds", "respawns", "use_shm"}`` where ``records`` maps
    seed → result record (freshly computed records carry a telemetry
    ``report``; resumed ones do not).
    """
    tele = telemetry or NULL_TELEMETRY
    queue_id = campaign_queue_id(base_config, seed_list, names)
    disk_on = _disk_cache_enabled(disk_cache, cache_dir)
    ephemeral: str | None = None
    if cache_dir is None and not disk_on:
        # Nothing persists without a cache, so don't scatter queue files
        # into the default cache root either — coordinate through a
        # throwaway directory (resume finds nothing there, correctly).
        import tempfile

        ephemeral = tempfile.mkdtemp(prefix="repro-queue-")
        queue_dir = queue_dir_for(queue_id, ephemeral)
    else:
        queue_dir = queue_dir_for(queue_id, cache_dir)
    queue_dir.mkdir(parents=True, exist_ok=True)
    units = [
        (seed, config_fingerprint(base_config.with_seed(seed)))
        for seed in seed_list
    ]
    if not resume:
        reset_queue(queue_dir)
    if use_shm is None:
        use_shm = bool(shm.HAVE_SHM and disk_on and jobs > 1)

    records: dict[int, dict] = {}
    resumed_seeds: list[int] = []
    total = len(units)

    def collect(record: dict) -> None:
        records[record["seed"]] = record
        if progress is not None:
            progress(record, len(records), total)

    if resume:
        for seed, key in units:
            record = load_result(queue_dir, key)
            if record is not None:
                record["resumed"] = True
                resumed_seeds.append(seed)
                collect(record)

    pending = [(seed, key) for seed, key in units if seed not in records]
    takeovers = 0
    respawns = 0
    tracker = shm.SharedSegmentTracker()

    def absorb(record: dict) -> None:
        nonlocal takeovers
        manifest = record.pop("shm_manifest", None)
        if manifest is not None:
            tracker.record(record["fingerprint"], manifest)
        if record.pop("takeover", False):
            takeovers += 1
        collect(record)

    base_params = {
        "queue_dir": str(queue_dir),
        "units": pending,
        "base_config": base_config,
        "names": tuple(names),
        "cache_dir": cache_dir,
        "disk_cache": disk_cache,
        "campaign_id": campaign_id,
        "heartbeat_interval": heartbeat_interval,
        "lease_ttl": lease_ttl,
        "use_shm": use_shm,
    }

    if pending and jobs <= 1:
        params = dict(base_params, worker_index=0, submitted_at=time.time(),
                      use_shm=False)
        _worker_loop(params, absorb, build_gate=None)
    elif pending:
        from multiprocessing import get_context

        context = get_context("spawn")
        result_queue = context.Queue()
        build_gate = context.BoundedSemaphore(max(1, os.cpu_count() or 1))
        workers: dict[int, object] = {}
        spawned = 0

        def spawn_worker() -> None:
            nonlocal spawned
            params = dict(base_params, worker_index=spawned,
                          submitted_at=time.time())
            process = context.Process(
                target=_pool_worker,
                args=(params, result_queue, build_gate),
                name=f"repro-campaign-worker-{spawned}",
            )
            process.start()
            workers[spawned] = process
            spawned += 1

        for _ in range(min(jobs, len(pending))):
            spawn_worker()
        max_respawns = max(4, 2 * jobs)
        try:
            while len(records) < total:
                try:
                    absorb(result_queue.get(timeout=_DRAIN_INTERVAL))
                    continue
                except queue_module.Empty:
                    pass
                dead = [
                    index for index, process in workers.items()
                    if not process.is_alive()
                ]
                for index in dead:
                    workers.pop(index).join()
                # Recover results published by a worker that died between
                # publish_result and shipping the record home.
                for seed, key in pending:
                    if seed in records:
                        continue
                    record = load_result(queue_dir, key)
                    if record is not None:
                        record["resumed"] = False
                        collect(record)
                missing = total - len(records)
                if missing and not workers and respawns >= max_respawns:
                    raise RuntimeError(
                        f"campaign queue stalled: {missing} unit(s) missing "
                        f"after {respawns} respawns (queue {queue_dir})"
                    )
                if missing and len(workers) < min(jobs, missing) and \
                        respawns < max_respawns:
                    spawn_worker()
                    respawns += 1
        finally:
            deadline = time.time() + 10.0
            for process in workers.values():
                process.join(timeout=max(0.1, deadline - time.time()))
                if process.is_alive():  # pragma: no cover - wedged worker
                    process.terminate()
                    process.join(timeout=2.0)
            result_queue.close()
            result_queue.join_thread()

    tracker.sweep(queue_dir, [key for _, key in units])
    freed = tracker.unlink_all()
    # The manifests' blocks are gone; drop the files too so a later
    # resume doesn't chase segments that no longer exist.
    for path in queue_dir.glob("*.shm.json"):
        try:
            os.unlink(path)
        except OSError:
            pass
    if ephemeral is not None:
        import shutil

        shutil.rmtree(ephemeral, ignore_errors=True)
    if takeovers:
        tele.counter("campaign.lease_takeovers").inc(takeovers)
    if resumed_seeds:
        tele.counter("campaign.seeds_resumed").inc(len(resumed_seeds))
    return {
        "records": records,
        "queue_id": queue_id,
        "queue_dir": str(queue_dir),
        "takeovers": takeovers,
        "resumed_seeds": resumed_seeds,
        "respawns": respawns,
        "use_shm": use_shm,
        "shm_blocks_freed": freed,
    }
