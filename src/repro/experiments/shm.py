"""Shared-memory dataset hand-off between campaign workers on one host.

The scheduler's work units are content-addressed by config fingerprint,
so two workers that need the same dataset — a stale-lease takeover
retrying a crashed worker's unit, or per-experiment units split over one
seed — would otherwise each pay the npz decompress.  This module lets
the first worker that materialises a dataset publish its large numeric
arrays into POSIX shared memory (:mod:`multiprocessing.shared_memory`)
and drop a small JSON **manifest** (array name → shm block / dtype /
shape) into the campaign's queue directory; later workers on the same
host attach the blocks zero-copy and rebuild the dataset from the disk
cache's object graph plus the shared arrays, skipping the array load
entirely (the timeline's ``shm-attach`` phase).

Lifecycle is parent-owned: workers only *create* segments and report
them home; the campaign parent tracks every published manifest in a
:class:`SharedSegmentTracker` and unlinks all blocks when the campaign
finishes (or crashed workers leave them behind — the parent sweep
covers those too).  Attachment is strictly best-effort: a missing or
already-unlinked block falls back to the ordinary disk load, so shared
memory is a fast path, never a correctness dependency.
"""

from __future__ import annotations

import json
import os
import pathlib
import secrets
from typing import Iterable

import numpy as np

try:  # pragma: no cover - stdlib since 3.8, but keep the import gated
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "HAVE_SHM",
    "SHM_MANIFEST_VERSION",
    "publish_arrays",
    "attach_arrays",
    "unlink_manifest",
    "manifest_nbytes",
    "SharedSegmentTracker",
]

HAVE_SHM = shared_memory is not None

SHM_MANIFEST_VERSION = 1


def _block_name(token: str, array: str) -> str:
    """A host-unique shm block name, short enough for POSIX limits."""
    suffix = secrets.token_hex(4)
    return f"repro-{token[:12]}-{array[:24]}-{os.getpid()}-{suffix}"


def _untrack(name: str) -> None:
    """Detach a segment from this process's resource tracker.

    On 3.11/3.12 *attaching* a segment also registers it with the
    resource tracker, which would unlink it when the attaching process
    exits — destroying a block the publisher's other consumers still
    need.  Ownership lives with the campaign parent, so every
    non-owning process unregisters.
    """
    if resource_tracker is None:  # pragma: no cover
        return
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except (KeyError, ValueError):  # pragma: no cover - already untracked
        pass


def publish_arrays(token: str, arrays: dict[str, np.ndarray]) -> dict:
    """Copy arrays into fresh shm blocks; return the JSON-able manifest.

    The publishing worker keeps no handle: the segments persist in
    ``/dev/shm`` until the parent unlinks them.  Raises ``OSError`` when
    shared memory is unavailable or full — callers treat that as
    "publish skipped", never as a failure of the unit.
    """
    if not HAVE_SHM:
        raise OSError("multiprocessing.shared_memory is unavailable")
    manifest: dict = {"version": SHM_MANIFEST_VERSION, "token": token,
                      "pid": os.getpid(), "arrays": {}}
    created: list = []
    try:
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            block = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes),
                name=_block_name(token, name),
            )
            created.append(block)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
            view[...] = array
            del view
            manifest["arrays"][name] = {
                "shm": block.name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "nbytes": int(array.nbytes),
            }
    except BaseException:
        for block in created:
            try:
                block.close()
                block.unlink()
            except OSError:  # pragma: no cover - best-effort rollback
                pass
        raise
    for block in created:
        # The publisher is not the owner: keep the segment alive after
        # this process exits by handing tracking duty to the parent.
        _untrack(block.name)
        block.close()
    return manifest


def attach_arrays(manifest: dict) -> dict[str, np.ndarray] | None:
    """Materialise a manifest's arrays as copies out of shared memory.

    Returns ``None`` when any block is gone (unlinked by the parent or
    never published on this host) — the caller falls back to the disk
    cache.  Arrays are *copied* out so the segment can be unlinked while
    results built from it are still alive; the copy skips only the npz
    decompress, which is where the time goes.
    """
    if not HAVE_SHM or manifest.get("version") != SHM_MANIFEST_VERSION:
        return None
    arrays: dict[str, np.ndarray] = {}
    blocks = []
    try:
        for name, spec in manifest.get("arrays", {}).items():
            block = shared_memory.SharedMemory(name=spec["shm"])
            blocks.append(block)
            view = np.ndarray(
                tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]),
                buffer=block.buf,
            )
            arrays[name] = np.array(view, copy=True)
            del view
    except (OSError, ValueError, KeyError, TypeError):
        return None
    finally:
        for block in blocks:
            _untrack(block.name)
            try:
                block.close()
            except OSError:  # pragma: no cover
                pass
    return arrays


def unlink_manifest(manifest: dict) -> int:
    """Unlink every block a manifest names; returns how many existed.

    No ``_untrack`` here: attaching registered the block with this
    process's resource tracker, and ``SharedMemory.unlink`` unregisters
    it again — the pair balances exactly once.
    """
    if not HAVE_SHM:
        return 0
    removed = 0
    for spec in manifest.get("arrays", {}).values():
        try:
            block = shared_memory.SharedMemory(name=spec["shm"])
        except (OSError, ValueError):
            continue
        try:
            block.close()
            block.unlink()
            removed += 1
        except OSError:  # pragma: no cover - already gone
            pass
    return removed


def manifest_nbytes(manifest: dict) -> int:
    """Total bytes of shared memory a manifest describes (for sizing)."""
    return sum(int(spec.get("nbytes", 0))
               for spec in manifest.get("arrays", {}).values())


class SharedSegmentTracker:
    """Parent-side ledger of published shm manifests, by fingerprint.

    Workers report each manifest they publish; the parent records it
    here (idempotently — a takeover may republish a fingerprint) and
    unlinks everything at campaign end.  ``sweep`` also scans a queue
    directory for ``*.shm.json`` manifests written by workers that died
    before reporting, so no segment outlives the campaign.
    """

    def __init__(self) -> None:
        self._manifests: dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self._manifests)

    @property
    def total_nbytes(self) -> int:
        """Bytes of shared memory currently tracked."""
        return sum(manifest_nbytes(m) for m in self._manifests.values())

    def record(self, fingerprint: str, manifest: dict) -> None:
        """Track a published manifest (earlier publisher wins)."""
        if fingerprint in self._manifests:
            stored = self._manifests[fingerprint]
            if stored.get("arrays") != manifest.get("arrays"):
                # A takeover republished: both sets of blocks exist;
                # release the newcomer immediately, keep the original.
                unlink_manifest(manifest)
            return
        self._manifests[fingerprint] = manifest

    def sweep(self, queue_dir, fingerprints: Iterable[str] = ()) -> None:
        """Adopt manifests left on disk by workers that died unreported."""
        root = pathlib.Path(queue_dir)
        if not root.is_dir():
            return
        known = set(fingerprints) | set(self._manifests)
        for path in root.glob("*.shm.json"):
            fingerprint = path.name[: -len(".shm.json")]
            if fingerprint in self._manifests:
                continue
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if fingerprint in known or manifest.get("token") == fingerprint:
                self._manifests[fingerprint] = manifest

    def unlink_all(self) -> int:
        """Unlink every tracked segment; returns blocks removed."""
        removed = 0
        for manifest in self._manifests.values():
            removed += unlink_manifest(manifest)
        self._manifests.clear()
        return removed
