"""Experiment T-S2 — the §2 instrumentation-overhead accounting.

Paper claims (§2): turning on the tracing cost "a median increase of
~1-2% in CPU utilization, a small increase in disk utilization, a few
more cpu cycles per byte of network traffic and fewer than a Mbps drop
in network throughput even when the server was using the NIC at
capacity"; log volume exceeded 1 GB per server per day (petabyte over
two months cluster-wide); "compression reduces the network bandwidth
used by the measurement infrastructure by at least 10x".

This experiment serialises the campaign's actual socket log, measures
the real zlib compression ratio, and runs the cost model over the real
event counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..instrumentation.overhead import OverheadReport, estimate_overhead
from ..instrumentation.storage import compression_report
from .common import ExperimentDataset, build_dataset
from .registry import default_summary, experiment
from .reporting import Row

__all__ = ["TableS2Result", "run"]


@dataclass(frozen=True)
class TableS2Result:
    """Measured overhead accounting for the campaign."""

    report: OverheadReport
    compression: dict[str, float]

    def rows(self) -> list[Row]:
        """Paper-vs-measured table."""
        r = self.report
        return [
            Row("CPU utilisation increase", "small (median ~1%)",
                f"{r.cpu_utilization_increase_pct:.3f}%"),
            Row("CPU cycles per traffic byte", "a few",
                f"{r.cycles_per_traffic_byte:.3f}"),
            Row("disk utilisation increase", "small",
                f"{r.disk_utilization_increase_pct:.3f}%"),
            Row("log volume per server per day", "over 1 GB",
                f"{r.log_bytes_per_server_per_day / 1e9:.2f} GB"),
            Row("compression ratio", "at least 10x",
                f"{r.compression_ratio:.1f}x"),
            Row("throughput drop at line rate", "< 1 Mbps",
                f"{r.throughput_drop_mbps:.3f} Mbps"),
        ]


def _summarise(result: TableS2Result) -> dict[str, float]:
    # The numeric content lives on the nested OverheadReport.
    return default_summary(result.report)


@experiment("table_s2", figure="Table S2", title="instrumentation overhead",
            summarise=_summarise)
def run(dataset: ExperimentDataset | None = None) -> TableS2Result:
    """Measure instrumentation overhead on a (memoised) campaign."""
    if dataset is None:
        dataset = build_dataset()
    log = dataset.result.socket_log
    compression = compression_report(log)
    report = estimate_overhead(
        events=len(log),
        traffic_bytes=log.total_bytes(),
        raw_log_bytes=compression["raw_bytes"],
        compressed_log_bytes=compression["compressed_bytes"],
        duration=dataset.config.duration,
        num_servers=dataset.result.topology.num_servers,
    )
    return TableS2Result(report=report, compression=compression)
