"""The shared §5 tomography study behind experiments F12, F13 and F14.

Follows the paper's methodology exactly: "We compute link counts from the
ground truth TM and measure how well the TM estimated by tomography from
these link counts approximates the true TM", at ToR granularity, over a
sequence of fixed windows (the paper uses 96 ten-minute TMs over a day;
the scaled campaign uses 100 s windows, wide enough that several
concurrent jobs mix in each TM).

Three estimators are compared: (i) tomogravity, (ii) tomogravity with the
job-metadata prior, (iii) sparsity maximisation.  The MILP is expensive,
so it runs on a configurable subset of windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.routing import tor_routing_matrix
from ..core.traffic_matrix import server_tm_to_tor_tm
from ..tomography.gravity import gravity_prior_for_pairs
from ..tomography.jobprior import job_affinity_matrix, job_aware_prior
from ..tomography.metrics import (
    fraction_of_entries_for_volume,
    heavy_hitter_overlap,
    nonzero_count,
    rmsre,
)
from ..tomography.sparsity import sparsity_max_estimate
from ..tomography.tomogravity import tomogravity_estimate
from .common import ExperimentDataset, build_dataset

__all__ = ["WindowEstimate", "TomographyStudy", "run_study"]


@dataclass(frozen=True)
class WindowEstimate:
    """Ground truth and estimates for one TM window."""

    window_index: int
    start_time: float
    truth: np.ndarray
    tomogravity: np.ndarray
    job_prior: np.ndarray
    sparsity: np.ndarray | None

    def rmsre_tomogravity(self) -> float:
        """RMSRE of plain tomogravity in this window."""
        return rmsre(self.truth, self.tomogravity)

    def rmsre_job_prior(self) -> float:
        """RMSRE of job-augmented tomogravity."""
        return rmsre(self.truth, self.job_prior)

    def rmsre_sparsity(self) -> float:
        """RMSRE of sparsity maximisation (NaN if not run here)."""
        if self.sparsity is None:
            return float("nan")
        return rmsre(self.truth, self.sparsity)

    def truth_sparsity(self) -> float:
        """Fraction of entries carrying 75% of true volume."""
        return fraction_of_entries_for_volume(self.truth)


@dataclass
class TomographyStudy:
    """All window estimates plus the aggregate series Figs 12-14 plot."""

    pairs: list[tuple[int, int]]
    num_racks: int
    windows: list[WindowEstimate] = field(default_factory=list)

    def _collect(self, metric) -> np.ndarray:
        values = np.array([metric(w) for w in self.windows])
        return values[np.isfinite(values)]

    @property
    def tomogravity_errors(self) -> np.ndarray:
        """Per-window tomogravity RMSRE (Fig 12's main CDF)."""
        return self._collect(WindowEstimate.rmsre_tomogravity)

    @property
    def job_prior_errors(self) -> np.ndarray:
        """Per-window job-augmented RMSRE."""
        return self._collect(WindowEstimate.rmsre_job_prior)

    @property
    def sparsity_errors(self) -> np.ndarray:
        """Per-window sparsity-max RMSRE (windows where the MILP ran)."""
        return self._collect(WindowEstimate.rmsre_sparsity)

    @property
    def truth_sparsity_fractions(self) -> np.ndarray:
        """Per-window fraction of entries carrying 75% of true volume."""
        return self._collect(WindowEstimate.truth_sparsity)

    def sparsity_fractions(self, method: str) -> np.ndarray:
        """Entries-for-75%-volume fractions for an estimator's TMs."""
        values = []
        for window in self.windows:
            estimate = {
                "truth": window.truth,
                "tomogravity": window.tomogravity,
                "job_prior": window.job_prior,
                "sparsity": window.sparsity,
            }[method]
            if estimate is None:
                continue
            fraction = fraction_of_entries_for_volume(estimate)
            if np.isfinite(fraction):
                values.append(fraction)
        return np.asarray(values)

    def sparsity_nonzeros(self) -> list[int]:
        """Non-zero entry counts of the sparsity-maximised TMs."""
        return [
            nonzero_count(w.sparsity) for w in self.windows if w.sparsity is not None
        ]

    def sparsity_heavy_hitter_overlaps(self) -> list[int]:
        """Per-window overlap between MILP non-zeros and true heavy hitters."""
        return [
            heavy_hitter_overlap(w.truth, w.sparsity)
            for w in self.windows
            if w.sparsity is not None
        ]


def run_study(
    dataset: ExperimentDataset | None = None,
    window: float = 100.0,
    sparsity_windows: int = 6,
    sparsity_time_limit: float = 8.0,
    job_prior_strength: float = 1.0,
) -> TomographyStudy:
    """Run (or fetch the cached) tomography study for a campaign."""
    if dataset is None:
        dataset = build_dataset()
    cache_key = ("tomography_study", window, sparsity_windows,
                 sparsity_time_limit, job_prior_strength)
    cached = dataset.extras.get(cache_key)
    if cached is not None:
        return cached

    topology = dataset.result.topology
    routing, pairs, _observed = tor_routing_matrix(topology)
    factor = max(1, int(round(window / dataset.tm10.window)))
    series = dataset.tm10.aggregate(factor)
    study = TomographyStudy(pairs=pairs, num_racks=topology.num_racks)

    totals = series.totals_per_window()
    busy = totals > 0.05 * totals.mean() if totals.size else np.empty(0, dtype=bool)
    busy_indices = np.flatnonzero(busy)
    if sparsity_windows > 0 and busy_indices.size:
        step = max(1, busy_indices.size // sparsity_windows)
        milp_windows = set(busy_indices[::step][:sparsity_windows].tolist())
    else:
        milp_windows = set()

    applog = dataset.result.applog
    for index in busy_indices:
        tor_tm = server_tm_to_tor_tm(
            series.matrices[index], topology, series.endpoint_ids
        )
        truth = np.array([tor_tm[i, j] for i, j in pairs])
        if truth.sum() <= 0:
            continue
        link_counts = routing @ truth
        out_totals = tor_tm.sum(axis=1)
        in_totals = tor_tm.sum(axis=0)
        prior = gravity_prior_for_pairs(out_totals, in_totals, pairs)
        tomogravity = tomogravity_estimate(routing, link_counts, prior)
        start = index * series.window
        affinity = job_affinity_matrix(applog, topology, start, start + series.window)
        modulated = job_aware_prior(out_totals, in_totals, affinity,
                                    strength=job_prior_strength)
        job_prior_vec = np.array([modulated[i, j] for i, j in pairs])
        job_estimate = tomogravity_estimate(routing, link_counts, job_prior_vec)
        sparse_estimate = None
        if index in milp_windows:
            try:
                sparse_estimate = sparsity_max_estimate(
                    routing, link_counts, time_limit=sparsity_time_limit
                )
            except RuntimeError:
                sparse_estimate = None
        study.windows.append(
            WindowEstimate(
                window_index=int(index),
                start_time=start,
                truth=truth,
                tomogravity=tomogravity,
                job_prior=job_estimate,
                sparsity=sparse_estimate,
            )
        )
    dataset.extras[cache_key] = study
    return study
