"""Topology studies: what the measured tree could not explore.

The paper's cluster is a 1:5-oversubscribed two-tier tree — its
congestion findings (§4.2) are partly artefacts of that fabric.  These
experiments re-run matched workloads over the topology family
(:mod:`repro.cluster.fabrics`) to separate the workload's contribution
from the fabric's:

* **topo_ecmp_vs_flowlet** — the classic ECMP pathology on a multi-path
  fabric: adversarially-colliding flow labels pin every sender onto one
  spine uplink, while flowlet switching re-hashes at burst boundaries
  and spreads the same connections across the fabric.  Flowlet must win
  on goodput and tail FCT — the canonical multi-path argument, made
  deterministic.
* **topo_fabric_sweep** — one empirical (DCT²Gen-style) workload at a
  matched target load over the tree, a k=4 fat-tree and a leaf-spine
  with the same server count, reporting bisection bandwidth, goodput
  and FCT percentiles per fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.routing import EcmpRouter, Router
from ..cluster.topology import ClusterSpec
from ..config import SimulationConfig
from ..simulation.cc.scenarios import empty_schedule
from ..simulation.simulator import Simulator
from ..simulation.transport import TransferMeta
from ..synthetic.empirical import EmpiricalWorkload, flow_size_mix
from ..util.units import GBPS
from .registry import experiment
from .reporting import Row

__all__ = [
    "RoutingRunProfile",
    "EcmpFlowletStudy",
    "run_ecmp_vs_flowlet",
    "FabricRunProfile",
    "FabricSweep",
    "run_fabric_sweep",
]

#: Bursts per connection in the hotspot scenario.  Each inter-burst gap
#: exceeds the flowlet idle gap, so flowlet routing gets this many
#: re-hash opportunities per connection while ECMP stays pinned.
HOTSPOT_BURSTS = 6

#: Simulated gap between a burst's completion and the next launch, s.
#: Chosen above ``DEFAULT_FLOWLET_GAP`` (0.05 s).
HOTSPOT_GAP = 0.08

#: Bytes per burst.  At the pinned 8-flows-on-one-2-Gbps-uplink rate a
#: burst takes ~0.13 s — long enough to be bandwidth- not RTT-bound.
HOTSPOT_BURST_BYTES = 4_000_000.0


def _hotspot_spec() -> ClusterSpec:
    """The hotspot fabric: 4 leaves x 2 spines, thin 2 Gbps uplinks.

    Eight 1 Gbps senders on leaf 0 offer 8 Gbps against 2 x 2 Gbps of
    uplink, so the fabric only delivers its fair share when both spines
    carry traffic — exactly what pinned ECMP labels prevent.
    """
    return ClusterSpec.leaf_spine(
        racks=4,
        spines=2,
        servers_per_rack=8,
        tor_uplink_capacity=2 * GBPS,
        external_hosts=0,
    )


def _pinned_keys(
    topology, seed: int, pairs: list[tuple[int, int]]
) -> list[tuple[int, int, int]]:
    """Connection keys that all ECMP-hash onto the same spine.

    For each (src, dst) pair, search a small salt space for a key whose
    ECMP choice is the pair's *first* equal-cost path — the one through
    spine 0.  With 2 spines a salt is found in ~2 tries; the search is
    deterministic in ``seed`` so the whole scenario is.
    """
    router = EcmpRouter(topology, seed=seed)
    keys = []
    for src, dst in pairs:
        target = router.equal_cost_paths(src, dst)[0]
        for salt in range(256):
            key = (src, dst, salt)
            if router.path_for_flow(src, dst, key=key) == target:
                keys.append(key)
                break
        else:  # pragma: no cover - 2^-256 under any sane hash
            raise RuntimeError("no pinning salt found; hash degenerate?")
    return keys


@dataclass(frozen=True)
class RoutingRunProfile:
    """Measured outcome of the hotspot scenario under one routing impl."""

    routing_impl: str
    #: Flows (bursts) that completed inside the campaign window.
    completed: int
    #: First launch to last completion, seconds.
    makespan: float
    #: Delivered bytes over the makespan, B/s.
    goodput: float
    #: Sorted per-connection total completion times (first launch to
    #: that connection's last burst), seconds.
    connection_fct: tuple[float, ...]

    @property
    def p99_fct(self) -> float:
        """99th-percentile per-connection completion time, seconds."""
        return float(np.quantile(self.connection_fct, 0.99))

    @property
    def mean_fct(self) -> float:
        """Mean per-connection completion time, seconds."""
        return float(np.mean(self.connection_fct))


@dataclass(frozen=True)
class EcmpFlowletStudy:
    """topo_ecmp_vs_flowlet: hash-collision hotspot, ECMP vs flowlet."""

    n_connections: int
    bursts_per_connection: int
    burst_bytes: float
    ecmp: RoutingRunProfile
    flowlet: RoutingRunProfile

    @property
    def goodput_gain(self) -> float:
        """Flowlet goodput over ECMP goodput (> 1 means flowlet wins)."""
        return self.flowlet.goodput / self.ecmp.goodput

    @property
    def p99_reduction(self) -> float:
        """Fraction of the ECMP p99 FCT that flowlet shaves off."""
        return 1.0 - self.flowlet.p99_fct / self.ecmp.p99_fct

    def rows(self) -> list[Row]:
        """Summary table."""
        return [
            Row("ecmp goodput (pinned labels)", "collapses to one spine",
                f"{self.ecmp.goodput / GBPS:.2f} Gbps"),
            Row("flowlet goodput (same labels)", "spreads across spines",
                f"{self.flowlet.goodput / GBPS:.2f} Gbps"),
            Row("flowlet / ecmp goodput", "> 1",
                f"{self.goodput_gain:.2f}x"),
            Row("p99 connection FCT ecmp -> flowlet", "drops",
                f"{self.ecmp.p99_fct:.3f} s -> {self.flowlet.p99_fct:.3f} s"),
        ]


def _summarise_ecmp_flowlet(result: EcmpFlowletStudy) -> dict[str, float]:
    out = {
        "goodput_gain": result.goodput_gain,
        "p99_reduction": result.p99_reduction,
    }
    for profile in (result.ecmp, result.flowlet):
        key = profile.routing_impl
        out[f"{key}.goodput"] = profile.goodput
        out[f"{key}.p99_fct"] = profile.p99_fct
        out[f"{key}.mean_fct"] = profile.mean_fct
        out[f"{key}.completed"] = float(profile.completed)
    return out


def _run_hotspot(routing_impl: str, seed: int) -> RoutingRunProfile:
    """Run the hotspot burst chains under one routing implementation."""
    spec = _hotspot_spec()
    config = SimulationConfig(
        cluster=spec,
        duration=30.0,
        seed=seed,
        routing_impl=routing_impl,
    )
    simulator = Simulator(config)
    topology = simulator.topology

    senders = list(topology.servers_in_rack(0))
    # Receivers spread over the other leaves: no shared access downlink.
    receivers = [
        topology.servers_in_rack(1 + i % (topology.num_racks - 1))[
            i // (topology.num_racks - 1)
        ]
        for i in range(len(senders))
    ]
    pairs = list(zip(senders, receivers))
    keys = _pinned_keys(topology, seed, pairs)

    start = 0.01
    first_launch = {}
    last_done = {}

    def launch(index: int, burst: int) -> None:
        src, dst = pairs[index]
        first_launch.setdefault(index, simulator.now())

        def done(transfer) -> None:
            last_done[index] = transfer.end_time
            if burst + 1 < HOTSPOT_BURSTS:
                simulator.engine.schedule(
                    transfer.end_time + HOTSPOT_GAP,
                    lambda: launch(index, burst + 1),
                )

        simulator.start_transfer(
            src, dst, HOTSPOT_BURST_BYTES,
            TransferMeta(kind="hotspot", connection_key=keys[index]),
            on_complete=done,
        )

    for index in range(len(pairs)):
        simulator.engine.schedule(start, lambda i=index: launch(i, 0))

    result = simulator.run(schedule=empty_schedule(config.duration))
    transfers = result.transfers
    makespan = max(t.end_time for t in transfers) - start
    fct = tuple(sorted(
        last_done[i] - first_launch[i] for i in sorted(last_done)
    ))
    return RoutingRunProfile(
        routing_impl=routing_impl,
        completed=len(transfers),
        makespan=makespan,
        goodput=sum(t.size for t in transfers) / makespan,
        connection_fct=fct,
    )


@experiment("topo_ecmp_vs_flowlet", figure="T1",
            title="ECMP hash collisions vs flowlet switching",
            kind="ablation", summarise=_summarise_ecmp_flowlet)
def run_ecmp_vs_flowlet(seed: int = 0) -> EcmpFlowletStudy:
    """The deterministic hash-collision hotspot, both routing impls.

    Connection keys are searched (per seed) so every ECMP flow pins to
    spine 0; the flowlet run uses the *same* keys and wins purely by
    re-hashing at burst boundaries.
    """
    ecmp = _run_hotspot("ecmp", seed)
    flowlet = _run_hotspot("flowlet", seed)
    return EcmpFlowletStudy(
        n_connections=len(ecmp.connection_fct),
        bursts_per_connection=HOTSPOT_BURSTS,
        burst_bytes=HOTSPOT_BURST_BYTES,
        ecmp=ecmp,
        flowlet=flowlet,
    )


# ------------------------------------------------------ topo_fabric_sweep


#: The matched 16-server fabrics the sweep compares.  Uplinks are
#: deliberately thin (1 Gbps per cable, against 2 x 1 Gbps of offered
#: NIC bandwidth per rack) so the *fabric* is the binding constraint:
#: the tree funnels each rack through one uplink while the multi-path
#: fabrics aggregate two, which is exactly the contrast the sweep is
#: meant to expose.
FABRIC_SPECS: dict[str, ClusterSpec] = {
    "tree": ClusterSpec(
        racks=8, servers_per_rack=2, racks_per_vlan=4, external_hosts=0,
        tor_uplink_capacity=1 * GBPS, agg_uplink_capacity=2 * GBPS,
    ),
    "fat_tree": ClusterSpec.fat_tree(
        k=4, servers_per_rack=2, external_hosts=0,
        tor_uplink_capacity=1 * GBPS, agg_uplink_capacity=1 * GBPS,
    ),
    "leaf_spine": ClusterSpec.leaf_spine(
        racks=8, spines=2, servers_per_rack=2, external_hosts=0,
        tor_uplink_capacity=1 * GBPS,
    ),
}


@dataclass(frozen=True)
class FabricRunProfile:
    """One fabric's outcome under the matched empirical workload."""

    topology_kind: str
    bisection_bandwidth: float
    offered_flows: int
    completed: int
    offered_bytes: float
    goodput: float
    #: Sorted completed-flow FCTs, seconds.
    fct: tuple[float, ...]

    @property
    def median_fct(self) -> float:
        return float(np.median(self.fct)) if self.fct else 0.0

    @property
    def p99_fct(self) -> float:
        return float(np.quantile(self.fct, 0.99)) if self.fct else 0.0


@dataclass(frozen=True)
class FabricSweep:
    """topo_fabric_sweep: one workload, three fabrics."""

    mix_name: str
    target_load: float
    duration: float
    profiles: tuple[FabricRunProfile, ...]

    def profile(self, kind: str) -> FabricRunProfile:
        """The profile for one fabric (KeyError when absent)."""
        for entry in self.profiles:
            if entry.topology_kind == kind:
                return entry
        raise KeyError(kind)

    @property
    def fat_tree_bisection_gain(self) -> float:
        """Fat-tree bisection bandwidth over the tree's."""
        return (
            self.profile("fat_tree").bisection_bandwidth
            / self.profile("tree").bisection_bandwidth
        )

    def rows(self) -> list[Row]:
        """Summary table."""
        rows = []
        for p in self.profiles:
            rows.append(Row(
                f"{p.topology_kind}: bisection / goodput",
                "fat-tree richest",
                f"{p.bisection_bandwidth / GBPS:.1f} Gbps / "
                f"{p.goodput / GBPS:.2f} Gbps",
            ))
            rows.append(Row(
                f"{p.topology_kind}: median / p99 FCT",
                "load-dependent",
                f"{p.median_fct * 1e3:.1f} / {p.p99_fct * 1e3:.1f} ms",
            ))
        return rows


def _summarise_fabric_sweep(result: FabricSweep) -> dict[str, float]:
    out = {"fat_tree_bisection_gain": result.fat_tree_bisection_gain}
    for p in result.profiles:
        key = p.topology_kind
        out[f"{key}.bisection_bandwidth"] = p.bisection_bandwidth
        out[f"{key}.goodput"] = p.goodput
        out[f"{key}.completed"] = float(p.completed)
        out[f"{key}.median_fct"] = p.median_fct
        out[f"{key}.p99_fct"] = p.p99_fct
    return out


def _run_fabric(
    kind: str,
    spec: ClusterSpec,
    workload: EmpiricalWorkload,
    duration: float,
    seed: int,
) -> FabricRunProfile:
    """Drive the generated flow schedule through one fabric."""
    from ..cluster.routing import bisection_bandwidth

    config = SimulationConfig(
        cluster=spec,
        duration=duration,
        seed=seed,
        routing_impl="ecmp",
    )
    simulator = Simulator(config)
    topology = simulator.topology
    flows = workload.generate(topology, duration * 0.8, seed=seed)

    def launch(index: int) -> None:
        simulator.start_transfer(
            int(flows.src[index]),
            int(flows.dst[index]),
            float(flows.size[index]),
            TransferMeta(kind="empirical", connection_key=("emp", index)),
            on_complete=lambda transfer: None,
        )

    for index in range(len(flows)):
        simulator.engine.schedule(
            float(flows.start[index]), lambda i=index: launch(i)
        )

    result = simulator.run(schedule=empty_schedule(duration))
    transfers = result.transfers
    window = (
        max(t.end_time for t in transfers) - min(t.start_time for t in transfers)
        if transfers else duration
    )
    return FabricRunProfile(
        topology_kind=kind,
        bisection_bandwidth=bisection_bandwidth(topology),
        offered_flows=len(flows),
        completed=len(transfers),
        offered_bytes=flows.total_bytes,
        goodput=sum(t.size for t in transfers) / max(window, 1e-12),
        fct=tuple(sorted(t.duration for t in transfers)),
    )


@experiment("topo_fabric_sweep", figure="T2",
            title="matched workload across the topology family",
            kind="ablation", summarise=_summarise_fabric_sweep)
def run_fabric_sweep(
    seed: int = 0,
    mix_name: str = "websearch",
    target_load: float = 0.25,
    duration: float = 5.0,
) -> FabricSweep:
    """Run one empirical workload over all three fabrics.

    The flow schedule is regenerated per fabric from the same seed and
    mix — topologies with equal server counts see statistically
    identical offered load, so goodput/FCT differences are the fabric's.
    """
    workload = EmpiricalWorkload(
        mix=flow_size_mix(mix_name),
        target_load=target_load,
        intra_rack_fraction=0.5,
    )
    profiles = tuple(
        _run_fabric(kind, spec, workload, duration, seed)
        for kind, spec in FABRIC_SPECS.items()
    )
    return FabricSweep(
        mix_name=mix_name,
        target_load=target_load,
        duration=duration,
        profiles=profiles,
    )
