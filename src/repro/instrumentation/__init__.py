"""Instrumentation substrate: socket events, app logs, storage, SNMP."""

from .applog import ApplicationLog
from .collector import ClusterCollector, CollectorConfig
from .events import DIRECTION_RECV, DIRECTION_SEND, SocketEvent, SocketEventLog
from .overhead import OverheadModel, OverheadReport, estimate_overhead
from .sampling import SampledFlowTable, sample_flows, sampling_bias_report
from .snmp import SnmpDump, poll_link_counters
from .storage import SerializedLog, compression_report, deserialize_log, serialize_log

__all__ = [
    "ApplicationLog",
    "ClusterCollector",
    "CollectorConfig",
    "SocketEvent",
    "SocketEventLog",
    "DIRECTION_SEND",
    "DIRECTION_RECV",
    "SampledFlowTable",
    "sample_flows",
    "sampling_bias_report",
    "OverheadModel",
    "OverheadReport",
    "estimate_overhead",
    "SnmpDump",
    "poll_link_counters",
    "SerializedLog",
    "serialize_log",
    "deserialize_log",
    "compression_report",
]
