"""Instrumentation substrate: socket events, app logs, storage, SNMP.

The measurement apparatus of the paper, §2-§3: every server runs the
ETW-style socket-event collector (:mod:`~repro.instrumentation.collector`),
producing per-transfer send/receive events with clock skew and loss
(:mod:`~repro.instrumentation.events`); the platform writes job/phase
records to an application log (:mod:`~repro.instrumentation.applog`);
switches expose SNMP byte counters at coarse poll intervals
(:mod:`~repro.instrumentation.snmp`).

The companions quantify what instrumenting costs and what sampling
loses: :mod:`~repro.instrumentation.overhead` reproduces the Table S2
collection-overhead estimates, :mod:`~repro.instrumentation.sampling`
the flow-sampling bias analysis, and
:mod:`~repro.instrumentation.storage` the compressed event-log
serialization whose sizes the overhead model prices.
"""

from .applog import ApplicationLog
from .collector import ClusterCollector, CollectorConfig
from .events import DIRECTION_RECV, DIRECTION_SEND, SocketEvent, SocketEventLog
from .overhead import OverheadModel, OverheadReport, estimate_overhead
from .sampling import SampledFlowTable, sample_flows, sampling_bias_report
from .snmp import SnmpDump, poll_link_counters
from .storage import SerializedLog, compression_report, deserialize_log, serialize_log

__all__ = [
    "ApplicationLog",
    "ClusterCollector",
    "CollectorConfig",
    "SocketEvent",
    "SocketEventLog",
    "DIRECTION_SEND",
    "DIRECTION_RECV",
    "SampledFlowTable",
    "sample_flows",
    "sampling_bias_report",
    "OverheadModel",
    "OverheadReport",
    "estimate_overhead",
    "SnmpDump",
    "poll_link_counters",
    "SerializedLog",
    "serialize_log",
    "deserialize_log",
    "compression_report",
]
