"""Application-level logs: job queues, phase records, error codes.

"In addition to network level events, we collect and use application logs
(job queues, process error codes, completion times etc.) to see which
applications generate what network traffic as well as how network
artifacts (congestion etc.) impact applications" (paper §2).  The
analyses that need this log: traffic attribution to phases (§4.2), the
read-failure impact study (Fig 8), and the job-metadata tomography prior
(§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "JobStartRecord",
    "JobEndRecord",
    "PhaseStartRecord",
    "PhaseEndRecord",
    "VertexStartRecord",
    "VertexEndRecord",
    "ReadFailureRecord",
    "EvacuationRecord",
    "ApplicationLog",
]


@dataclass(frozen=True)
class JobStartRecord:
    """A job left the queue and began running."""

    job_id: int
    name: str
    template: str
    time: float


@dataclass(frozen=True)
class JobEndRecord:
    """A job reached a terminal state."""

    job_id: int
    outcome: str  # "succeeded" | "killed_read_failure"
    time: float
    read_failures: int


@dataclass(frozen=True)
class PhaseStartRecord:
    """A phase's first vertex became runnable."""

    job_id: int
    phase_index: int
    phase_type: str
    time: float


@dataclass(frozen=True)
class PhaseEndRecord:
    """A phase's last vertex finished."""

    job_id: int
    phase_index: int
    time: float


@dataclass(frozen=True)
class VertexStartRecord:
    """A vertex was placed on a server and began fetching input."""

    vertex_id: int
    job_id: int
    phase_index: int
    server: int
    locality: str
    time: float


@dataclass(frozen=True)
class VertexEndRecord:
    """A vertex finished computing."""

    vertex_id: int
    job_id: int
    phase_index: int
    time: float
    read_failures: int
    remote_bytes: float


@dataclass(frozen=True)
class ReadFailureRecord:
    """A vertex was "unable to read input(s)" (§4.2): could not find its
    data, could not connect, or made no steady progress."""

    job_id: int
    vertex_id: int
    src: int
    dst: int
    time: float


@dataclass(frozen=True)
class EvacuationRecord:
    """The automated management system drained a problem server."""

    server: int
    time: float
    blocks_moved: int


@dataclass
class ApplicationLog:
    """Append-only store of application events with query helpers.

    Queries (``job_outcome``, ``job_interval``, ``phase_type_of``) are
    O(1): the recording methods maintain dict indexes alongside the raw
    record lists.  A campaign logs tens of thousands of records and the
    impact/attribution analyses query per job, so linear scans here made
    those analyses quadratic.  First-wins semantics are preserved: a
    duplicate start/end record never overwrites the indexed one.
    """

    job_starts: list[JobStartRecord] = field(default_factory=list)
    job_ends: list[JobEndRecord] = field(default_factory=list)
    phase_starts: list[PhaseStartRecord] = field(default_factory=list)
    phase_ends: list[PhaseEndRecord] = field(default_factory=list)
    vertex_starts: list[VertexStartRecord] = field(default_factory=list)
    vertex_ends: list[VertexEndRecord] = field(default_factory=list)
    read_failures: list[ReadFailureRecord] = field(default_factory=list)
    evacuations: list[EvacuationRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Indexes are rebuilt from any records passed to the constructor
        # so a log restored from storage queries identically.
        self._job_start_time: dict[int, float] = {}
        self._job_end_by_id: dict[int, JobEndRecord] = {}
        self._phase_type: dict[tuple[int, int], str] = {}
        self._last_vertex_end: dict[int, float] = {}
        for start in self.job_starts:
            self._job_start_time.setdefault(start.job_id, start.time)
        for end in self.job_ends:
            self._job_end_by_id.setdefault(end.job_id, end)
        for phase in self.phase_starts:
            self._phase_type.setdefault(
                (phase.job_id, phase.phase_index), phase.phase_type
            )
        for vertex in self.vertex_ends:
            self._index_vertex_end(vertex)

    def _index_vertex_end(self, record: VertexEndRecord) -> None:
        previous = self._last_vertex_end.get(record.job_id)
        if previous is None or record.time > previous:
            self._last_vertex_end[record.job_id] = record.time

    # ------------------------------------------------------------ recording

    def record_job_start(self, job_id: int, name: str, template: str,
                         time: float) -> None:
        """Log a job start."""
        self.job_starts.append(JobStartRecord(job_id, name, template, time))
        self._job_start_time.setdefault(job_id, time)

    def record_job_end(self, job_id: int, outcome: str, time: float,
                       read_failures: int) -> None:
        """Log a job's terminal state."""
        record = JobEndRecord(job_id, outcome, time, read_failures)
        self.job_ends.append(record)
        self._job_end_by_id.setdefault(job_id, record)

    def record_phase_start(self, job_id: int, phase_index: int, phase_type: str,
                           time: float) -> None:
        """Log a phase start."""
        self.phase_starts.append(
            PhaseStartRecord(job_id, phase_index, phase_type, time)
        )
        self._phase_type.setdefault((job_id, phase_index), phase_type)

    def record_phase_end(self, job_id: int, phase_index: int, time: float) -> None:
        """Log a phase end."""
        self.phase_ends.append(PhaseEndRecord(job_id, phase_index, time))

    def record_vertex_start(self, vertex_id: int, job_id: int, phase_index: int,
                            server: int, locality: str, time: float) -> None:
        """Log a vertex placement."""
        self.vertex_starts.append(
            VertexStartRecord(vertex_id, job_id, phase_index, server, locality, time)
        )

    def record_vertex_end(self, vertex_id: int, job_id: int, phase_index: int,
                          time: float, read_failures: int, remote_bytes: float) -> None:
        """Log a vertex completion."""
        record = VertexEndRecord(vertex_id, job_id, phase_index, time,
                                 read_failures, remote_bytes)
        self.vertex_ends.append(record)
        self._index_vertex_end(record)

    def record_read_failure(self, job_id: int, vertex_id: int, src: int, dst: int,
                            time: float) -> None:
        """Log one failed input read."""
        self.read_failures.append(
            ReadFailureRecord(job_id, vertex_id, src, dst, time)
        )

    def record_evacuation(self, server: int, time: float, blocks_moved: int) -> None:
        """Log a server evacuation."""
        self.evacuations.append(EvacuationRecord(server, time, blocks_moved))

    # -------------------------------------------------------------- queries

    def jobs_seen(self) -> list[int]:
        """All job ids that started, in start order."""
        return [record.job_id for record in self.job_starts]

    def job_outcome(self, job_id: int) -> str | None:
        """Terminal outcome of a job, or ``None`` if it never ended."""
        record = self._job_end_by_id.get(job_id)
        return record.outcome if record is not None else None

    def job_interval(self, job_id: int) -> tuple[float, float] | None:
        """(start, end) of a job; end falls back to the last record seen."""
        start = self._job_start_time.get(job_id)
        if start is None:
            return None
        end_record = self._job_end_by_id.get(job_id)
        if end_record is not None:
            return (start, end_record.time)
        return (start, self._last_vertex_end.get(job_id, start))

    def jobs_with_read_failures(self) -> set[int]:
        """Job ids that logged at least one read failure."""
        return {record.job_id for record in self.read_failures}

    def servers_by_job(self) -> dict[int, set[int]]:
        """Which servers ran instances (vertices) of each job (§5.3 prior)."""
        placements: dict[int, set[int]] = {}
        for record in self.vertex_starts:
            placements.setdefault(record.job_id, set()).add(record.server)
        return placements

    def phase_type_of(self, job_id: int, phase_index: int) -> str | None:
        """The declared type of a phase, if its start was logged."""
        return self._phase_type.get((job_id, phase_index))
