"""Application-level logs: job queues, phase records, error codes.

"In addition to network level events, we collect and use application logs
(job queues, process error codes, completion times etc.) to see which
applications generate what network traffic as well as how network
artifacts (congestion etc.) impact applications" (paper §2).  The
analyses that need this log: traffic attribution to phases (§4.2), the
read-failure impact study (Fig 8), and the job-metadata tomography prior
(§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "JobStartRecord",
    "JobEndRecord",
    "PhaseStartRecord",
    "PhaseEndRecord",
    "VertexStartRecord",
    "VertexEndRecord",
    "ReadFailureRecord",
    "EvacuationRecord",
    "ApplicationLog",
]


@dataclass(frozen=True)
class JobStartRecord:
    """A job left the queue and began running."""

    job_id: int
    name: str
    template: str
    time: float


@dataclass(frozen=True)
class JobEndRecord:
    """A job reached a terminal state."""

    job_id: int
    outcome: str  # "succeeded" | "killed_read_failure"
    time: float
    read_failures: int


@dataclass(frozen=True)
class PhaseStartRecord:
    """A phase's first vertex became runnable."""

    job_id: int
    phase_index: int
    phase_type: str
    time: float


@dataclass(frozen=True)
class PhaseEndRecord:
    """A phase's last vertex finished."""

    job_id: int
    phase_index: int
    time: float


@dataclass(frozen=True)
class VertexStartRecord:
    """A vertex was placed on a server and began fetching input."""

    vertex_id: int
    job_id: int
    phase_index: int
    server: int
    locality: str
    time: float


@dataclass(frozen=True)
class VertexEndRecord:
    """A vertex finished computing."""

    vertex_id: int
    job_id: int
    phase_index: int
    time: float
    read_failures: int
    remote_bytes: float


@dataclass(frozen=True)
class ReadFailureRecord:
    """A vertex was "unable to read input(s)" (§4.2): could not find its
    data, could not connect, or made no steady progress."""

    job_id: int
    vertex_id: int
    src: int
    dst: int
    time: float


@dataclass(frozen=True)
class EvacuationRecord:
    """The automated management system drained a problem server."""

    server: int
    time: float
    blocks_moved: int


@dataclass
class ApplicationLog:
    """Append-only store of application events with query helpers."""

    job_starts: list[JobStartRecord] = field(default_factory=list)
    job_ends: list[JobEndRecord] = field(default_factory=list)
    phase_starts: list[PhaseStartRecord] = field(default_factory=list)
    phase_ends: list[PhaseEndRecord] = field(default_factory=list)
    vertex_starts: list[VertexStartRecord] = field(default_factory=list)
    vertex_ends: list[VertexEndRecord] = field(default_factory=list)
    read_failures: list[ReadFailureRecord] = field(default_factory=list)
    evacuations: list[EvacuationRecord] = field(default_factory=list)

    # ------------------------------------------------------------ recording

    def record_job_start(self, job_id: int, name: str, template: str,
                         time: float) -> None:
        """Log a job start."""
        self.job_starts.append(JobStartRecord(job_id, name, template, time))

    def record_job_end(self, job_id: int, outcome: str, time: float,
                       read_failures: int) -> None:
        """Log a job's terminal state."""
        self.job_ends.append(JobEndRecord(job_id, outcome, time, read_failures))

    def record_phase_start(self, job_id: int, phase_index: int, phase_type: str,
                           time: float) -> None:
        """Log a phase start."""
        self.phase_starts.append(
            PhaseStartRecord(job_id, phase_index, phase_type, time)
        )

    def record_phase_end(self, job_id: int, phase_index: int, time: float) -> None:
        """Log a phase end."""
        self.phase_ends.append(PhaseEndRecord(job_id, phase_index, time))

    def record_vertex_start(self, vertex_id: int, job_id: int, phase_index: int,
                            server: int, locality: str, time: float) -> None:
        """Log a vertex placement."""
        self.vertex_starts.append(
            VertexStartRecord(vertex_id, job_id, phase_index, server, locality, time)
        )

    def record_vertex_end(self, vertex_id: int, job_id: int, phase_index: int,
                          time: float, read_failures: int, remote_bytes: float) -> None:
        """Log a vertex completion."""
        self.vertex_ends.append(
            VertexEndRecord(vertex_id, job_id, phase_index, time, read_failures,
                            remote_bytes)
        )

    def record_read_failure(self, job_id: int, vertex_id: int, src: int, dst: int,
                            time: float) -> None:
        """Log one failed input read."""
        self.read_failures.append(
            ReadFailureRecord(job_id, vertex_id, src, dst, time)
        )

    def record_evacuation(self, server: int, time: float, blocks_moved: int) -> None:
        """Log a server evacuation."""
        self.evacuations.append(EvacuationRecord(server, time, blocks_moved))

    # -------------------------------------------------------------- queries

    def jobs_seen(self) -> list[int]:
        """All job ids that started, in start order."""
        return [record.job_id for record in self.job_starts]

    def job_outcome(self, job_id: int) -> str | None:
        """Terminal outcome of a job, or ``None`` if it never ended."""
        for record in self.job_ends:
            if record.job_id == job_id:
                return record.outcome
        return None

    def job_interval(self, job_id: int) -> tuple[float, float] | None:
        """(start, end) of a job; end falls back to the last record seen."""
        start = next(
            (r.time for r in self.job_starts if r.job_id == job_id), None
        )
        if start is None:
            return None
        end = next((r.time for r in self.job_ends if r.job_id == job_id), None)
        if end is None:
            end_candidates = [r.time for r in self.vertex_ends if r.job_id == job_id]
            end = max(end_candidates) if end_candidates else start
        return (start, end)

    def jobs_with_read_failures(self) -> set[int]:
        """Job ids that logged at least one read failure."""
        return {record.job_id for record in self.read_failures}

    def servers_by_job(self) -> dict[int, set[int]]:
        """Which servers ran instances (vertices) of each job (§5.3 prior)."""
        placements: dict[int, set[int]] = {}
        for record in self.vertex_starts:
            placements.setdefault(record.job_id, set()).add(record.server)
        return placements

    def phase_type_of(self, job_id: int, phase_index: int) -> str | None:
        """The declared type of a phase, if its start was logged."""
        for record in self.phase_starts:
            if record.job_id == job_id and record.phase_index == phase_index:
                return record.phase_type
        return None
