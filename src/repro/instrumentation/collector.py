"""The cluster-wide socket-event collector (the ETW stand-in).

Each cluster server runs a lightweight tracing session that logs one
event per application-level socket read or write.  This module replays
completed transport :class:`~repro.simulation.transport.Transfer`\\ s into
those events:

* the *sender* logs write events, the *receiver* logs read events —
  external hosts are outside the instrumented cluster and log nothing;
* large transfers appear as several chunked events spread over the
  transfer's lifetime (one per application write), small ones as a single
  event — "which aggregates over several packets" (§2);
* repeated transfers on the same logical connection (same
  ``connection_key``) reuse their ephemeral port, so the analysis layer
  sees one five-tuple with idle gaps — exactly the situation the paper's
  60 s inactivity timeout exists to split;
* every server stamps events with its own skewed clock: "clocks across
  the various servers are not synchronized but also not too far skewed to
  affect the subsequent analysis" (§3).

The collector also counts what instrumentation itself costs (events,
bytes), feeding the §2 overhead table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterTopology
from ..simulation.transport import Transfer
from ..util.units import MB
from .events import DIRECTION_RECV, DIRECTION_SEND, NO_CONTEXT, SocketEventLog

__all__ = ["CollectorConfig", "ClusterCollector", "SERVICE_PORTS"]

#: Well-known destination ports per traffic kind (the storage daemon,
#: shuffle service, job-manager RPC port, and so on).
SERVICE_PORTS: dict[str, int] = {
    "fetch": 8400,
    "replication": 8500,
    "control": 8600,
    "ingest": 8700,
    "egress": 8750,
    "evacuation": 8800,
    "unknown": 8999,
}

_EPHEMERAL_BASE = 49152
_EPHEMERAL_SPAN = 16000
_TCP = 6


@dataclass(frozen=True)
class CollectorConfig:
    """Tracing parameters.

    ``chunk_bytes`` is the application's write size: a transfer of
    ``n`` bytes yields roughly ``n / chunk_bytes`` events per side, capped
    at ``max_events_per_transfer`` (ETW coalesces under load).
    """

    chunk_bytes: float = 16 * MB
    max_events_per_transfer: int = 6
    clock_skew_max: float = 0.05
    protocol: int = _TCP

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.max_events_per_transfer < 1:
            raise ValueError("max_events_per_transfer must be >= 1")
        if self.clock_skew_max < 0:
            raise ValueError("clock_skew_max must be non-negative")


class ClusterCollector:
    """Observes completed transfers and emits socket events."""

    def __init__(
        self,
        topology: ClusterTopology,
        rng: np.random.Generator,
        config: CollectorConfig | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or CollectorConfig()
        self.log = SocketEventLog()
        self._rng = rng
        self._clock_offsets = rng.uniform(
            -self.config.clock_skew_max,
            self.config.clock_skew_max,
            size=topology.num_nodes,
        )
        self._connection_ports: dict[tuple, int] = {}
        self._ephemeral_next = np.full(topology.num_nodes, _EPHEMERAL_BASE, dtype=int)
        self.transfers_observed = 0
        self.bytes_observed = 0.0

    # ---------------------------------------------------------------- ports

    def _allocate_ephemeral(self, node: int) -> int:
        port = int(self._ephemeral_next[node])
        self._ephemeral_next[node] = (
            _EPHEMERAL_BASE + (port - _EPHEMERAL_BASE + 1) % _EPHEMERAL_SPAN
        )
        return port

    def _ports_for(self, transfer: Transfer) -> tuple[int, int]:
        """(src_port, dst_port) for a transfer's five-tuple.

        Data flows from the serving daemon (well-known port on the source)
        to the client's ephemeral port; the ephemeral port is sticky per
        ``connection_key``, modelling connection reuse.
        """
        kind = transfer.meta.kind if transfer.meta.kind in SERVICE_PORTS else "unknown"
        src_port = SERVICE_PORTS[kind]
        key = transfer.meta.connection_key
        if key is None:
            return src_port, self._allocate_ephemeral(transfer.dst)
        dst_port = self._connection_ports.get(key)
        if dst_port is None:
            dst_port = self._allocate_ephemeral(transfer.dst)
            self._connection_ports[key] = dst_port
        return src_port, dst_port

    # --------------------------------------------------------------- events

    def _event_schedule(self, transfer: Transfer) -> tuple[np.ndarray, float]:
        """Event times (true clock) and bytes per event for one transfer."""
        config = self.config
        chunks = int(np.ceil(transfer.size / config.chunk_bytes))
        count = max(1, min(chunks, config.max_events_per_transfer))
        if count == 1 or transfer.duration <= 0:
            times = np.array([transfer.start_time])
            count = 1
        else:
            times = np.linspace(transfer.start_time, transfer.end_time, count)
        return times, transfer.size / count

    def observe_transfer(self, transfer: Transfer) -> None:
        """Emit both sides' socket events for a completed transfer."""
        src_port, dst_port = self._ports_for(transfer)
        times, bytes_per_event = self._event_schedule(transfer)
        meta = transfer.meta
        job_id = meta.job_id if meta.job_id is not None else NO_CONTEXT
        phase = meta.phase_index if meta.phase_index is not None else NO_CONTEXT
        self.transfers_observed += 1
        self.bytes_observed += transfer.size
        for endpoint, direction in (
            (transfer.src, DIRECTION_SEND),
            (transfer.dst, DIRECTION_RECV),
        ):
            if self.topology.is_external(endpoint):
                continue  # outside the instrumented cluster
            offset = self._clock_offsets[endpoint]
            for time in times:
                self.log.append(
                    timestamp=float(time + offset),
                    server=endpoint,
                    direction=direction,
                    src=transfer.src,
                    src_port=src_port,
                    dst=transfer.dst,
                    dst_port=dst_port,
                    protocol=self.config.protocol,
                    num_bytes=bytes_per_event,
                    job_id=job_id,
                    phase_index=phase,
                )

    def finalize(self) -> SocketEventLog:
        """Freeze and return the cluster-wide event log."""
        self.log.finalize()
        return self.log

    # ------------------------------------------------------------- overhead

    def events_emitted(self) -> int:
        """Number of socket events logged so far."""
        return len(self.log)

    def clock_offset_of(self, server: int) -> float:
        """The (ground-truth) clock offset applied to one server's stamps."""
        return float(self._clock_offsets[server])
