"""Socket-level event records — the reproduction's ETW substrate.

The paper's measurement layer "uses ETW to obtain socket level events,
one per application read or write, which aggregates over several packets
and skips network chatter" (§2).  A :class:`SocketEventLog` holds those
events column-wise in numpy arrays: a simulated run produces hundreds of
thousands of events and the analysis pipeline consumes them with
vectorised operations, so an object per event would be both slow and
memory-hungry.

Events carry the five-tuple, the reporting server, a direction flag, the
byte count of the application read/write, and the process context
(job/phase) that the paper gets by merging with application logs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DIRECTION_SEND", "DIRECTION_RECV", "SocketEvent", "SocketEventLog"]

DIRECTION_SEND = 0
DIRECTION_RECV = 1

#: Sentinel for "no job context" in the integer job/phase columns.
NO_CONTEXT = -1


@dataclass(frozen=True)
class SocketEvent:
    """One application-level socket read or write (a row view)."""

    timestamp: float
    server: int
    direction: int
    src: int
    src_port: int
    dst: int
    dst_port: int
    protocol: int
    num_bytes: float
    job_id: int
    phase_index: int


class SocketEventLog:
    """Columnar, append-then-freeze store of socket events.

    Events are appended during simulation and then :meth:`finalize`\\ d
    into sorted numpy arrays.  All analysis entry points require a
    finalized log.
    """

    _COLUMNS = (
        ("timestamp", float),
        ("server", np.int64),
        ("direction", np.int8),
        ("src", np.int64),
        ("src_port", np.int64),
        ("dst", np.int64),
        ("dst_port", np.int64),
        ("protocol", np.int16),
        ("num_bytes", float),
        ("job_id", np.int64),
        ("phase_index", np.int64),
    )

    def __init__(self) -> None:
        self._buffers: dict[str, list] = {name: [] for name, _ in self._COLUMNS}
        self._arrays: dict[str, np.ndarray] | None = None

    @classmethod
    def column_spec(cls) -> tuple[tuple[str, type], ...]:
        """The ``(name, dtype)`` schema, in canonical column order."""
        return cls._COLUMNS

    @classmethod
    def from_columns(cls, columns: dict[str, np.ndarray]) -> "SocketEventLog":
        """Build a finalized log from a full set of column arrays.

        The inverse of :meth:`to_columns`; the trace reader uses it to
        rehydrate chunks.  Columns are coerced to the canonical dtypes
        and the result is time-sorted (stable), so already-sorted input
        round-trips unchanged.
        """
        names = {name for name, _ in cls._COLUMNS}
        if set(columns) != names:
            missing = sorted(names - set(columns))
            extra = sorted(set(columns) - names)
            raise ValueError(f"column mismatch: missing {missing}, extra {extra}")
        arrays = {
            name: np.asarray(columns[name], dtype=dtype)
            for name, dtype in cls._COLUMNS
        }
        sizes = {column.size for column in arrays.values()}
        if len(sizes) > 1:
            raise ValueError(f"columns have unequal lengths: {sorted(sizes)}")
        order = np.argsort(arrays["timestamp"], kind="stable")
        log = cls()
        log._arrays = {name: column[order] for name, column in arrays.items()}
        return log

    # ------------------------------------------------------------ appending

    def append(
        self,
        timestamp: float,
        server: int,
        direction: int,
        src: int,
        src_port: int,
        dst: int,
        dst_port: int,
        protocol: int,
        num_bytes: float,
        job_id: int = NO_CONTEXT,
        phase_index: int = NO_CONTEXT,
    ) -> None:
        """Append one event; only valid before :meth:`finalize`."""
        if self._arrays is not None:
            raise RuntimeError("cannot append to a finalized log")
        buffers = self._buffers
        buffers["timestamp"].append(timestamp)
        buffers["server"].append(server)
        buffers["direction"].append(direction)
        buffers["src"].append(src)
        buffers["src_port"].append(src_port)
        buffers["dst"].append(dst)
        buffers["dst_port"].append(dst_port)
        buffers["protocol"].append(protocol)
        buffers["num_bytes"].append(num_bytes)
        buffers["job_id"].append(job_id)
        buffers["phase_index"].append(phase_index)

    def drain_until(self, watermark: float = float("inf")) -> dict[str, np.ndarray]:
        """Remove and return buffered events with ``timestamp < watermark``.

        The returned columns are time-sorted with the same stable tie
        ordering :meth:`finalize` would have produced; events at or past
        the watermark stay buffered in append order.  This is the
        streaming counterpart of :meth:`finalize`: as long as the caller
        only drains up to a watermark no future event can precede (see
        ``Simulator.attach_event_stream``), concatenating the drained
        batches reproduces the finalized log exactly.
        """
        if self._arrays is not None:
            raise RuntimeError("cannot drain a finalized log")
        arrays = {
            name: np.asarray(self._buffers[name], dtype=dtype)
            for name, dtype in self._COLUMNS
        }
        times = arrays["timestamp"]
        emit = times < watermark
        order = np.argsort(times[emit], kind="stable")
        drained = {name: column[emit][order] for name, column in arrays.items()}
        keep = ~emit
        self._buffers = {
            name: column[keep].tolist() for name, column in arrays.items()
        }
        return drained

    def finalize(self) -> None:
        """Freeze the log: convert to numpy columns sorted by timestamp."""
        if self._arrays is not None:
            return
        arrays = {
            name: np.asarray(self._buffers[name], dtype=dtype)
            for name, dtype in self._COLUMNS
        }
        order = np.argsort(arrays["timestamp"], kind="stable")
        self._arrays = {name: column[order] for name, column in arrays.items()}
        self._buffers = {name: [] for name, _ in self._COLUMNS}

    # -------------------------------------------------------------- reading

    @property
    def finalized(self) -> bool:
        """True once the log has been frozen into numpy columns."""
        return self._arrays is not None

    def _require_finalized(self) -> dict[str, np.ndarray]:
        if self._arrays is None:
            raise RuntimeError("log must be finalized before reading")
        return self._arrays

    def __len__(self) -> int:
        if self._arrays is not None:
            return int(self._arrays["timestamp"].size)
        return len(self._buffers["timestamp"])

    def to_columns(self) -> dict[str, np.ndarray]:
        """All columns as a name → array dict (finalized logs only)."""
        return dict(self._require_finalized())

    def column(self, name: str) -> np.ndarray:
        """One full column by name (finalized logs only)."""
        arrays = self._require_finalized()
        if name not in arrays:
            raise KeyError(f"unknown column {name!r}")
        return arrays[name]

    def row(self, index: int) -> SocketEvent:
        """Materialise one event as a :class:`SocketEvent`."""
        arrays = self._require_finalized()
        return SocketEvent(
            timestamp=float(arrays["timestamp"][index]),
            server=int(arrays["server"][index]),
            direction=int(arrays["direction"][index]),
            src=int(arrays["src"][index]),
            src_port=int(arrays["src_port"][index]),
            dst=int(arrays["dst"][index]),
            dst_port=int(arrays["dst_port"][index]),
            protocol=int(arrays["protocol"][index]),
            num_bytes=float(arrays["num_bytes"][index]),
            job_id=int(arrays["job_id"][index]),
            phase_index=int(arrays["phase_index"][index]),
        )

    def select(self, mask: np.ndarray) -> "SocketEventLog":
        """A new finalized log containing only rows where ``mask`` is true."""
        arrays = self._require_finalized()
        subset = SocketEventLog()
        subset._arrays = {name: column[mask] for name, column in arrays.items()}
        return subset

    def events_on_server(self, server: int) -> "SocketEventLog":
        """The per-server view a single host's ETW session would hold."""
        return self.select(self.column("server") == server)

    def total_bytes(self, direction: int | None = DIRECTION_SEND) -> float:
        """Total bytes across events; by default send-side only, so the
        send+receive double-reporting does not double-count traffic."""
        arrays = self._require_finalized()
        if direction is None:
            return float(arrays["num_bytes"].sum())
        mask = arrays["direction"] == direction
        return float(arrays["num_bytes"][mask].sum())

    def time_span(self) -> tuple[float, float]:
        """(first, last) event timestamps; (0, 0) when empty."""
        arrays = self._require_finalized()
        times = arrays["timestamp"]
        if times.size == 0:
            return (0.0, 0.0)
        return (float(times[0]), float(times[-1]))
