"""Instrumentation overhead accounting (the paper's §2 cost claims).

The paper quantifies what cluster-wide tracing costs: a small median
increase in CPU utilisation, a small increase in disk utilisation, a few
CPU cycles per byte of network traffic, under a Mbps of throughput loss,
more than a GB of log per server per day, and ≥10x compression on upload.
This module computes the same accounting table from a simulated run's
actual event counts and measured compression ratio, plus a small cost
model for the per-event tracing work.

The per-event cycle cost models ETW's strength: "unlike packet capture
which involves an interrupt from the kernel's network stack for each
packet, we use ETW to obtain socket level events, one per application
read or write, which aggregates over several packets" (§2) — so cost
scales with *events*, not packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.units import DAY, GBPS, MB

__all__ = ["OverheadModel", "OverheadReport", "estimate_overhead"]


@dataclass(frozen=True)
class OverheadModel:
    """Hardware/cost assumptions for the overhead accounting."""

    #: CPU cycles to format and buffer one socket event (ETW is efficient).
    cycles_per_event: float = 4000.0
    #: Per-server CPU budget: clock × cores.
    cpu_hz: float = 2.5e9
    cores: int = 8
    #: Local disk streaming bandwidth available for log writes.
    disk_bandwidth: float = 100 * MB
    #: NIC line rate, for the throughput-loss estimate.
    nic_capacity: float = 1 * GBPS


@dataclass(frozen=True)
class OverheadReport:
    """The §2-style accounting table for one simulated run."""

    events: int
    traffic_bytes: float
    duration: float
    num_servers: int
    cpu_utilization_increase_pct: float
    cycles_per_traffic_byte: float
    disk_utilization_increase_pct: float
    log_bytes_per_server_per_day: float
    upload_rate_raw_mbps: float
    upload_rate_compressed_mbps: float
    compression_ratio: float
    throughput_drop_mbps: float

    def rows(self) -> list[tuple[str, str]]:
        """(metric, value) rows for tabular display."""
        return [
            ("events logged", f"{self.events}"),
            ("CPU utilisation increase (per server)",
             f"{self.cpu_utilization_increase_pct:.3f}%"),
            ("CPU cycles per byte of traffic", f"{self.cycles_per_traffic_byte:.3f}"),
            ("disk utilisation increase (per server)",
             f"{self.disk_utilization_increase_pct:.3f}%"),
            ("log volume per server per day",
             f"{self.log_bytes_per_server_per_day / 1e9:.2f} GB"),
            ("upload rate before compression",
             f"{self.upload_rate_raw_mbps:.3f} Mbps/server"),
            ("upload rate after compression",
             f"{self.upload_rate_compressed_mbps:.3f} Mbps/server"),
            ("compression ratio", f"{self.compression_ratio:.1f}x"),
            ("throughput drop at line rate", f"{self.throughput_drop_mbps:.3f} Mbps"),
        ]


def estimate_overhead(
    events: int,
    traffic_bytes: float,
    raw_log_bytes: float,
    compressed_log_bytes: float,
    duration: float,
    num_servers: int,
    model: OverheadModel | None = None,
) -> OverheadReport:
    """Build the overhead table from measured run statistics.

    ``raw_log_bytes``/``compressed_log_bytes`` come from
    :func:`repro.instrumentation.storage.compression_report`.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if num_servers <= 0:
        raise ValueError("num_servers must be positive")
    model = model or OverheadModel()
    events_per_server_per_sec = events / duration / num_servers
    tracing_cycles_per_sec = events_per_server_per_sec * model.cycles_per_event
    cpu_budget = model.cpu_hz * model.cores
    cpu_increase = tracing_cycles_per_sec / cpu_budget * 100.0

    total_cycles = events * model.cycles_per_event
    cycles_per_byte = total_cycles / traffic_bytes if traffic_bytes > 0 else 0.0

    log_write_rate = raw_log_bytes / duration / num_servers
    disk_increase = log_write_rate / model.disk_bandwidth * 100.0
    log_per_server_per_day = log_write_rate * DAY

    raw_mbps = raw_log_bytes / duration / num_servers * 8 / 1e6
    compressed_mbps = compressed_log_bytes / duration / num_servers * 8 / 1e6
    ratio = raw_log_bytes / compressed_log_bytes if compressed_log_bytes else float("inf")

    # At line rate the NIC loses the upload bandwidth plus the share of
    # packets delayed by tracing work; the latter is folded into the CPU
    # term, so the drop is the compressed upload stream itself.
    throughput_drop_mbps = compressed_mbps

    return OverheadReport(
        events=events,
        traffic_bytes=traffic_bytes,
        duration=duration,
        num_servers=num_servers,
        cpu_utilization_increase_pct=cpu_increase,
        cycles_per_traffic_byte=cycles_per_byte,
        disk_utilization_increase_pct=disk_increase,
        log_bytes_per_server_per_day=log_per_server_per_day,
        upload_rate_raw_mbps=raw_mbps,
        upload_rate_compressed_mbps=compressed_mbps,
        compression_ratio=ratio,
        throughput_drop_mbps=throughput_drop_mbps,
    )
