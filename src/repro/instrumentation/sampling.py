"""Sampled flow measurement — the §2 alternative the paper passed over.

"Sampled flow or sampled packet header level data can provide flow level
insight at the cost of keeping a higher volume of data for analysis and
for assurance that samples are representative" (§2).  This module
simulates the classic packet-sampled NetFlow pipeline so the trade-off
can be *measured* rather than asserted: packets are sampled i.i.d. with
probability ``1/N`` at the switch, flows are reconstructed from sampled
packets only, and byte/packet counts are scaled back up by ``N``.

The well-known failure mode this exposes: short flows (the bulk of
datacenter traffic, Fig 9) are missed entirely at practical sampling
rates, and the surviving estimates skew toward elephants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.flows import FlowTable

__all__ = ["SampledFlowTable", "sample_flows", "sampling_bias_report"]

#: Bytes per packet assumed when converting flow volumes to packet
#: counts (a full-size frame; datacenter bulk transfers run at MTU).
_PACKET_BYTES = 1500.0


@dataclass(frozen=True)
class SampledFlowTable:
    """Flows as a packet-sampling collector would report them.

    ``flows`` contains only the flows with at least one sampled packet;
    ``estimated_bytes`` holds the inverse-probability-scaled volume
    estimates aligned with it.  ``detected_fraction`` is the share of
    true flows that produced any sample at all.
    """

    flows: FlowTable
    estimated_bytes: np.ndarray
    sampling_rate: float
    detected_fraction: float


def sample_flows(
    flows: FlowTable,
    sampling_rate: float,
    rng: np.random.Generator,
    packet_bytes: float = _PACKET_BYTES,
) -> SampledFlowTable:
    """Simulate 1-in-N packet sampling over a reconstructed flow table.

    Each flow's packet count is ``ceil(bytes / packet_bytes)``; the number
    of sampled packets is Binomial(packets, rate).  Flows with zero
    sampled packets vanish, surviving flows get ``sampled / rate``
    packets' worth of estimated bytes — the standard NetFlow estimator.
    """
    if not 0 < sampling_rate <= 1:
        raise ValueError("sampling_rate must lie in (0, 1]")
    if packet_bytes <= 0:
        raise ValueError("packet_bytes must be positive")
    packets = np.maximum(np.ceil(flows.num_bytes / packet_bytes), 1).astype(np.int64)
    sampled = rng.binomial(packets, sampling_rate)
    seen = sampled > 0
    estimated = sampled[seen] / sampling_rate * packet_bytes
    return SampledFlowTable(
        flows=flows.select(seen),
        estimated_bytes=estimated,
        sampling_rate=sampling_rate,
        detected_fraction=float(seen.mean()) if len(flows) else 0.0,
    )


def sampling_bias_report(
    flows: FlowTable,
    sampling_rate: float,
    rng: np.random.Generator,
) -> dict[str, float]:
    """Quantify what sampling does to the paper's flow statistics.

    Returns a dict with the true and sampled views of: flow count,
    fraction of flows under 10 s, median flow size, and total bytes
    (scaled estimate vs truth).
    """
    sampled = sample_flows(flows, sampling_rate, rng)
    true_durations = flows.durations
    seen_durations = sampled.flows.durations

    def frac_under_10(durations: np.ndarray) -> float:
        if durations.size == 0:
            return float("nan")
        return float((durations < 10.0).mean())

    return {
        "sampling_rate": sampling_rate,
        "true_flows": float(len(flows)),
        "seen_flows": float(len(sampled.flows)),
        "detected_fraction": sampled.detected_fraction,
        "true_frac_under_10s": frac_under_10(true_durations),
        "seen_frac_under_10s": frac_under_10(seen_durations),
        "true_median_bytes": float(np.median(flows.num_bytes)) if len(flows) else float("nan"),
        "seen_median_bytes": (
            float(np.median(sampled.estimated_bytes))
            if sampled.estimated_bytes.size
            else float("nan")
        ),
        "true_total_bytes": flows.total_bytes(),
        "estimated_total_bytes": float(sampled.estimated_bytes.sum()),
    }
