"""SNMP-style link counters.

"SNMP counters, which support packet and byte counts across individual
switch interfaces ... are ubiquitously available on network devices.
However, logistic concerns on how often routers can be polled limit
availability to coarse time-scales, typically once every five minutes"
(paper §2).  This module exposes the transport's link-load ground truth
the way a poller would see it: per-interface cumulative byte counters
sampled at a coarse interval, for the inter-switch links only.

Tomography (paper §5) consumes these counters; so does any analysis that
wants to know what would have been visible *without* server
instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterTopology
from ..simulation.linkloads import LinkLoadTracker

__all__ = ["SnmpDump", "poll_link_counters"]


@dataclass(frozen=True)
class SnmpDump:
    """Counter table for the observable (inter-switch) links.

    ``bytes_per_poll[l, p]`` holds bytes carried by observed link ``l``
    during poll window ``p``; ``link_ids`` maps rows back to topology link
    ids and ``poll_times`` gives each window's start time.
    """

    link_ids: np.ndarray
    poll_interval: float
    bytes_per_poll: np.ndarray

    @property
    def num_polls(self) -> int:
        """Number of poll windows."""
        return int(self.bytes_per_poll.shape[1])

    @property
    def poll_times(self) -> np.ndarray:
        """Start time of every poll window."""
        return np.arange(self.num_polls) * self.poll_interval

    def utilization(self, capacities: np.ndarray) -> np.ndarray:
        """Average utilisation per observed link per poll window."""
        denom = capacities[self.link_ids][:, None] * self.poll_interval
        return self.bytes_per_poll / denom

    def counters_at(self, poll: int) -> np.ndarray:
        """Byte counts of one poll window across observed links."""
        return self.bytes_per_poll[:, poll].copy()


def poll_link_counters(
    topology: ClusterTopology,
    tracker: LinkLoadTracker,
    poll_interval: float = 300.0,
) -> SnmpDump:
    """Sample inter-switch link byte counters at a coarse poll interval.

    Only switch-to-switch interfaces are exported: server NICs are not
    managed network devices, and the paper's tomography problem is set up
    from exactly these ~2n counters.
    """
    observed = np.array(
        [link.link_id for link in topology.inter_switch_links()], dtype=int
    )
    counters = tracker.snmp_counters(poll_interval)
    return SnmpDump(
        link_ids=observed,
        poll_interval=poll_interval,
        bytes_per_poll=counters[observed],
    )
