"""Log serialisation and compression.

"To keep the cumulative data upload rate manageable, we compress the logs
prior to uploading.  Compression reduces the network bandwidth used by
the measurement infrastructure by at least 10x" (paper §2).  This module
serialises a :class:`~repro.instrumentation.events.SocketEventLog` into
the same kind of line-oriented text record a production tracer would
stow into the distributed file system, compresses it with zlib, and can
parse it back — giving the overhead experiment a real compression ratio
to measure and giving tests a round-trip invariant.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass

import numpy as np

from .events import SocketEventLog

__all__ = ["SerializedLog", "serialize_log", "deserialize_log", "compression_report"]

_HEADER = "#repro-etw-v1 socket events"
_DIRECTIONS = ("send", "recv")


@dataclass(frozen=True)
class SerializedLog:
    """A serialised (and optionally compressed) event log."""

    raw: bytes
    compressed: bytes

    @property
    def raw_size(self) -> int:
        """Serialised size before compression, in bytes."""
        return len(self.raw)

    @property
    def compressed_size(self) -> int:
        """Size after zlib compression, in bytes."""
        return len(self.compressed)

    @property
    def compression_ratio(self) -> float:
        """raw / compressed — the paper reports "at least 10x"."""
        if self.compressed_size == 0:
            return float("inf")
        return self.raw_size / self.compressed_size


def serialize_log(log: SocketEventLog, level: int = 9) -> SerializedLog:
    """Serialise a finalized log as ETW-style key=value event records.

    Rows are ordered by (server, timestamp): the physical log is a
    concatenation of per-server uploads, each locally time-ordered.  The
    verbose named-field format mirrors what socket-level tracers emit —
    and its redundancy is exactly why the measurement pipeline's
    compression pays off so well (§2's "at least 10x").
    """
    if not log.finalized:
        raise ValueError("log must be finalized before serialisation")
    buffer = io.StringIO()
    buffer.write(_HEADER + "\n")
    order = np.lexsort((log.column("timestamp"), log.column("server")))
    columns = [
        log.column("timestamp")[order],
        log.column("server")[order],
        log.column("direction")[order],
        log.column("src")[order],
        log.column("src_port")[order],
        log.column("dst")[order],
        log.column("dst_port")[order],
        log.column("protocol")[order],
        log.column("num_bytes")[order],
        log.column("job_id")[order],
        log.column("phase_index")[order],
    ]
    for row in zip(*columns):
        timestamp, server, direction, src, sport, dst, dport, proto, nbytes, job, phase = row
        buffer.write(
            f"event=SocketOp timestamp={timestamp:.6f} host=server-{server} "
            f"operation={_DIRECTIONS[int(direction)]} protocol={proto} "
            f"local={src}:{sport} remote={dst}:{dport} "
            f"bytes_transferred={nbytes:.1f} process_job={job} "
            f"process_phase={phase}\n"
        )
    raw = buffer.getvalue().encode("utf-8")
    return SerializedLog(raw=raw, compressed=zlib.compress(raw, level))


def _field(token: str, key: str) -> str:
    prefix = key + "="
    if not token.startswith(prefix):
        raise ValueError(f"malformed field {token!r}: expected {key}")
    return token[len(prefix):]


def deserialize_log(serialized: SerializedLog) -> SocketEventLog:
    """Parse a serialised log back into a finalized :class:`SocketEventLog`."""
    text = zlib.decompress(serialized.compressed).decode("utf-8")
    lines = text.splitlines()
    if not lines or lines[0] != _HEADER:
        raise ValueError("malformed serialised log: bad header")
    log = SocketEventLog()
    for line in lines[1:]:
        tokens = line.split(" ")
        if len(tokens) != 10 or tokens[0] != "event=SocketOp":
            raise ValueError(f"malformed record: {line!r}")
        local_src, local_port = _field(tokens[5], "local").split(":")
        remote_dst, remote_port = _field(tokens[6], "remote").split(":")
        log.append(
            timestamp=float(_field(tokens[1], "timestamp")),
            server=int(_field(tokens[2], "host").removeprefix("server-")),
            direction=_DIRECTIONS.index(_field(tokens[3], "operation")),
            src=int(local_src),
            src_port=int(local_port),
            dst=int(remote_dst),
            dst_port=int(remote_port),
            protocol=int(_field(tokens[4], "protocol")),
            num_bytes=float(_field(tokens[7], "bytes_transferred")),
            job_id=int(_field(tokens[8], "process_job")),
            phase_index=int(_field(tokens[9], "process_phase")),
        )
    log.finalize()
    return log


def compression_report(log: SocketEventLog, level: int = 9) -> dict[str, float]:
    """Measure serialisation cost and compression ratio for a log.

    Returns a dict with ``events``, ``raw_bytes``, ``compressed_bytes``,
    ``compression_ratio`` and ``bytes_per_event`` (raw).
    """
    serialized = serialize_log(log, level=level)
    events = len(log)
    return {
        "events": float(events),
        "raw_bytes": float(serialized.raw_size),
        "compressed_bytes": float(serialized.compressed_size),
        "compression_ratio": serialized.compression_ratio,
        "bytes_per_event": serialized.raw_size / events if events else 0.0,
    }
