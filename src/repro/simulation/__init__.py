"""Simulation substrate: event engine, fluid transport, link loads.

``Simulator``/``SimulationResult``/``simulate`` are exported lazily: the
simulator imports the instrumentation layer, which imports the transport
primitives from this package, so loading it eagerly here would create an
import cycle whenever instrumentation is imported first.
"""

from .engine import EventEngine, EventHandle
from .linkloads import LinkLoadTracker
from .transport import FluidTransport, Transfer, TransferMeta

__all__ = [
    "EventEngine",
    "EventHandle",
    "LinkLoadTracker",
    "FluidTransport",
    "Transfer",
    "TransferMeta",
    "Simulator",
    "SimulationResult",
    "simulate",
]

_LAZY = {"Simulator", "SimulationResult", "simulate"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
