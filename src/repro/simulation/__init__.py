"""Simulation substrate: event engine, transports, link loads.

Two transport families share the engine: the fluid max-min allocators
(:class:`FluidTransport`) and the queue-aware congestion-control
variants in :mod:`repro.simulation.cc`; both register their impl names
in :mod:`repro.simulation.impls`.

``Simulator``/``SimulationResult``/``simulate`` are exported lazily: the
simulator imports the instrumentation layer, which imports the transport
primitives from this package, so loading it eagerly here would create an
import cycle whenever instrumentation is imported first.
``QueuedTransport``/``CCReport`` are lazy for the same reason the
simulator only imports them on demand: the cc package is needed only by
queued campaigns.
"""

from .engine import EventEngine, EventHandle
from .impls import register_transport_impl, transport_family, transport_impl_names
from .linkloads import LinkLoadTracker
from .transport import FluidTransport, Transfer, TransferMeta

__all__ = [
    "EventEngine",
    "EventHandle",
    "LinkLoadTracker",
    "FluidTransport",
    "Transfer",
    "TransferMeta",
    "Simulator",
    "SimulationResult",
    "simulate",
    "register_transport_impl",
    "transport_family",
    "transport_impl_names",
    "QueuedTransport",
    "CCReport",
]

_LAZY = {"Simulator", "SimulationResult", "simulate"}
_LAZY_CC = {"QueuedTransport", "CCReport"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import simulator

        return getattr(simulator, name)
    if name in _LAZY_CC:
        from .cc import transport as cc_transport

        return getattr(cc_transport, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
