"""Queue-aware congestion-control transports (the ``"queued"`` family).

This package adds real packet-level congestion dynamics to the
simulator: per-link FIFO queues with a fixed ECN marking threshold K and
tail-drop (:mod:`~repro.simulation.cc.queue`), per-flow congestion
windows driven by DCTCP / Reno / classic-ECN state machines
(:mod:`~repro.simulation.cc.cwnd`), and a discrete-stepped transport
(:mod:`~repro.simulation.cc.transport`) that plugs into the existing
:class:`~repro.simulation.simulator.Simulator` behind
``SimulationConfig.transport_impl`` values ``"dctcp"``, ``"reno"`` and
``"ecn_taildrop"``.  Importing the package registers those names in the
shared transport-impl registry (:mod:`repro.simulation.impls`).
"""

from __future__ import annotations

from ..impls import register_transport_impl
from .cwnd import CC_VARIANTS
from .params import CongestionControlConfig
from .queue import LinkQueues
from .scenarios import (
    IncastRunResult,
    incast_config,
    incast_result,
    run_incast,
    run_incast_with_report,
)
from .transport import CCReport, QueuedTransport

__all__ = [
    "CC_VARIANTS",
    "CCReport",
    "CongestionControlConfig",
    "IncastRunResult",
    "LinkQueues",
    "QueuedTransport",
    "incast_config",
    "incast_result",
    "run_incast",
    "run_incast_with_report",
]

for _variant in CC_VARIANTS:
    register_transport_impl(_variant, "queued")
del _variant
