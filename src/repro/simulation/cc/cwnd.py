"""Per-round congestion-window state machines.

Pure, vectorised update functions over per-flow numpy arrays: the queued
transport closes one *round* (one RTT's worth of accounting) per flow
and applies exactly one of these transitions.  Keeping them free of
transport state makes the unit tests direct: DCTCP's
EWMA-of-marked-fraction multiplicative decrease, Reno's halving on loss,
fixed-K ECN's halve-once-per-round, slow-start doubling and its exit at
``ssthresh``, and the RTO collapse on a whole-window loss.

All windows are in *packets* (floats — the fluid-window model sends
fractional packets per tick); conversion to bytes happens in the
transport.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CC_VARIANTS",
    "dctcp_update_alpha",
    "dctcp_cut",
    "halve",
    "grow",
    "timeout_collapse",
]

#: The queued ``transport_impl`` variants this module implements.
CC_VARIANTS = ("dctcp", "reno", "ecn_taildrop")


def dctcp_update_alpha(
    alpha: np.ndarray, marked_fraction: np.ndarray, gain: float
) -> np.ndarray:
    """One DCTCP EWMA step: ``alpha = (1 - g) * alpha + g * F``.

    ``F`` is the fraction of the round's delivered bytes that carried a
    CE mark.  Runs every round, marked or not — that is what lets alpha
    decay back toward zero once the queue drains below K.
    """
    return (1.0 - gain) * alpha + gain * np.asarray(marked_fraction)


def dctcp_cut(
    cwnd: np.ndarray, alpha: np.ndarray, min_cwnd: float
) -> np.ndarray:
    """DCTCP's proportional decrease: ``cwnd *= 1 - alpha / 2``.

    Applied once per marked round; with alpha near 0 the cut is gentle,
    with persistent marking (alpha -> 1) it approaches Reno's halving.
    """
    return np.maximum(cwnd * (1.0 - np.asarray(alpha) / 2.0), min_cwnd)


def halve(
    cwnd: np.ndarray, min_cwnd: float
) -> tuple[np.ndarray, np.ndarray]:
    """Reno's multiplicative decrease; returns ``(cwnd, ssthresh)``.

    Used on packet loss by every variant, and on CE marks by the
    fixed-K ``ecn_taildrop`` variant (classic ECN semantics: a mark is
    treated exactly like a loss, minus the retransmission).
    """
    ssthresh = np.maximum(cwnd / 2.0, min_cwnd)
    return np.maximum(ssthresh, min_cwnd), ssthresh


def grow(
    cwnd: np.ndarray, ssthresh: np.ndarray, max_cwnd: float
) -> np.ndarray:
    """One clean round's growth: slow start below ``ssthresh``, else AI.

    Slow start doubles the window per RTT; crossing ``ssthresh`` exits
    into additive increase of one packet per RTT (congestion
    avoidance).  The doubling is clipped at ``ssthresh`` so a flow never
    overshoots its exit point inside a single round.
    """
    doubled = np.minimum(cwnd * 2.0, ssthresh)
    slow_start = cwnd < ssthresh
    grown = np.where(slow_start, np.maximum(doubled, cwnd), cwnd + 1.0)
    return np.minimum(grown, max_cwnd)


def timeout_collapse(
    cwnd: np.ndarray, min_cwnd: float
) -> tuple[np.ndarray, np.ndarray]:
    """RTO response: ``ssthresh = cwnd / 2``, window back to the floor.

    A whole-window loss leaves no acks to clock fast recovery, so the
    flow re-enters slow start from ``min_cwnd`` after sitting out the
    retransmission timeout — the serialisation that produces incast
    goodput collapse.
    """
    ssthresh = np.maximum(cwnd / 2.0, 2.0 * min_cwnd)
    return np.full_like(np.asarray(cwnd, dtype=float), min_cwnd), ssthresh
