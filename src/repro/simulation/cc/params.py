"""Parameters of the queue-aware congestion-control transports.

One frozen dataclass carried by ``SimulationConfig.cc`` so that a
queued-transport campaign is fully reproducible from its config
fingerprint.  Defaults model the paper-era commodity fabric the fluid
campaigns already use: 1500-byte MTU, ~100-packet switch buffers, a
DCTCP-style marking threshold of 30 packets and a 200 ms minimum RTO
(the incast-collapse timescale, Vasudevan et al. SIGCOMM'09).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CongestionControlConfig"]


@dataclass(frozen=True)
class CongestionControlConfig:
    """Knobs shared by every queued ``transport_impl`` variant."""

    #: Discrete stepping interval, seconds.  Queue and window dynamics
    #: are integrated once per tick; RTT-scale behaviour needs the tick
    #: well under ``base_rtt``.
    tick: float = 0.0005
    #: Packet size used to convert between bytes and packets.
    mtu_bytes: float = 1500.0
    #: Per-link FIFO buffer depth, packets.  Arrivals beyond this are
    #: tail-dropped.
    queue_capacity_packets: int = 100
    #: Fixed ECN marking threshold K, packets: CE-mark arrivals while
    #: the queue is at or above K (ignored by the ``reno`` variant).
    ecn_threshold_packets: int = 30
    #: Zero-load round-trip time, seconds; queueing delay is added on
    #: top per path from live queue occupancy.
    base_rtt: float = 0.002
    #: Initial congestion window, packets.  Deliberately conservative
    #: (RFC 2581-era) so a synchronized burst's first window is shaped
    #: by congestion feedback rather than guaranteed buffer overflow.
    initial_cwnd_packets: float = 2.0
    #: Congestion-window floor, packets.
    min_cwnd_packets: float = 1.0
    #: Congestion-window ceiling, packets (keeps slow-start doubling
    #: from racing to absurd windows on an empty fabric).
    max_cwnd_packets: float = 1024.0
    #: DCTCP EWMA gain g: ``alpha = (1 - g) * alpha + g * F`` per round.
    dctcp_gain: float = 0.0625
    #: Minimum retransmission timeout, seconds.  A whole-window loss
    #: stalls the flow for this long — the incast-collapse mechanism.
    min_rto: float = 0.2
    #: A round counts as a whole-window loss (RTO, not fast recovery)
    #: when at least this fraction of its bytes were dropped.
    timeout_loss_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.tick <= 0:
            raise ValueError("cc tick must be positive")
        if self.mtu_bytes <= 0:
            raise ValueError("cc mtu_bytes must be positive")
        if self.queue_capacity_packets < 1:
            raise ValueError("cc queue_capacity_packets must be >= 1")
        if self.ecn_threshold_packets < 1:
            raise ValueError("cc ecn_threshold_packets must be >= 1")
        if self.base_rtt <= 0:
            raise ValueError("cc base_rtt must be positive")
        if self.min_cwnd_packets <= 0:
            raise ValueError("cc min_cwnd_packets must be positive")
        if self.initial_cwnd_packets < self.min_cwnd_packets:
            raise ValueError("cc initial_cwnd_packets below the floor")
        if self.max_cwnd_packets < self.initial_cwnd_packets:
            raise ValueError("cc max_cwnd_packets below the initial window")
        if not 0.0 < self.dctcp_gain <= 1.0:
            raise ValueError("cc dctcp_gain must lie in (0, 1]")
        if self.min_rto <= 0:
            raise ValueError("cc min_rto must be positive")
        if not 0.0 < self.timeout_loss_fraction <= 1.0:
            raise ValueError("cc timeout_loss_fraction must lie in (0, 1]")

    @property
    def queue_capacity_bytes(self) -> float:
        """Buffer depth in bytes."""
        return self.queue_capacity_packets * self.mtu_bytes

    @property
    def ecn_threshold_bytes(self) -> float:
        """Marking threshold K in bytes."""
        return self.ecn_threshold_packets * self.mtu_bytes
