"""Per-link FIFO queue model: occupancy, ECN marking, tail-drop.

One vectorised state array per directed link.  Each tick the transport
offers aggregate arrival bytes per link; the queue services up to
``capacity * dt`` (backlog first — FIFO), CE-marks arrivals while the
post-service occupancy sits at or above the fixed threshold K, and
tail-drops whatever exceeds the buffer.  The class keeps exact
enqueued/dequeued/dropped byte ledgers per link, so the
``transport.queue_conservation`` invariant (enqueued == dequeued +
dropped + resident) is checkable at any instant.
"""

from __future__ import annotations

import numpy as np

from .params import CongestionControlConfig

__all__ = ["LinkQueues"]


class LinkQueues:
    """Vectorised FIFO queues for every directed link in the topology."""

    def __init__(
        self,
        num_links: int,
        capacities: np.ndarray,
        params: CongestionControlConfig,
    ) -> None:
        self.num_links = num_links
        self.capacities = np.asarray(capacities, dtype=float)
        self.params = params
        self.capacity_bytes = params.queue_capacity_bytes
        self.threshold_bytes = params.ecn_threshold_bytes
        #: Current occupancy, bytes per link.
        self.backlog_bytes = np.zeros(num_links)
        #: Lifetime ledgers, bytes per link.
        self.enqueued_bytes = np.zeros(num_links)
        self.dequeued_bytes = np.zeros(num_links)
        self.dropped_bytes = np.zeros(num_links)
        #: Lifetime ledgers, (fractional fluid) packets per link.
        self.marked_packets = np.zeros(num_links)
        self.dropped_packets = np.zeros(num_links)
        self.forwarded_packets = np.zeros(num_links)

    @property
    def resident_bytes(self) -> np.ndarray:
        """Bytes currently sitting in each queue (the conservation term)."""
        return self.backlog_bytes.copy()

    def queueing_delay(self) -> np.ndarray:
        """Seconds a packet arriving now waits at each link's queue."""
        return self.backlog_bytes / self.capacities

    def step(
        self, arrivals_bytes: np.ndarray, dt: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance every queue by ``dt`` with the given arrivals.

        Returns ``(serviced_bytes, drop_fraction, mark_fraction)`` per
        link.  ``drop_fraction`` is the share of this tick's *arrivals*
        tail-dropped (resident backlog is never dropped); ``mark_fraction``
        is the share of surviving arrivals CE-marked under the fixed-K
        rule.  Service is work-conserving and bounded by
        ``capacity * dt``, which is what keeps the link-load sinks inside
        the ``linkloads.sane`` utilisation invariant.
        """
        arrivals = np.asarray(arrivals_bytes, dtype=float)
        offered = self.backlog_bytes + arrivals
        serviced = np.minimum(offered, self.capacities * dt)
        level = offered - serviced
        overflow = np.maximum(level - self.capacity_bytes, 0.0)
        # Tail-drop: only arriving bytes can be dropped, so the drop is
        # capped by what arrived this tick (service drains backlog first,
        # which can leave level > capacity only via arrivals).
        dropped = np.minimum(overflow, arrivals)
        self.backlog_bytes = level - dropped

        with np.errstate(invalid="ignore", divide="ignore"):
            drop_fraction = np.where(arrivals > 0, dropped / arrivals, 0.0)
        # Fixed-K marking: CE-mark arrivals that land in (or behind) a
        # queue at/above K once this tick's service has run.
        marked = (arrivals > 0) & (
            self.backlog_bytes >= self.threshold_bytes - 1e-9
        )
        mark_fraction = marked.astype(float)

        mtu = self.params.mtu_bytes
        surviving = arrivals - dropped
        self.enqueued_bytes += surviving
        self.dequeued_bytes += serviced
        self.dropped_bytes += dropped
        self.forwarded_packets += serviced / mtu
        self.dropped_packets += dropped / mtu
        self.marked_packets += (surviving / mtu) * mark_fraction
        return serviced, drop_fraction, mark_fraction

    def conservation_residual(self) -> np.ndarray:
        """Per-link ``enqueued - (dequeued + resident)`` in bytes.

        Dropped bytes never enter the ``enqueued`` ledger, so a healthy
        queue keeps this near zero (floating-point accumulation only).
        Exposed for the ``transport.queue_conservation`` checker and the
        Hypothesis property test.
        """
        return self.enqueued_bytes - (self.dequeued_bytes + self.backlog_bytes)
