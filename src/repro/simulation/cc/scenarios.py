"""Canonical scenarios for the queued transports: synchronized incast.

The paper's §4.4 flags many-senders-to-one-receiver patterns as incast
risks but can only *assert* them under the fluid transport.  These
builders construct the actual experiment: ``N`` synchronized senders in
one rack each push a block to a single victim server in another rack,
so the victim's 1 Gbps access downlink is the bottleneck and the
collapse dynamics (buffer overflow → whole-window loss → synchronized
RTOs) play out in the queued transport.  The same scenario at moderate
``N`` with large blocks doubles as the steady-state congestion fixture
for the ECN-threshold sweep and the FCT-by-variant study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ...cluster.topology import ClusterSpec
from ...workload.generator import WorkloadSchedule
from ..transport import TransferMeta
from .params import CongestionControlConfig

if TYPE_CHECKING:  # deferred: repro.config imports this package's params
    from ...config import SimulationConfig

__all__ = [
    "IncastRunResult",
    "empty_schedule",
    "incast_config",
    "incast_result",
    "run_incast",
    "run_incast_with_report",
]

#: Default synchronized start time: late enough that the engine has a
#: heap event to reach, early enough to waste no simulated time.
_DEFAULT_START = 0.01


def empty_schedule(duration: float) -> WorkloadSchedule:
    """A workload schedule with no jobs — traffic is injected manually."""
    return WorkloadSchedule(
        jobs=[], ingestions=[], evacuations=[], duration=duration
    )


def incast_config(
    variant: str,
    n_senders: int,
    cc: CongestionControlConfig | None = None,
    duration: float = 60.0,
    seed: int = 0,
) -> SimulationConfig:
    """A two-rack cluster sized for an ``n_senders``-to-one incast.

    Rack 0 houses the victim (server 0), rack 1 the senders; both racks
    share one VLAN so every sender crosses the victim's ToR access
    downlink — the bottleneck.  No external hosts, no background jobs.
    """
    from ...config import SimulationConfig

    if n_senders < 1:
        raise ValueError("incast needs at least one sender")
    cluster = ClusterSpec(
        racks=2,
        servers_per_rack=max(2, n_senders),
        racks_per_vlan=2,
        external_hosts=0,
    )
    return SimulationConfig(
        cluster=cluster,
        duration=duration,
        seed=seed,
        transport_impl=variant,
        cc=cc if cc is not None else CongestionControlConfig(),
    )


@dataclass(frozen=True)
class IncastRunResult:
    """Measured outcome of one incast run."""

    variant: str
    n_senders: int
    bytes_per_sender: float
    #: Capacity of the victim's access downlink (the bottleneck), B/s.
    bottleneck_capacity: float
    #: Flows that finished within the campaign window.
    completed: int
    #: First sender start to last completion, seconds.
    completion_window: float
    #: Delivered application bytes over the completion window, B/s.
    goodput: float
    #: ``goodput / bottleneck_capacity`` — 1.0 is a perfectly kept pipe.
    goodput_ratio: float
    #: Whole-window RTO events summed over flows.
    timeouts: float
    #: Bytes re-sent after loss, summed over flows.
    retransmitted_bytes: float
    #: Mean per-flow RTT minus the base RTT: average queueing delay
    #: experienced, seconds.
    mean_queue_delay: float
    #: Peak queue occupancy anywhere in the fabric, bytes.
    peak_queue_bytes: float

    @property
    def ideal_fct(self) -> float:
        """Fair-share completion time of the whole burst, seconds."""
        total = self.n_senders * self.bytes_per_sender
        return total / self.bottleneck_capacity


def run_incast(
    variant: str,
    n_senders: int,
    bytes_per_sender: float = 256_000.0,
    cc: CongestionControlConfig | None = None,
    duration: float = 60.0,
    start: float = _DEFAULT_START,
) -> IncastRunResult:
    """Simulate one synchronized incast and measure its goodput.

    All senders start their block transfer at the same instant
    (``start``); the run ends when every flow drains or the campaign
    window closes, whichever comes first.
    """
    summary, _ = run_incast_with_report(
        variant, n_senders, bytes_per_sender=bytes_per_sender,
        cc=cc, duration=duration, start=start,
    )
    return summary


def incast_result(
    variant: str,
    n_senders: int,
    bytes_per_sender: float = 256_000.0,
    cc: CongestionControlConfig | None = None,
    duration: float = 60.0,
    start: float = _DEFAULT_START,
):
    """Run the synchronized incast and return the raw
    :class:`~repro.simulation.simulator.SimulationResult` (with its
    ``cc`` report attached) — the source the validation pipeline and the
    trace recorder consume."""
    from ..simulator import Simulator

    config = incast_config(variant, n_senders, cc=cc, duration=duration)
    simulator = Simulator(config)
    topology = simulator.topology
    victim = 0
    senders = list(topology.servers_in_rack(1))[:n_senders]

    def launch(src: int) -> None:
        simulator.start_transfer(
            src,
            victim,
            bytes_per_sender,
            TransferMeta(kind="incast", connection_key=(src, victim)),
            on_complete=lambda transfer: None,
        )

    for sender in senders:
        simulator.engine.schedule(start, lambda src=sender: launch(src))

    return simulator.run(schedule=empty_schedule(duration))


def run_incast_with_report(
    variant: str,
    n_senders: int,
    bytes_per_sender: float = 256_000.0,
    cc: CongestionControlConfig | None = None,
    duration: float = 60.0,
    start: float = _DEFAULT_START,
):
    """:func:`run_incast`, but also returning the full per-flow
    :class:`~repro.simulation.cc.transport.CCReport` (FCT/RTT arrays)
    for analyses that need more than the scalar summary."""
    result = incast_result(
        variant, n_senders, bytes_per_sender=bytes_per_sender,
        cc=cc, duration=duration, start=start,
    )
    config = result.config
    topology = result.topology
    victim = 0
    report = result.cc
    assert report is not None, "incast scenarios require a queued transport"

    # The bottleneck: the victim's ToR -> server access downlink.
    access = topology.link_between(topology.tor_of_rack(0), victim)
    capacity = access.capacity

    transfers = result.transfers
    if transfers:
        window_end = max(t.end_time for t in transfers)
        window = max(window_end - start, 1e-12)
        delivered = sum(t.size for t in transfers)
        goodput = delivered / window
    else:
        window = duration - start
        goodput = 0.0
    queue_delay = (
        float((report.flow_mean_rtt - config.cc.base_rtt).mean())
        if report.flow_mean_rtt.size
        else 0.0
    )
    summary = IncastRunResult(
        variant=variant,
        n_senders=n_senders,
        bytes_per_sender=bytes_per_sender,
        bottleneck_capacity=capacity,
        completed=len(transfers),
        completion_window=window,
        goodput=goodput,
        goodput_ratio=goodput / capacity,
        timeouts=report.total_timeouts,
        retransmitted_bytes=report.total_retransmitted_bytes,
        mean_queue_delay=queue_delay,
        peak_queue_bytes=report.peak_queue_bytes,
    )
    return summary, report
