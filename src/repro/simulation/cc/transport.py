"""Queue-aware window-based transports: DCTCP, Reno, fixed-K ECN.

:class:`QueuedTransport` is the ``"queued"``-family counterpart of
:class:`~repro.simulation.transport.FluidTransport`, presenting the same
simulator-facing surface (``add_flow`` / ``advance_to`` /
``pop_completed`` / dynamic wakeup) so :class:`~repro.simulation.simulator.Simulator`
can swap it in behind ``SimulationConfig.transport_impl``.  Instead of
an ideal max-min allocation it integrates a fluid-window model on a
fixed tick: every flow paces ``cwnd / rtt`` into per-link FIFO queues
(:class:`~repro.simulation.cc.queue.LinkQueues`), where bytes are
CE-marked past the fixed threshold K and tail-dropped past the buffer;
RTTs include live queueing delay, and once per RTT each flow closes a
*round* and applies its variant's window transition
(:mod:`~repro.simulation.cc.cwnd`).  A round that loses at least
``timeout_loss_fraction`` of its bytes is a whole-window loss: the flow
collapses to the minimum window and sits out ``min_rto`` — the
serialisation mechanism behind incast goodput collapse (§4.4).

The engine cadence reuses the dynamic-time-source hook: the transport's
``next_completion_wakeup`` simply asks for ``now + tick`` while any flow
is active or any queue holds bytes, so no engine or simulator scheduling
changes are needed.  ``rates_dirty`` is permanently ``False`` — there is
no allocation pass to re-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ...cluster.topology import ClusterTopology
from ..transport import LoadSink, Transfer, TransferMeta
from .cwnd import (
    CC_VARIANTS,
    dctcp_cut,
    dctcp_update_alpha,
    grow,
    halve,
    timeout_collapse,
)
from .params import CongestionControlConfig
from .queue import LinkQueues

__all__ = ["CCReport", "QueuedTransport"]

#: A flow is complete when this many bytes remain un-acknowledged.
_EPS_BYTES = 0.5
#: Slack for "is this round due" / "is this flow stalled" comparisons.
_EPS_TIME = 1e-12


@dataclass(frozen=True)
class CCReport:
    """End-of-run observables of a queued-transport campaign.

    The per-flow arrays are aligned over *completed* flows in completion
    order; the per-link ledgers duck-type
    :class:`~repro.simulation.cc.queue.LinkQueues` so the
    ``transport.queue_conservation`` checker accepts either a live
    transport's queues or this archived report.
    """

    variant: str
    ticks: int
    flow_fct: np.ndarray
    flow_sizes: np.ndarray
    flow_retransmitted_bytes: np.ndarray
    flow_timeouts: np.ndarray
    flow_mean_rtt: np.ndarray
    marked_packets: float
    dropped_packets: float
    forwarded_packets: float
    enqueued_bytes: np.ndarray
    dequeued_bytes: np.ndarray
    dropped_bytes: np.ndarray
    resident_bytes: np.ndarray
    peak_queue_bytes: float

    @property
    def completed_flows(self) -> int:
        """Number of flows that finished during the run."""
        return int(self.flow_fct.size)

    @property
    def total_retransmitted_bytes(self) -> float:
        """Bytes re-sent after loss, summed over completed flows."""
        return float(self.flow_retransmitted_bytes.sum())

    @property
    def total_timeouts(self) -> float:
        """Whole-window RTO events, summed over completed flows."""
        return float(self.flow_timeouts.sum())


class QueuedTransport:
    """Discrete-stepped congestion-controlled transport with FIFO queues."""

    #: Family tag used by the simulator dispatch and the validate layer.
    family = "queued"

    def __init__(
        self,
        topology: ClusterTopology,
        sinks: list[LoadSink] | None = None,
        impl: str = "dctcp",
        params: CongestionControlConfig | None = None,
        initial_capacity: int = 256,
    ) -> None:
        if impl not in CC_VARIANTS:
            raise ValueError(
                f"unknown queued transport impl {impl!r}; "
                f"expected one of {CC_VARIANTS}"
            )
        self.impl = impl
        self.params = params or CongestionControlConfig()
        self.topology = topology
        self.sinks: list[LoadSink] = list(sinks) if sinks else []
        #: Sinks that also understand queue-depth series (duck-typed so a
        #: plain byte-load sink still works unchanged).
        self._depth_sinks = [
            sink for sink in self.sinks if hasattr(sink, "add_queue_depth_bulk")
        ]
        self.capacities = topology.capacities.copy()
        self.num_links = topology.num_links
        self.max_path = 8
        self.queues = LinkQueues(self.num_links, self.capacities, self.params)

        size = max(16, initial_capacity)
        self._paths = np.full((size, self.max_path), -1, dtype=np.int64)
        self._remaining = np.zeros(size, dtype=float)
        self._active = np.zeros(size, dtype=bool)
        self._meta: list[TransferMeta | None] = [None] * size
        self._on_complete: list[Callable[[Transfer], None] | None] = [None] * size
        self._src = np.zeros(size, dtype=np.int64)
        self._dst = np.zeros(size, dtype=np.int64)
        self._sizes = np.zeros(size, dtype=float)
        self._start_times = np.zeros(size, dtype=float)
        # Congestion-control state, per slot (windows in packets).
        self._cwnd = np.zeros(size, dtype=float)
        self._ssthresh = np.zeros(size, dtype=float)
        self._alpha = np.zeros(size, dtype=float)
        self._rto_until = np.full(size, -np.inf)
        self._round_end = np.zeros(size, dtype=float)
        self._round_sent = np.zeros(size, dtype=float)
        self._round_lost = np.zeros(size, dtype=float)
        self._round_marked = np.zeros(size, dtype=float)
        self._retx_bytes = np.zeros(size, dtype=float)
        self._timeouts = np.zeros(size, dtype=np.int64)
        self._rtt_weighted = np.zeros(size, dtype=float)
        self._sent_total = np.zeros(size, dtype=float)
        self._free_slots: list[int] = list(range(size - 1, -1, -1))

        self.now = 0.0
        self._completed_buffer: list[
            tuple[Transfer, Callable[[Transfer], None] | None]
        ] = []
        self._next_transfer_id = 0
        self.transfers_started = 0
        self.peak_active = 0
        self.ticks = 0
        self.peak_queue_bytes = 0.0
        # Per-completed-flow records, in completion order.
        self._fct: list[float] = []
        self._done_sizes: list[float] = []
        self._done_retx: list[float] = []
        self._done_timeouts: list[int] = []
        self._done_mean_rtt: list[float] = []

        # Fluid-transport surface compatibility: the simulator reads
        # these unconditionally when publishing telemetry, and the
        # recompute machinery must never trigger for a queued transport.
        self.rates_dirty = False
        self.rate_recomputes = 0
        self.frontier_rebuilds = 0
        self._inc = None

    # ---------------------------------------------------------------- slots

    def _grow(self) -> None:
        old = self._paths.shape[0]
        self._paths = np.vstack(
            [self._paths, np.full((old, self.max_path), -1, dtype=np.int64)]
        )
        for name in (
            "_remaining", "_src", "_dst", "_sizes", "_start_times",
            "_cwnd", "_ssthresh", "_alpha", "_round_end", "_round_sent",
            "_round_lost", "_round_marked", "_retx_bytes", "_rtt_weighted",
            "_sent_total", "_timeouts",
        ):
            array = getattr(self, name)
            setattr(
                self, name,
                np.concatenate([array, np.zeros(old, dtype=array.dtype)]),
            )
        self._rto_until = np.concatenate(
            [self._rto_until, np.full(old, -np.inf)]
        )
        self._active = np.concatenate([self._active, np.zeros(old, dtype=bool)])
        self._meta.extend([None] * old)
        self._on_complete.extend([None] * old)
        self._free_slots.extend(range(old * 2 - 1, old - 1, -1))

    @property
    def active_count(self) -> int:
        """Number of in-flight flows."""
        return int(self._active.sum())

    # ---------------------------------------------------------------- flows

    def add_flow(
        self,
        src: int,
        dst: int,
        size: float,
        path_links: tuple[int, ...],
        meta: TransferMeta,
        on_complete: Callable[[Transfer], None] | None = None,
    ) -> int:
        """Start a flow at the current time; returns its slot id."""
        if size <= 0:
            raise ValueError("flow size must be positive")
        if not path_links:
            raise ValueError("flow path must cross at least one link")
        if len(path_links) > self.max_path:
            raise ValueError("path exceeds transport's max path length")
        if not self._free_slots:
            self._grow()
        params = self.params
        slot = self._free_slots.pop()
        self._paths[slot, :] = -1
        self._paths[slot, : len(path_links)] = path_links
        self._remaining[slot] = size
        self._active[slot] = True
        self._meta[slot] = meta
        self._on_complete[slot] = on_complete
        self._src[slot] = src
        self._dst[slot] = dst
        self._sizes[slot] = size
        self._start_times[slot] = self.now
        self._cwnd[slot] = params.initial_cwnd_packets
        self._ssthresh[slot] = params.max_cwnd_packets
        self._alpha[slot] = 0.0
        self._rto_until[slot] = -np.inf
        self._round_end[slot] = self.now + params.base_rtt
        self._round_sent[slot] = 0.0
        self._round_lost[slot] = 0.0
        self._round_marked[slot] = 0.0
        self._retx_bytes[slot] = 0.0
        self._timeouts[slot] = 0
        self._rtt_weighted[slot] = 0.0
        self._sent_total[slot] = 0.0
        self.transfers_started += 1
        active = self.active_count
        if active > self.peak_active:
            self.peak_active = active
        return slot

    def reroute_flow(self, slot: int, path_links: tuple[int, ...]) -> None:
        """Move an in-flight flow onto a new path (flowlet switching).

        Packets already enqueued keep draining from the per-link queues
        they occupy; only pacing from the switching instant onward uses
        the new path, matching a real switch's flowlet pinning table.
        The congestion window and round state carry over unchanged.
        """
        if not 0 <= slot < self._paths.shape[0] or not self._active[slot]:
            raise ValueError(f"slot {slot} has no active flow")
        if not path_links:
            raise ValueError("flow path must cross at least one link")
        if len(path_links) > self.max_path:
            raise ValueError("path exceeds transport's max path length")
        self._paths[slot, :] = -1
        self._paths[slot, : len(path_links)] = path_links

    def _finish(self, slot: int) -> None:
        meta = self._meta[slot]
        assert meta is not None
        transfer = Transfer(
            transfer_id=self._next_transfer_id,
            src=int(self._src[slot]),
            dst=int(self._dst[slot]),
            size=float(self._sizes[slot]),
            start_time=float(self._start_times[slot]),
            end_time=self.now,
            meta=meta,
        )
        self._completed_buffer.append((transfer, self._on_complete[slot]))
        self._next_transfer_id += 1
        self._fct.append(transfer.duration)
        self._done_sizes.append(transfer.size)
        self._done_retx.append(float(self._retx_bytes[slot]))
        self._done_timeouts.append(int(self._timeouts[slot]))
        sent = float(self._sent_total[slot])
        self._done_mean_rtt.append(
            float(self._rtt_weighted[slot]) / sent
            if sent > 0
            else self.params.base_rtt
        )
        self._active[slot] = False
        self._meta[slot] = None
        self._on_complete[slot] = None
        self._free_slots.append(slot)

    def pop_completed(
        self,
    ) -> list[tuple[Transfer, Callable[[Transfer], None] | None]]:
        """Return and clear (transfer, callback) pairs completed since
        the last call; dispatch order is the simulator's job."""
        completed = self._completed_buffer
        self._completed_buffer = []
        return completed

    # ------------------------------------------------------------- stepping

    def _path_rtts(self, paths: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Base RTT plus the live queueing delay along each flow's path."""
        delay = self.queues.queueing_delay()
        return self.params.base_rtt + (
            delay[paths.clip(min=0)] * valid
        ).sum(axis=1)

    def _step(self, t_end: float) -> None:
        """Advance one tick (or partial tick) to ``t_end``."""
        params = self.params
        dt = t_end - self.now
        active_idx = np.flatnonzero(self._active)
        arrivals = np.zeros(self.num_links)
        sent = rtt = paths = valid = None
        if active_idx.size and dt > 0:
            paths = self._paths[active_idx]
            valid = paths >= 0
            rtt = self._path_rtts(paths, valid)
            stalled = self._rto_until[active_idx] > self.now + _EPS_TIME
            # Pace one window per *base* RTT.  The live queueing delay
            # feeds the round duration and the RTT/FCT accounting, but
            # not the pacing rate: offered load must stay a direct
            # function of the window sum, so oversubscription manifests
            # as marking and loss at the queue instead of being silently
            # absorbed by delay-throttled senders.
            rate = np.where(
                stalled,
                0.0,
                self._cwnd[active_idx] * params.mtu_bytes / params.base_rtt,
            )
            sent = np.minimum(rate * dt, self._remaining[active_idx])
            per_link = np.repeat(sent, valid.sum(axis=1))
            arrivals = np.bincount(
                paths[valid], weights=per_link, minlength=self.num_links
            )
        serviced, drop_frac, mark_frac = self.queues.step(arrivals, dt)
        backlog_peak = float(self.queues.backlog_bytes.max(initial=0.0))
        if backlog_peak > self.peak_queue_bytes:
            self.peak_queue_bytes = backlog_peak
        if dt > 0:
            loaded = np.flatnonzero(serviced)
            if loaded.size and self.sinks:
                for sink in self.sinks:
                    sink.add_interval_bulk(
                        loaded, serviced[loaded] / dt, self.now, t_end,
                        unique_keys=True,
                    )
            if self._depth_sinks:
                occupied = np.flatnonzero(self.queues.backlog_bytes)
                if occupied.size:
                    for sink in self._depth_sinks:
                        sink.add_queue_depth_bulk(
                            occupied,
                            self.queues.backlog_bytes[occupied],
                            self.now,
                            t_end,
                        )
        if sent is not None:
            # Per-flow loss / mark probabilities compose multiplicatively
            # along the path (independent fluid approximation).
            survive = np.prod(
                np.where(valid, 1.0 - drop_frac[paths.clip(min=0)], 1.0),
                axis=1,
            )
            unmarked = np.prod(
                np.where(valid, 1.0 - mark_frac[paths.clip(min=0)], 1.0),
                axis=1,
            )
            delivered = sent * survive
            lost = sent - delivered
            self._remaining[active_idx] = np.maximum(
                self._remaining[active_idx] - delivered, 0.0
            )
            self._round_sent[active_idx] += sent
            self._round_lost[active_idx] += lost
            self._round_marked[active_idx] += delivered * (1.0 - unmarked)
            self._retx_bytes[active_idx] += lost
            self._rtt_weighted[active_idx] += rtt * sent
            self._sent_total[active_idx] += sent
        self.now = t_end
        self.ticks += 1
        if active_idx.size:
            self._close_due_rounds(active_idx)
            drained = active_idx[self._remaining[active_idx] <= _EPS_BYTES]
            for slot in drained:
                self._finish(int(slot))

    def _close_due_rounds(self, active_idx: np.ndarray) -> None:
        """Apply window transitions for flows whose RTT round elapsed."""
        params = self.params
        due = active_idx[self._round_end[active_idx] <= self.now + _EPS_TIME]
        if not due.size:
            return
        sent = self._round_sent[due]
        data = due[sent > 0]
        if data.size:
            round_sent = self._round_sent[data]
            round_lost = self._round_lost[data]
            delivered = np.maximum(round_sent - round_lost, _EPS_BYTES)
            loss_frac = round_lost / round_sent
            mark_frac = np.minimum(self._round_marked[data] / delivered, 1.0)
            timeout = loss_frac >= params.timeout_loss_fraction
            lossy = (loss_frac > 0) & ~timeout
            marked = (mark_frac > 0) & ~timeout & ~lossy
            clean = ~timeout & ~lossy & ~marked
            if self.impl == "dctcp":
                self._alpha[data] = dctcp_update_alpha(
                    self._alpha[data], mark_frac, params.dctcp_gain
                )
                cut_idx = data[marked]
                if cut_idx.size:
                    self._cwnd[cut_idx] = dctcp_cut(
                        self._cwnd[cut_idx],
                        self._alpha[cut_idx],
                        params.min_cwnd_packets,
                    )
                    self._ssthresh[cut_idx] = self._cwnd[cut_idx]
            elif self.impl == "ecn_taildrop":
                # Classic ECN: a marked round is treated as a lossy one.
                lossy = lossy | marked
            else:  # reno ignores CE marks entirely
                clean = clean | marked
            halve_idx = data[lossy]
            if halve_idx.size:
                new_cwnd, new_ss = halve(
                    self._cwnd[halve_idx], params.min_cwnd_packets
                )
                self._cwnd[halve_idx] = new_cwnd
                self._ssthresh[halve_idx] = new_ss
            grow_idx = data[clean]
            if grow_idx.size:
                self._cwnd[grow_idx] = grow(
                    self._cwnd[grow_idx],
                    self._ssthresh[grow_idx],
                    params.max_cwnd_packets,
                )
            rto_idx = data[timeout]
            if rto_idx.size:
                new_cwnd, new_ss = timeout_collapse(
                    self._cwnd[rto_idx], params.min_cwnd_packets
                )
                self._cwnd[rto_idx] = new_cwnd
                self._ssthresh[rto_idx] = new_ss
                self._rto_until[rto_idx] = self.now + params.min_rto
                self._timeouts[rto_idx] += 1
        # Restart the round clock for every due flow (including idle and
        # RTO-stalled ones — their next round begins when the stall ends).
        paths = self._paths[due]
        valid = paths >= 0
        rtt_now = self._path_rtts(paths, valid)
        start = np.maximum(self.now, self._rto_until[due])
        self._round_end[due] = start + rtt_now
        self._round_sent[due] = 0.0
        self._round_lost[due] = 0.0
        self._round_marked[due] = 0.0

    def advance_to(self, time: float) -> None:
        """Integrate queue and window dynamics up to ``time``."""
        if time < self.now - 1e-9:
            raise ValueError("cannot advance backwards")
        tick = self.params.tick
        while time - self.now > _EPS_TIME:
            if (
                not self._active.any()
                and self.queues.backlog_bytes.sum() <= _EPS_BYTES
            ):
                # Idle fabric: no window or queue dynamics to integrate,
                # so jump straight to the target time.
                break
            self._step(min(self.now + tick, time))
        self.now = max(self.now, time)

    # -------------------------------------------------------------- wakeups

    def recompute_rates(self) -> None:
        """No-op: queued transports have no allocation pass."""

    def next_completion_wakeup(self) -> float | None:
        """Dynamic engine wakeup: the next stepping tick.

        The queued transport needs a steady cadence while anything is in
        flight — active flows pacing into the queues, or residual
        backlog draining after the last flow finished (the sinks must
        see those serviced bytes).  Monotonically increasing because
        ``advance_to`` moves ``now`` to each granted wakeup.
        """
        if self._active.any() or self.queues.backlog_bytes.sum() > _EPS_BYTES:
            return self.now + self.params.tick
        return None

    # ------------------------------------------------------------- inspection

    def earliest_active_start(self) -> float | None:
        """Start time of the oldest in-flight flow, or ``None`` if idle."""
        active_idx = np.flatnonzero(self._active)
        if active_idx.size == 0:
            return None
        return float(self._start_times[active_idx].min())

    def active_rates(self) -> np.ndarray:
        """Instantaneous pacing rates (bytes/s) of the in-flight flows."""
        active_idx = np.flatnonzero(self._active)
        if active_idx.size == 0:
            return np.empty(0)
        paths = self._paths[active_idx]
        valid = paths >= 0
        rtt = self._path_rtts(paths, valid)
        stalled = self._rto_until[active_idx] > self.now + _EPS_TIME
        return np.where(
            stalled, 0.0, self._cwnd[active_idx] * self.params.mtu_bytes / rtt
        )

    def utilization_snapshot(self) -> np.ndarray:
        """Instantaneous per-link utilisation under current pacing rates."""
        active_idx = np.flatnonzero(self._active)
        link_rates = np.zeros(self.num_links)
        if active_idx.size:
            paths = self._paths[active_idx]
            valid = paths >= 0
            rates = self.active_rates()
            per_flow = np.repeat(rates, valid.sum(axis=1))
            link_rates = np.bincount(
                paths[valid], weights=per_flow, minlength=self.num_links
            )
        return link_rates / self.capacities

    # --------------------------------------------------------------- report

    def cc_report(self) -> CCReport:
        """Snapshot the run's congestion-control observables."""
        queues = self.queues
        return CCReport(
            variant=self.impl,
            ticks=self.ticks,
            flow_fct=np.asarray(self._fct),
            flow_sizes=np.asarray(self._done_sizes),
            flow_retransmitted_bytes=np.asarray(self._done_retx),
            flow_timeouts=np.asarray(self._done_timeouts, dtype=np.int64),
            flow_mean_rtt=np.asarray(self._done_mean_rtt),
            marked_packets=float(queues.marked_packets.sum()),
            dropped_packets=float(queues.dropped_packets.sum()),
            forwarded_packets=float(queues.forwarded_packets.sum()),
            enqueued_bytes=queues.enqueued_bytes.copy(),
            dequeued_bytes=queues.dequeued_bytes.copy(),
            dropped_bytes=queues.dropped_bytes.copy(),
            resident_bytes=queues.resident_bytes,
            peak_queue_bytes=self.peak_queue_bytes,
        )
