"""Discrete event engine.

A minimal binary-heap scheduler with cancellable events and batch hooks.
The simulator registers a hook that runs after every batch of same-time
events, which is where transport rates get recomputed — recomputing once
per *timestamp* instead of once per *event* matters because barrier
phases release dozens of shuffle flows at the same instant.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

__all__ = ["EventHandle", "EventEngine"]

# Heap entries are plain ``(time, sequence, handle)`` tuples: tuple
# comparison short-circuits on ``time`` and never reaches the handle
# (sequence numbers are unique), and pushing a tuple is several times
# cheaper than constructing an order-enabled dataclass — measurable,
# since every transfer schedules at least two events.


@dataclass
class EventHandle:
    """A scheduled callback; ``cancel()`` makes the engine skip it."""

    time: float
    callback: Callable[[], None] | None

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.callback = None

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled."""
        return self.callback is None


class EventEngine:
    """Priority-queue event loop.

    Events scheduled for the same instant run in scheduling order.  The
    optional ``batch_hook`` runs after all events at one timestamp have
    fired and may itself schedule new events (including at the current
    time, which extends the batch).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_processed = 0
        #: Number of same-timestamp batches drained (telemetry: the ratio
        #: events_processed / batches_processed is the mean batch size).
        self.batches_processed = 0
        #: High-water mark of the heap, including cancelled entries.
        self.peak_heap_depth = 0
        self.batch_hook: Callable[[], None] | None = None
        self.time_advance_hook: Callable[[float], None] | None = None

    def schedule(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at ``time`` (>= now) and return its handle."""
        if time < self.now - 1e-9:
            raise ValueError(f"cannot schedule at {time} before now {self.now}")
        handle = EventHandle(time=max(time, self.now), callback=callback)
        heapq.heappush(self._heap, (handle.time, next(self._sequence), handle))
        if len(self._heap) > self.peak_heap_depth:
            self.peak_heap_depth = len(self._heap)
        return handle

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, callback)

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def run(self, until: float) -> None:
        """Process events up to and including time ``until``.

        The clock is left at ``until`` when the queue drains early, so a
        subsequent ``run`` continues from there.
        """
        if until < self.now:
            raise ValueError("cannot run backwards")
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                break
            self.now = next_time
            if self.time_advance_hook is not None:
                self.time_advance_hook(next_time)
            # Drain the batch at this timestamp; callbacks may extend it.
            while True:
                while self._heap and self._heap[0][2].cancelled:
                    heapq.heappop(self._heap)
                if not self._heap or self._heap[0][0] > self.now + 1e-12:
                    break
                handle = heapq.heappop(self._heap)[2]
                callback = handle.callback
                handle.cancel()
                if callback is not None:
                    self.events_processed += 1
                    callback()
            self.batches_processed += 1
            if self.batch_hook is not None:
                self.batch_hook()
        self.now = until

    @property
    def pending(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for _, _, handle in self._heap if not handle.cancelled)
