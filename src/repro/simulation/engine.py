"""Discrete event engine.

A minimal binary-heap scheduler with cancellable events, batch hooks,
and *dynamic time sources*.  The simulator registers a hook that runs
after every batch of same-time events, which is where transport rates
get recomputed — recomputing once per *timestamp* instead of once per
*event* matters because barrier phases release dozens of shuffle flows
at the same instant.

Dynamic time sources are the structure-of-arrays answer to wakeup
churn: instead of scheduling (and tombstoning, and re-scheduling) a
heap event for every "earliest completion" / "next rate recompute"
estimate, a source is a zero-argument callable returning the next time
it wants the engine to wake (or ``None``).  The engine polls sources
each loop iteration and merges their times with the heap head; a wakeup
at ``T`` consumes every source value ``<= T``, so a source re-arms by
simply returning a later time.  Cancelling is returning ``None`` —
no heap object ever existed.

Cancelled heap events (tombstones) are still supported for API users;
the engine counts live-vs-tombstone entries and compacts the heap in
place when tombstones outnumber live events, so pathological
cancel/re-schedule patterns stay O(live) in memory.  The tombstone
high-water mark and compaction count are exposed as telemetry.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventHandle", "EventEngine"]

# Heap entries are plain ``(time, sequence, handle)`` tuples: tuple
# comparison short-circuits on ``time`` and never reaches the handle
# (sequence numbers are unique), and pushing a tuple is several times
# cheaper than constructing an order-enabled dataclass — measurable,
# since every transfer schedules at least two events.

#: Compaction trigger: rebuild the heap once at least this many
#: tombstones accumulate *and* they outnumber live entries.  The floor
#: keeps tiny heaps from compacting on every cancel.
_COMPACT_MIN_TOMBSTONES = 64


@dataclass
class EventHandle:
    """A scheduled callback; ``cancel()`` makes the engine skip it."""

    time: float
    callback: Callable[[], None] | None
    _engine: "EventEngine | None" = field(default=None, repr=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self.callback is not None:
            self.callback = None
            if self._engine is not None:
                self._engine._note_cancelled()

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled."""
        return self.callback is None


class EventEngine:
    """Priority-queue event loop with pluggable dynamic time sources.

    Events scheduled for the same instant run in scheduling order.  The
    optional ``batch_hook`` runs after all events at one timestamp have
    fired and may itself schedule new events (including at the current
    time, which extends the batch).  A batch driven purely by a dynamic
    source contains no heap events — only the time-advance and batch
    hooks run.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_processed = 0
        #: Number of same-timestamp batches drained (telemetry: the ratio
        #: events_processed / batches_processed is the mean batch size).
        self.batches_processed = 0
        #: High-water mark of the heap, including cancelled entries.
        self.peak_heap_depth = 0
        self.batch_hook: Callable[[], None] | None = None
        self.time_advance_hook: Callable[[float], None] | None = None
        #: Dynamic wakeup sources: callables returning the next absolute
        #: time they need the engine to wake, or ``None`` for "nothing".
        self.dynamic_sources: list[Callable[[], float | None]] = []
        self._dynamic_last_fired: list[float] = []
        #: Cancelled entries still sitting in the heap.
        self._tombstones = 0
        #: Telemetry: tombstone high-water mark, heap rebuilds, batches
        #: triggered by a dynamic source rather than a heap event.
        self.peak_tombstones = 0
        self.heap_compactions = 0
        self.dynamic_wakeups = 0

    # ---------------------------------------------------------------- heap

    def schedule(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at ``time`` (>= now) and return its handle."""
        if time < self.now - 1e-9:
            raise ValueError(f"cannot schedule at {time} before now {self.now}")
        handle = EventHandle(time=max(time, self.now), callback=callback, _engine=self)
        heapq.heappush(self._heap, (handle.time, next(self._sequence), handle))
        if len(self._heap) > self.peak_heap_depth:
            self.peak_heap_depth = len(self._heap)
        return handle

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, callback)

    def _note_cancelled(self) -> None:
        """Account a live->tombstone transition; compact past the ratio."""
        self._tombstones += 1
        if self._tombstones > self.peak_tombstones:
            self.peak_tombstones = self._tombstones
        live = len(self._heap) - self._tombstones
        if self._tombstones >= _COMPACT_MIN_TOMBSTONES and self._tombstones > live:
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap without tombstones (stable: entries keep their
        ``(time, sequence)`` keys, so event order is unchanged)."""
        if not self._tombstones:
            return
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0
        self.heap_compactions += 1

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._tombstones -= 1
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------- dynamic

    def add_dynamic_source(self, source: Callable[[], float | None]) -> None:
        """Register a wakeup source polled before each batch.

        A source returning ``t`` asks for a (possibly empty) batch at
        ``t``; values in the past are clamped to ``now``.  Once the
        engine runs a batch at ``T``, source values ``<= T`` are
        considered served: the source must return a strictly later time
        (or ``None``) to be woken again.  This gives one-shot semantics
        without per-wakeup heap objects.
        """
        self.dynamic_sources.append(source)
        self._dynamic_last_fired.append(float("-inf"))

    def _poll_dynamic(self) -> list[tuple[float, int]]:
        """Current ``(time, source_index)`` wakeup requests, clamped/filtered."""
        requests: list[tuple[float, int]] = []
        for index, source in enumerate(self.dynamic_sources):
            time = source()
            if time is None:
                continue
            time = max(time, self.now)
            if time <= self._dynamic_last_fired[index]:
                continue
            requests.append((time, index))
        return requests

    # ----------------------------------------------------------------- run

    def run(self, until: float) -> None:
        """Process events up to and including time ``until``.

        The clock is left at ``until`` when the queue drains early, so a
        subsequent ``run`` continues from there.
        """
        if until < self.now:
            raise ValueError("cannot run backwards")
        while True:
            next_time = self.peek_time()
            requests = self._poll_dynamic()
            heap_drives = next_time is not None
            for time, _ in requests:
                if next_time is None or time < next_time:
                    next_time = time
                    heap_drives = False
            if next_time is None or next_time > until:
                break
            for time, index in requests:
                if time <= next_time:
                    self._dynamic_last_fired[index] = next_time
            if not heap_drives:
                self.dynamic_wakeups += 1
            self.now = next_time
            if self.time_advance_hook is not None:
                self.time_advance_hook(next_time)
            # Drain the batch at this timestamp; callbacks may extend it.
            while True:
                while self._heap and self._heap[0][2].cancelled:
                    heapq.heappop(self._heap)
                    self._tombstones -= 1
                if not self._heap or self._heap[0][0] > self.now + 1e-12:
                    break
                handle = heapq.heappop(self._heap)[2]
                callback = handle.callback
                handle.callback = None
                if callback is not None:
                    self.events_processed += 1
                    callback()
            self.batches_processed += 1
            if self.batch_hook is not None:
                self.batch_hook()
        self.now = until

    @property
    def pending(self) -> int:
        """Number of queued, non-cancelled events."""
        return len(self._heap) - self._tombstones
