"""Transport implementation registry: one shared catalogue of impls.

``SimulationConfig.transport_impl`` historically validated against a
tuple inlined in the config module, which drifted the moment a new
transport family appeared.  This registry is now the single source of
truth: the fluid allocators (:mod:`repro.simulation.transport`) and the
queue-aware congestion-control variants (:mod:`repro.simulation.cc`)
each register their names with a *family* tag, and the config validator,
the simulator dispatch and the validate layer all resolve through it.

Families:

* ``"fluid"`` — rate-based max-min allocators (``vectorized``,
  ``reference``, ``csr``, ``incremental``); ideal-by-construction, no
  queues, no loss.
* ``"queued"`` — discrete-stepped window-based transports with per-link
  FIFO queues, ECN marking and tail-drop (``dctcp``, ``reno``,
  ``ecn_taildrop``).
"""

from __future__ import annotations

__all__ = [
    "TRANSPORT_FAMILIES",
    "register_transport_impl",
    "transport_impl_names",
    "transport_family",
]

#: The recognised transport families.
TRANSPORT_FAMILIES = ("fluid", "queued")

_REGISTRY: dict[str, str] = {}
_BUILTINS_LOADED = False


def register_transport_impl(name: str, family: str) -> None:
    """Register a ``transport_impl`` name under a family.

    Re-registering the same (name, family) pair is idempotent; moving a
    name between families is an error — names are the config contract.
    """
    if family not in TRANSPORT_FAMILIES:
        raise ValueError(
            f"unknown transport family {family!r}; "
            f"expected one of {TRANSPORT_FAMILIES}"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing != family:
        raise ValueError(
            f"transport impl {name!r} already registered as {existing!r}"
        )
    _REGISTRY[name] = family


def _ensure_builtins() -> None:
    """Import the built-in transport modules so they self-register."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Import order fixes the name order: fluid impls first (the
    # historical tuple), then the congestion-control variants.
    from . import transport as _transport  # noqa: F401  (registers fluid)
    from . import cc as _cc  # noqa: F401  (registers queued)

    _BUILTINS_LOADED = True


def transport_impl_names() -> tuple[str, ...]:
    """Every registered ``transport_impl`` name, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def transport_family(name: str) -> str:
    """The family (``fluid`` or ``queued``) of a registered impl name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown transport impl {name!r}; "
            f"registered: {', '.join(_REGISTRY)}"
        ) from None
