"""Per-link load accounting: the congestion ground truth.

The transport engine streams ``(link, rate, interval)`` contributions in
here; the tracker bins them at one-second resolution (the paper's finest
congestion timescale) and answers the questions §4.2 asks: which links
were hot, when, and did a given flow's path overlap a hot period.  It is
also the source for the coarse SNMP counters that tomography consumes.
"""

from __future__ import annotations

import numpy as np

from ..cluster.topology import ClusterTopology
from ..util.timeseries import BinAccumulator

__all__ = ["LinkLoadTracker"]


class LinkLoadTracker:
    """One-second byte bins for every directed link in the topology."""

    def __init__(
        self,
        topology: ClusterTopology,
        bin_width: float = 1.0,
        horizon: float = 0.0,
    ) -> None:
        self.topology = topology
        self.bin_width = bin_width
        self.capacities = topology.capacities.copy()
        self._bins = BinAccumulator(
            num_keys=topology.num_links, bin_width=bin_width, horizon=horizon
        )
        #: Queue-occupancy bins (byte-seconds), allocated lazily on the
        #: first contribution — only queued transports produce any.
        self._queue_bins: BinAccumulator | None = None
        self._horizon = horizon
        #: Telemetry: (link, interval) contributions integrated so far.
        self.intervals_integrated = 0

    # ------------------------------------------------------------- load sink

    def add_interval_bulk(
        self,
        keys: np.ndarray,
        rates: np.ndarray,
        start: float,
        end: float,
        unique_keys: bool = False,
    ) -> None:
        """Transport sink: integrate per-link rates over an interval."""
        self.intervals_integrated += len(keys)
        self._bins.add_interval_bulk(keys, rates, start, end, unique_keys=unique_keys)

    def add_queue_depth_bulk(
        self,
        keys: np.ndarray,
        depths: np.ndarray,
        start: float,
        end: float,
    ) -> None:
        """Queued-transport sink: integrate queue occupancy (bytes) over
        an interval.  Bins accumulate byte-seconds; dividing by the bin
        width (see :meth:`queue_depth_matrix`) recovers the time-averaged
        occupancy per bin."""
        if self._queue_bins is None:
            self._queue_bins = BinAccumulator(
                num_keys=self.topology.num_links,
                bin_width=self.bin_width,
                horizon=self._horizon,
            )
        self._queue_bins.add_interval_bulk(
            keys, depths, start, end, unique_keys=True
        )

    # ------------------------------------------------------------- accessors

    @property
    def num_bins(self) -> int:
        """Number of populated one-second bins."""
        return self._bins.num_bins

    def byte_matrix(self) -> np.ndarray:
        """``(num_links, num_bins)`` bytes carried per link per bin."""
        return self._bins.matrix()

    def utilization_matrix(self) -> np.ndarray:
        """``(num_links, num_bins)`` average utilisation per link per bin."""
        bytes_per_bin = self._bins.matrix()
        capacity_per_bin = self.capacities[:, None] * self.bin_width
        return bytes_per_bin / capacity_per_bin

    @property
    def has_queue_depth(self) -> bool:
        """Whether any queue-occupancy contributions were recorded."""
        return self._queue_bins is not None

    def queue_depth_matrix(self) -> np.ndarray | None:
        """``(num_links, num_bins)`` mean queue occupancy (bytes) per bin,
        or ``None`` when no queued transport contributed.  Padded with
        zero columns to match :meth:`byte_matrix` when occupancy stopped
        accumulating before the last load bin."""
        if self._queue_bins is None:
            return None
        depth = self._queue_bins.matrix() / self.bin_width
        columns = self._bins.num_bins
        if depth.shape[1] < columns:
            padded = np.zeros((depth.shape[0], columns))
            padded[:, : depth.shape[1]] = depth
            depth = padded
        return depth

    def utilization_series(self, link_id: int) -> np.ndarray:
        """Utilisation over time for one link."""
        return self._bins.series(link_id) / (self.capacities[link_id] * self.bin_width)

    def link_totals(self) -> np.ndarray:
        """Total bytes carried per link."""
        return self._bins.totals()

    def max_utilization_on_path(
        self, path_links: tuple[int, ...], start: float, end: float
    ) -> float:
        """Peak binned utilisation over ``path_links`` during ``[start, end]``.

        Only *complete* bins are considered (a partially filled trailing
        bin would understate utilisation).  Used by the read-failure model
        and by the victim-flow analysis to decide whether a flow
        "overlapped a high utilization period".
        """
        if not path_links or end < start:
            return 0.0
        first_bin = int(np.floor(start / self.bin_width))
        last_complete = min(
            int(np.floor(end / self.bin_width)), self._bins.num_bins - 1
        )
        if last_complete < first_bin:
            return 0.0
        links = np.asarray(path_links, dtype=int)
        window = self._bins.matrix()[links, first_bin : last_complete + 1]
        capacity = self.capacities[links][:, None] * self.bin_width
        return float((window / capacity).max()) if window.size else 0.0

    def snmp_counters(self, poll_interval: float) -> np.ndarray:
        """Aggregate the 1 s bins into SNMP-style poll-interval byte counts.

        Returns ``(num_links, num_polls)``; a trailing partial poll window
        is included (real pollers read mid-interval too).
        """
        if poll_interval < self.bin_width:
            raise ValueError("poll interval must be at least one bin wide")
        per_poll = int(round(poll_interval / self.bin_width))
        if abs(per_poll * self.bin_width - poll_interval) > 1e-9:
            raise ValueError("poll interval must be a multiple of the bin width")
        data = self._bins.matrix()
        num_polls = int(np.ceil(data.shape[1] / per_poll))
        padded = np.zeros((data.shape[0], num_polls * per_poll))
        padded[:, : data.shape[1]] = data
        return padded.reshape(data.shape[0], num_polls, per_poll).sum(axis=2)
