"""The cluster simulator: workload + transport + instrumentation.

:class:`Simulator` owns the event engine, the fluid transport, the link
load tracker and the instrumentation collectors, and exposes the small
:class:`~repro.workload.runtime.SimulationServices` surface the job
executor drives traffic through.  ``run()`` returns a
:class:`SimulationResult` containing exactly the artefacts the paper's
measurement campaign produced: the socket event log, the application
log, SNMP-grade link loads — plus the ground-truth transfer list that a
real campaign would *not* have, kept for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..cluster.routing import Router
from ..cluster.topology import ClusterTopology
from ..instrumentation.applog import ApplicationLog

if TYPE_CHECKING:  # imported lazily to avoid a config<->simulation cycle
    from ..config import SimulationConfig
from ..instrumentation.collector import ClusterCollector
from ..instrumentation.events import SocketEventLog
from ..util.randomness import RandomSource
from ..workload.generator import WorkloadSchedule, generate_schedule
from ..workload.job import JobRuntime
from ..workload.runtime import JobExecutor
from .engine import EventEngine, EventHandle
from .linkloads import LinkLoadTracker
from .transport import FluidTransport, Transfer, TransferMeta

__all__ = ["SimulationResult", "Simulator", "simulate"]


@dataclass
class SimulationResult:
    """Artefacts of one simulated measurement campaign."""

    config: SimulationConfig
    topology: ClusterTopology
    router: Router
    socket_log: SocketEventLog
    applog: ApplicationLog
    link_loads: LinkLoadTracker
    #: Ground-truth completed transfers (not available to real analyses;
    #: used for validation and for building exact traffic matrices).
    transfers: list[Transfer]
    jobs: dict[int, JobRuntime]
    duration: float
    stats: dict[str, float] = field(default_factory=dict)


class Simulator:
    """Co-simulates the workload executor and the fluid network."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.topology = ClusterTopology(config.cluster)
        self.router = Router(self.topology)
        self.randomness = RandomSource(config.seed)
        self.engine = EventEngine()
        self.link_loads = LinkLoadTracker(
            self.topology, bin_width=1.0, horizon=config.duration
        )
        self.transport = FluidTransport(
            self.topology, sinks=[self.link_loads], fairness=config.fairness
        )
        self.collector = ClusterCollector(
            self.topology,
            rng=self.randomness.stream("collector"),
            config=config.collector,
        )
        self.applog = ApplicationLog()
        self.executor = JobExecutor(
            topology=self.topology,
            config=config.workload,
            services=self,
            applog=self.applog,
            rng=self.randomness.stream("executor"),
            congestion_threshold=config.congestion_threshold,
        )
        self.transfers: list[Transfer] = []
        self._completion_event: EventHandle | None = None
        self._last_recompute = -float("inf")
        self._recompute_wakeup: EventHandle | None = None
        self.engine.time_advance_hook = self._on_time_advance
        self.engine.batch_hook = self._after_batch

    # ------------------------------------------------- SimulationServices

    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule a workload callback at an absolute time."""
        self.engine.schedule(time, callback)

    def start_transfer(
        self,
        src: int,
        dst: int,
        size: float,
        meta: TransferMeta,
        on_complete: Callable[[Transfer], None],
    ) -> None:
        """Launch a transfer over the network (or complete it instantly
        when the endpoints coincide and no links are crossed)."""
        path = self.router.path_links(src, dst)
        if not path:
            transfer = Transfer(
                transfer_id=-1, src=src, dst=dst, size=size,
                start_time=self.now(), end_time=self.now(), meta=meta,
            )
            on_complete(transfer)
            return
        self.transport.add_flow(src, dst, size, path, meta, on_complete=on_complete)

    def max_path_utilization(
        self, src: int, dst: int, start: float, end: float
    ) -> float:
        """Peak binned utilisation along the src→dst path in a window."""
        path = self.router.path_links(src, dst)
        return self.link_loads.max_utilization_on_path(path, start, end)

    # --------------------------------------------------------- event hooks

    def _on_time_advance(self, new_time: float) -> None:
        self.transport.advance_to(new_time)

    def _dispatch_completions(self) -> None:
        while True:
            completed = self.transport.pop_completed()
            if not completed:
                return
            for transfer, callback in completed:
                self.collector.observe_transfer(transfer)
                self.transfers.append(transfer)
                if callback is not None:
                    callback(transfer)

    def _after_batch(self) -> None:
        self._dispatch_completions()
        if not self.transport.rates_dirty:
            return
        now = self.engine.now
        interval = self.config.rate_update_interval
        # The epsilon tolerance matters: a wakeup scheduled at exactly
        # last+interval can arrive with now-last a float ulp short of the
        # interval, and re-scheduling at the same instant would livelock.
        if now - self._last_recompute >= interval - 1e-9:
            self.transport.recompute_rates()
            self._last_recompute = now
            self._reschedule_completion()
        elif self._recompute_wakeup is None or self._recompute_wakeup.cancelled:
            # Wake the batch hook once the rate-limit window has passed;
            # the event body is empty — reaching the timestamp suffices.
            self._recompute_wakeup = self.engine.schedule(
                max(self._last_recompute + interval, now + 1e-9), lambda: None
            )

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        next_time = self.transport.next_completion_time()
        if next_time is not None:
            self._completion_event = self.engine.schedule(next_time, lambda: None)

    # ----------------------------------------------------------------- run

    def run(self, schedule: WorkloadSchedule | None = None) -> SimulationResult:
        """Execute the full campaign and return its artefacts."""
        config = self.config
        if schedule is None:
            schedule = generate_schedule(
                config.workload,
                duration=config.duration,
                rng=self.randomness.stream("workload"),
                external_hosts=list(self.topology.external_hosts()),
            )
        self.executor.install_schedule(schedule)
        self.engine.run(until=config.duration)
        # Settle the network to the end of the campaign window.
        self.transport.advance_to(config.duration)
        self._dispatch_completions()
        socket_log = self.collector.finalize()
        stats = {
            "events_processed": float(self.engine.events_processed),
            "transfers_completed": float(len(self.transfers)),
            "transfers_started": float(self.transport.transfers_started),
            "socket_events": float(len(socket_log)),
            "jobs_submitted": float(len(schedule.jobs)),
            "jobs_finished": float(len(self.applog.job_ends)),
            "evacuations": float(len(self.applog.evacuations)),
        }
        return SimulationResult(
            config=config,
            topology=self.topology,
            router=self.router,
            socket_log=socket_log,
            applog=self.applog,
            link_loads=self.link_loads,
            transfers=self.transfers,
            jobs=self.executor.jobs,
            duration=config.duration,
            stats=stats,
        )


def simulate(config: SimulationConfig) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(config).run()
