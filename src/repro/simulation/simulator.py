"""The cluster simulator: workload + transport + instrumentation.

:class:`Simulator` owns the event engine, the fluid transport, the link
load tracker and the instrumentation collectors, and exposes the small
:class:`~repro.workload.runtime.SimulationServices` surface the job
executor drives traffic through.  ``run()`` returns a
:class:`SimulationResult` containing exactly the artefacts the paper's
measurement campaign produced: the socket event log, the application
log, SNMP-grade link loads — plus the ground-truth transfer list that a
real campaign would *not* have, kept for validation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..cluster.routing import Router, make_router
from ..cluster.topology import ClusterTopology
from ..instrumentation.applog import ApplicationLog

if TYPE_CHECKING:  # imported lazily to avoid a config<->simulation cycle
    from ..config import SimulationConfig
from ..instrumentation.collector import ClusterCollector
from ..instrumentation.events import SocketEventLog
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..util.randomness import RandomSource
from ..workload.generator import WorkloadSchedule, generate_schedule
from ..workload.job import JobRuntime
from ..workload.runtime import JobExecutor
from .engine import EventEngine
from .impls import transport_family
from .linkloads import LinkLoadTracker
from .transport import FluidTransport, Transfer, TransferMeta

if TYPE_CHECKING:
    from .cc.transport import CCReport

__all__ = ["SimulationResult", "Simulator", "simulate"]


@dataclass
class SimulationResult:
    """Artefacts of one simulated measurement campaign."""

    config: SimulationConfig
    topology: ClusterTopology
    router: Router
    socket_log: SocketEventLog
    applog: ApplicationLog
    link_loads: LinkLoadTracker
    #: Ground-truth completed transfers (not available to real analyses;
    #: used for validation and for building exact traffic matrices).
    transfers: list[Transfer]
    jobs: dict[int, JobRuntime]
    duration: float
    stats: dict[str, float] = field(default_factory=dict)
    #: Congestion-control observables (queue ledgers, per-flow FCT and
    #: retransmit counts); ``None`` for fluid transports.
    cc: "CCReport | None" = None


class Simulator:
    """Co-simulates the workload executor and the fluid network."""

    def __init__(
        self, config: SimulationConfig, telemetry: Telemetry | None = None
    ) -> None:
        self.config = config
        self.telemetry = telemetry or NULL_TELEMETRY
        self.topology = ClusterTopology(config.cluster)
        self.router = make_router(
            self.topology,
            config.routing_impl,
            seed=config.seed,
            flowlet_idle_gap=config.flowlet_idle_gap,
        )
        self.randomness = RandomSource(config.seed)
        self.engine = EventEngine()
        self.link_loads = LinkLoadTracker(
            self.topology, bin_width=1.0, horizon=config.duration
        )
        if transport_family(config.transport_impl) == "queued":
            from .cc.transport import QueuedTransport

            self.transport: FluidTransport | QueuedTransport = QueuedTransport(
                self.topology,
                sinks=[self.link_loads],
                impl=config.transport_impl,
                params=config.cc,
            )
        else:
            self.transport = FluidTransport(
                self.topology,
                sinks=[self.link_loads],
                fairness=config.fairness,
                impl=config.transport_impl,
            )
        self.collector = ClusterCollector(
            self.topology,
            rng=self.randomness.stream("collector"),
            config=config.collector,
        )
        self.applog = ApplicationLog()
        self.executor = JobExecutor(
            topology=self.topology,
            config=config.workload,
            services=self,
            applog=self.applog,
            rng=self.randomness.stream("executor"),
            congestion_threshold=config.congestion_threshold,
            telemetry=self.telemetry,
        )
        self.transfers: list[Transfer] = []
        self._last_recompute = -float("inf")
        self.engine.time_advance_hook = self._on_time_advance
        self.engine.batch_hook = self._after_batch
        # Wakeups ride dynamic time sources instead of heap events: the
        # transport's completion frontier supplies the earliest-completion
        # time per rate epoch, and the recompute source re-arms itself at
        # the edge of the rate-limit window whenever rates are dirty.
        self.engine.add_dynamic_source(self.transport.next_completion_wakeup)
        self.engine.add_dynamic_source(self._recompute_wakeup_time)
        self._batch_size_hist = self.telemetry.histogram("engine.batch_size")
        self._events_at_last_batch = 0
        self._wall_start: float | None = None
        self._event_sink = None
        self._stream_flush_interval = 0.0
        self._last_stream_flush = 0.0
        self.events_streamed = 0
        self._batches_since_validation = 0
        self.inline_validations = 0

    # ------------------------------------------------- SimulationServices

    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule a workload callback at an absolute time."""
        self.engine.schedule(time, callback)

    def start_transfer(
        self,
        src: int,
        dst: int,
        size: float,
        meta: TransferMeta,
        on_complete: Callable[[Transfer], None],
    ) -> None:
        """Launch a transfer over the network (or complete it instantly
        when the endpoints coincide and no links are crossed).

        The path is chosen per *flow*: under ECMP/flowlet routing the
        transfer's ``meta.connection_key`` is the hashed flow identity,
        so retries and phase-mates of one connection stick together.
        """
        path = self.router.path_for_flow(
            src, dst, key=meta.connection_key, now=self.now()
        )
        if not path:
            transfer = Transfer(
                transfer_id=-1, src=src, dst=dst, size=size,
                start_time=self.now(), end_time=self.now(), meta=meta,
            )
            on_complete(transfer)
            return
        self.transport.add_flow(src, dst, size, path, meta, on_complete=on_complete)

    def max_path_utilization(
        self, src: int, dst: int, start: float, end: float
    ) -> float:
        """Peak binned utilisation along the src→dst path in a window."""
        path = self.router.path_links(src, dst)
        return self.link_loads.max_utilization_on_path(path, start, end)

    # --------------------------------------------------------- event hooks

    def _on_time_advance(self, new_time: float) -> None:
        self.transport.advance_to(new_time)

    def _dispatch_completions(self) -> None:
        while True:
            completed = self.transport.pop_completed()
            if not completed:
                return
            for transfer, callback in completed:
                self.collector.observe_transfer(transfer)
                self.transfers.append(transfer)
                self.router.note_activity(
                    transfer.src, transfer.dst,
                    transfer.meta.connection_key, transfer.end_time,
                )
                if callback is not None:
                    callback(transfer)

    def _after_batch(self) -> None:
        if self.telemetry.enabled:
            processed = self.engine.events_processed
            self._batch_size_hist.observe(processed - self._events_at_last_batch)
            self._events_at_last_batch = processed
        self._dispatch_completions()
        if (
            self._event_sink is not None
            and self.engine.now - self._last_stream_flush >= self._stream_flush_interval
        ):
            self._stream_flush()
            self._last_stream_flush = self.engine.now
        if self.config.validate_every_n_batches:
            self._batches_since_validation += 1
            if self._batches_since_validation >= self.config.validate_every_n_batches:
                self._batches_since_validation = 0
                self._run_inline_validation()
        if not self.transport.rates_dirty:
            return
        now = self.engine.now
        interval = self.config.rate_update_interval
        # The epsilon tolerance matters: a dynamic wakeup at exactly
        # last+interval can arrive with now-last a float ulp short of the
        # interval, and deferring again at the same instant would stall.
        if now - self._last_recompute >= interval - 1e-9:
            self.transport.recompute_rates()
            self._last_recompute = now
        # else: rates stay dirty and the recompute dynamic source wakes
        # the engine at the edge of the rate-limit window.

    def _run_inline_validation(self) -> None:
        """Run the cheap inline checkers against the live state.

        Sampled every ``validate_every_n_batches`` engine batches; a
        violation aborts the run so a corrupted campaign fails loudly at
        the first observable inconsistency instead of producing figures.
        """
        from ..validate import run_inline_checks

        report = run_inline_checks(self, telemetry=self.telemetry)
        self.inline_validations += 1
        if self.telemetry.enabled:
            self.telemetry.counter("validate.inline_runs").inc()
            if not report.ok:
                self.telemetry.counter("validate.inline_violations").inc(
                    len(report.violations)
                )
        report.raise_if_violations()

    def _recompute_wakeup_time(self) -> float | None:
        """Dynamic wakeup: edge of the rate-limit window while dirty.

        ``None`` while rates are clean; otherwise the first instant the
        batch hook is allowed to recompute.  The engine clamps times in
        the past to ``now``, covering the initial ``-inf`` sentinel.
        """
        if not self.transport.rates_dirty:
            return None
        return self._last_recompute + self.config.rate_update_interval

    # ------------------------------------------------------------ streaming

    def attach_event_stream(self, sink, flush_interval: float = 5.0) -> None:
        """Stream collector events into ``sink`` during the run.

        ``sink`` needs one method, ``append_columns(columns)``, taking a
        full set of time-sorted event columns (a
        :class:`~repro.instrumentation.trace writer<repro.trace.writer.TraceWriter>`
        qualifies).  Roughly every ``flush_interval`` simulated seconds
        the collector's buffer is drained up to a *safe watermark* — the
        oldest active transfer's start time minus the maximum clock skew
        — below which no future completion can emit an event, so the
        concatenation of flushed batches is exactly the time-sorted log
        :meth:`~repro.instrumentation.collector.ClusterCollector.finalize`
        would have produced.

        The flush piggybacks on the engine's batch hook rather than
        scheduling its own events, so a streamed run is *bit-identical*
        to an unstreamed one: no extra timestamps ever split the fluid
        integration intervals.  Call before :meth:`run`.
        """
        if flush_interval <= 0:
            raise ValueError("flush interval must be positive")
        self._event_sink = sink
        self._stream_flush_interval = flush_interval
        self._last_stream_flush = 0.0
        self.events_streamed = 0

    def _stream_flush(self, final: bool = False) -> None:
        if final:
            watermark = float("inf")
        else:
            start = self.transport.earliest_active_start()
            base = self.engine.now if start is None else min(start, self.engine.now)
            watermark = base - self.collector.config.clock_skew_max
        batch = self.collector.log.drain_until(watermark)
        rows = int(batch["timestamp"].size)
        if rows:
            self._event_sink.append_columns(batch)
            self.events_streamed += rows

    # ------------------------------------------------------------ telemetry

    def attach_heartbeat(
        self, interval: float, callback: Callable[[dict], None]
    ) -> None:
        """Invoke ``callback(progress_snapshot())`` every ``interval``
        simulated seconds for the duration of the campaign.

        Call before :meth:`run`.  The heartbeat rides the event engine,
        so it fires between batches and never perturbs workload RNG
        draws; it is how the CLI reports progress on long campaigns.
        """
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")

        def beat() -> None:
            callback(self.progress_snapshot())
            if self.engine.now + interval <= self.config.duration + 1e-9:
                self.engine.schedule(self.engine.now + interval, beat)

        self.engine.schedule(min(interval, self.config.duration), beat)

    def progress_snapshot(self) -> dict:
        """Point-in-time campaign progress for heartbeats and debugging."""
        now = self.engine.now
        wall = (
            time.perf_counter() - self._wall_start
            if self._wall_start is not None
            else 0.0
        )
        events = self.engine.events_processed
        return {
            "now": now,
            "duration": self.config.duration,
            "percent": 100.0 * now / self.config.duration,
            "wall_seconds": wall,
            "events_processed": events,
            "events_per_wall_second": events / wall if wall > 0 else 0.0,
            "active_flows": self.transport.active_count,
            "pending_events": len(self.engine._heap),
            "jobs_started": len(self.applog.job_starts),
            "jobs_finished": len(self.applog.job_ends),
            "transfers_completed": len(self.transfers),
        }

    def _publish_metrics(self, socket_log: SocketEventLog) -> None:
        """Fold the run's counters into the telemetry registry."""
        tele = self.telemetry
        tele.counter("engine.events_processed").inc(self.engine.events_processed)
        tele.counter("engine.batches_processed").inc(self.engine.batches_processed)
        tele.gauge("engine.peak_heap_depth").max(self.engine.peak_heap_depth)
        tele.counter("engine.dynamic_wakeups").inc(self.engine.dynamic_wakeups)
        tele.gauge("engine.peak_tombstones").max(self.engine.peak_tombstones)
        if self.engine.heap_compactions:
            tele.counter("engine.heap_compactions").inc(self.engine.heap_compactions)
        tele.counter("transport.transfers_started").inc(
            self.transport.transfers_started
        )
        tele.counter("transport.rate_recomputes").inc(self.transport.rate_recomputes)
        tele.gauge("transport.peak_active_flows").max(self.transport.peak_active)
        tele.counter("transport.frontier_rebuilds").inc(
            self.transport.frontier_rebuilds
        )
        if self.transport._inc is not None:
            inc = self.transport._inc
            tele.counter("transport.incremental_full_solves").inc(inc.full_solves)
            tele.counter("transport.incremental_solves").inc(inc.incremental_solves)
            tele.counter("transport.incremental_expansions").inc(inc.expansions)
        if getattr(self.transport, "family", "fluid") == "queued":
            queues = self.transport.queues
            tele.counter("cc.ticks").inc(self.transport.ticks)
            tele.counter("cc.marked_packets").inc(
                int(queues.marked_packets.sum())
            )
            tele.counter("cc.dropped_packets").inc(
                int(queues.dropped_packets.sum())
            )
            tele.counter("cc.forwarded_packets").inc(
                int(queues.forwarded_packets.sum())
            )
            tele.gauge("cc.peak_queue_bytes").max(self.transport.peak_queue_bytes)
        tele.counter("linkloads.intervals_integrated").inc(
            self.link_loads.intervals_integrated
        )
        tele.counter("sim.transfers_completed").inc(len(self.transfers))
        tele.counter("collector.socket_events").inc(
            len(socket_log) + self.events_streamed
        )
        if self.events_streamed:
            tele.counter("sim.events_streamed").inc(self.events_streamed)
        tele.counter("workload.transfers_requested").inc(
            self.executor.transfers_requested
        )
        tele.counter("workload.evacuation_events").inc(
            len(self.applog.evacuations)
        )
        if self._wall_start is not None:
            wall = time.perf_counter() - self._wall_start
            tele.gauge("sim.wall_seconds").set(wall)
            if wall > 0:
                tele.gauge("sim.events_per_wall_second").set(
                    self.engine.events_processed / wall
                )

    # ----------------------------------------------------------------- run

    def run(self, schedule: WorkloadSchedule | None = None) -> SimulationResult:
        """Execute the full campaign and return its artefacts."""
        config = self.config
        tele = self.telemetry
        self._wall_start = time.perf_counter()
        with tele.span(
            "simulate.campaign", seed=config.seed, duration=config.duration
        ) as campaign:
            with tele.span("simulate.workload_schedule"):
                if schedule is None:
                    schedule = generate_schedule(
                        config.workload,
                        duration=config.duration,
                        rng=self.randomness.stream("workload"),
                        external_hosts=list(self.topology.external_hosts()),
                    )
                self.executor.install_schedule(schedule)
            with tele.span("simulate.engine_run"):
                self.engine.run(until=config.duration)
            with tele.span("simulate.transport_settle"):
                # Settle the network to the end of the campaign window.
                self.transport.advance_to(config.duration)
                self._dispatch_completions()
            with tele.span("simulate.collector_finalize"):
                if self._event_sink is not None:
                    self._stream_flush(final=True)
                socket_log = self.collector.finalize()
            campaign.set(
                events_processed=self.engine.events_processed,
                transfers_completed=len(self.transfers),
            )
        self._publish_metrics(socket_log)
        stats = {
            "events_processed": float(self.engine.events_processed),
            "event_batches": float(self.engine.batches_processed),
            "rate_recomputes": float(self.transport.rate_recomputes),
            "transfers_completed": float(len(self.transfers)),
            "transfers_started": float(self.transport.transfers_started),
            "socket_events": float(len(socket_log) + self.events_streamed),
            "socket_events_streamed": float(self.events_streamed),
            "jobs_submitted": float(len(schedule.jobs)),
            "jobs_finished": float(len(self.applog.job_ends)),
            "evacuations": float(len(self.applog.evacuations)),
        }
        cc_report = None
        if getattr(self.transport, "family", "fluid") == "queued":
            cc_report = self.transport.cc_report()
            stats["cc_ticks"] = float(cc_report.ticks)
            stats["cc_timeouts"] = cc_report.total_timeouts
            stats["cc_retransmitted_bytes"] = cc_report.total_retransmitted_bytes
            stats["cc_dropped_packets"] = cc_report.dropped_packets
            stats["cc_marked_packets"] = cc_report.marked_packets
        return SimulationResult(
            config=config,
            topology=self.topology,
            router=self.router,
            socket_log=socket_log,
            applog=self.applog,
            link_loads=self.link_loads,
            transfers=self.transfers,
            jobs=self.executor.jobs,
            duration=config.duration,
            stats=stats,
            cc=cc_report,
        )


def simulate(
    config: SimulationConfig,
    telemetry: Telemetry | None = None,
    heartbeat: Callable[[dict], None] | None = None,
    heartbeat_interval: float | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it.

    When ``heartbeat`` is given, it is called with a progress snapshot
    every ``heartbeat_interval`` simulated seconds (default: a fifth of
    the campaign duration, so every run beats at least four times).
    """
    simulator = Simulator(config, telemetry=telemetry)
    if heartbeat is not None:
        interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else config.duration / 5.0
        )
        simulator.attach_heartbeat(interval, heartbeat)
    return simulator.run()
