"""Fluid (rate-based) transport with max-min fair bandwidth sharing.

Flows are modelled as fluid: between simulation events every flow moves
bytes at a constant rate, and rates are the max-min fair allocation over
the directed links of each flow's path (progressive filling).  This is
the standard abstraction for TCP-dominated datacenter traffic at second
granularity — the paper's cluster runs "near ubiquitous ... TCP" (§8),
whose long-run behaviour approximates fair sharing at the bottleneck.

A cheaper ``bottleneck`` mode allocates each flow ``capacity / count`` on
its most contended link without redistributing leftovers; it serves as an
ablation and a cross-check on the exact allocator.

All per-flow state lives in preallocated numpy arrays indexed by slot so
that the per-event work — integrating rates into link-load bins and
re-running the water-filling — is vectorised.  The water-filling itself
lives in :mod:`repro.simulation.waterfill`, which provides the four
``impl`` choices surfaced as ``SimulationConfig.transport_impl``:
``reference`` (the round-based ground-truth loop), ``vectorized`` (the
bit-identical adaptive heap/CSR replay), ``csr`` (the batched CSR
elimination pinned regardless of active-set size), and ``incremental``
(the paper-scale allocator that re-solves only the affected bottleneck
subgraph on each arrival/departure — tolerance-based, see
:data:`~repro.simulation.waterfill.INCREMENTAL_RTOL`).  The active
set's ``(paths, valid)`` view and the allocator's incidence structures
are cached against a flow-set version counter so consecutive allocation
passes over an unchanged active set skip the rebuild.

Completion scheduling is structure-of-arrays: instead of per-transfer
event objects, the transport keeps a **completion frontier** — the next
:data:`_FRONTIER_DEPTH` completion times, selected with one
``argpartition`` over ``remaining / rate`` and invalidated by a rate
*epoch* bump on each allocation pass.  The engine polls
:meth:`FluidTransport.next_completion_wakeup` as a dynamic time source,
so cancelling/re-scheduling a completion is a version bump, never a
heap tombstone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..cluster.topology import ClusterTopology
from .impls import register_transport_impl
from .waterfill import (
    FlowIncidence,
    IncrementalMaxMin,
    bottleneck_rates,
    maxmin_rates_reference,
    maxmin_rates_vectorized,
)

__all__ = ["TransferMeta", "Transfer", "FluidTransport", "LoadSink"]

#: Accepted ``impl`` constructor values (mirrored by
#: ``SimulationConfig.transport_impl``; registered in the shared
#: transport-impl registry below).
TRANSPORT_IMPLS = ("vectorized", "reference", "csr", "incremental")

for _impl in TRANSPORT_IMPLS:
    register_transport_impl(_impl, "fluid")
del _impl

#: Completion-frontier depth: how many upcoming completion times are
#: materialised per rate epoch.  Deep enough to absorb a burst of
#: completions inside one rate-update window without a rescan.
_FRONTIER_DEPTH = 64

#: A flow is considered drained when this many bytes remain (absorbs
#: floating-point integration error; far below any real transfer size).
_EPS_BYTES = 0.5
#: Minimum allocated rate (bytes/s), guarding against zero-rate stalls
#: from floating-point cancellation in the water-filling loop.
_MIN_RATE = 1.0


class LoadSink(Protocol):
    """Anything that accumulates per-link byte loads over intervals."""

    def add_interval_bulk(
        self,
        keys: np.ndarray,
        rates: np.ndarray,
        start: float,
        end: float,
        unique_keys: bool = False,
    ) -> None:
        """Integrate ``rates`` (bytes/s) for ``keys`` over ``[start, end)``.

        ``unique_keys=True`` promises ``keys`` has no duplicates, letting
        implementations use a fast accumulation path.
        """


@dataclass(frozen=True)
class TransferMeta:
    """Application context attached to a transfer.

    The instrumentation layer uses this to tag socket events with the
    process/job that produced them — the linkage that lets the paper
    attribute congestion to application phases (§4.2).
    """

    kind: str
    job_id: int | None = None
    phase_index: int | None = None
    vertex_id: int | None = None
    connection_key: tuple | None = None


@dataclass(frozen=True)
class Transfer:
    """A completed transfer (ground truth, before instrumentation)."""

    transfer_id: int
    src: int
    dst: int
    size: float
    start_time: float
    end_time: float
    meta: TransferMeta = field(default=TransferMeta(kind="unknown"))

    @property
    def duration(self) -> float:
        """Wall-clock transfer duration in seconds."""
        return self.end_time - self.start_time

    @property
    def mean_rate(self) -> float:
        """Average achieved rate in bytes/s."""
        duration = self.duration
        return self.size / duration if duration > 0 else float("inf")


class FluidTransport:
    """Shared-bandwidth fluid flow simulator over a cluster topology."""

    #: Family tag used by the simulator dispatch and the validate layer.
    family = "fluid"

    def __init__(
        self,
        topology: ClusterTopology,
        sinks: list[LoadSink] | None = None,
        fairness: str = "maxmin",
        initial_capacity: int = 256,
        impl: str = "vectorized",
    ) -> None:
        if fairness not in ("maxmin", "bottleneck"):
            raise ValueError(f"unknown fairness mode {fairness!r}")
        if impl not in TRANSPORT_IMPLS:
            raise ValueError(f"unknown transport impl {impl!r}")
        self.topology = topology
        self.fairness = fairness
        self.impl = impl
        self.sinks: list[LoadSink] = list(sinks) if sinks else []
        self.capacities = topology.capacities.copy()
        self.num_links = topology.num_links
        self.max_path = 8

        size = max(16, initial_capacity)
        self._paths = np.full((size, self.max_path), -1, dtype=np.int64)
        self._remaining = np.zeros(size, dtype=float)
        self._rates = np.zeros(size, dtype=float)
        self._active = np.zeros(size, dtype=bool)
        self._meta: list[TransferMeta | None] = [None] * size
        self._on_complete: list[Callable[[Transfer], None] | None] = [None] * size
        self._src = np.zeros(size, dtype=np.int64)
        self._dst = np.zeros(size, dtype=np.int64)
        self._sizes = np.zeros(size, dtype=float)
        self._start_times = np.zeros(size, dtype=float)
        self._free_slots: list[int] = list(range(size - 1, -1, -1))

        self.now = 0.0
        self.rates_dirty = False
        #: Bumped whenever the active flow set changes; keys the cached
        #: active view and the allocator's incidence structures.
        self._flows_version = 0
        self._view_version = -1
        self._view: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._incidence_version = -1
        self._incidence: FlowIncidence | None = None
        self._completed_buffer: list[tuple[Transfer, Callable[[Transfer], None] | None]] = []
        self._next_transfer_id = 0
        self.transfers_started = 0
        #: Telemetry: fair-share allocation passes and concurrency peak.
        self.rate_recomputes = 0
        self.peak_active = 0

        #: Incremental allocator state (``impl="incremental"`` only).
        self._inc: IncrementalMaxMin | None = (
            IncrementalMaxMin(self.capacities, self.num_links)
            if impl == "incremental"
            else None
        )

        #: Rate epoch: bumped by every allocation pass.  The completion
        #: frontier below is valid for exactly one epoch; invalidating it
        #: is this counter bump, replacing per-transfer event cancel.
        self.rates_epoch = 0
        self._frontier_epoch = -1
        self._frontier_times: np.ndarray = np.empty(0)
        self._frontier_slots: np.ndarray = np.empty(0, dtype=np.int64)
        self._frontier_pos = 0
        self._frontier_truncated = False
        #: Slot/time of the earliest completion at the epoch rebuild; the
        #: engine's wakeup source fires once per epoch on this head (the
        #: legacy scheduler's single completion event, minus the heap).
        self._frontier_head_slot = -1
        self._frontier_head_time = 0.0
        self.frontier_rebuilds = 0

    # ---------------------------------------------------------------- slots

    def _grow(self) -> None:
        old = self._paths.shape[0]
        new = old * 2
        self._paths = np.vstack(
            [self._paths, np.full((old, self.max_path), -1, dtype=np.int64)]
        )
        for name in ("_remaining", "_rates", "_src", "_dst", "_sizes", "_start_times"):
            array = getattr(self, name)
            setattr(self, name, np.concatenate([array, np.zeros(old, dtype=array.dtype)]))
        self._active = np.concatenate([self._active, np.zeros(old, dtype=bool)])
        self._meta.extend([None] * old)
        self._on_complete.extend([None] * old)
        self._free_slots.extend(range(new - 1, old - 1, -1))

    @property
    def active_count(self) -> int:
        """Number of in-flight flows."""
        return int(self._active.sum())

    # ---------------------------------------------------------------- flows

    def add_flow(
        self,
        src: int,
        dst: int,
        size: float,
        path_links: tuple[int, ...],
        meta: TransferMeta,
        on_complete: Callable[[Transfer], None] | None = None,
    ) -> int:
        """Start a flow at the current time; returns its slot id.

        Zero-length paths (local transfers) are not flows; callers handle
        those without touching the transport.
        """
        if size <= 0:
            raise ValueError("flow size must be positive")
        if not path_links:
            raise ValueError("flow path must cross at least one link")
        if len(path_links) > self.max_path:
            raise ValueError("path exceeds transport's max path length")
        if not self._free_slots:
            self._grow()
        slot = self._free_slots.pop()
        self._paths[slot, :] = -1
        self._paths[slot, : len(path_links)] = path_links
        self._remaining[slot] = size
        self._rates[slot] = 0.0
        self._active[slot] = True
        self._meta[slot] = meta
        self._on_complete[slot] = on_complete
        self._src[slot] = src
        self._dst[slot] = dst
        self._sizes[slot] = size
        self._start_times[slot] = self.now
        if self._inc is not None:
            self._inc.on_add(slot, path_links)
        self.rates_dirty = True
        self._flows_version += 1
        self.transfers_started += 1
        active = self.transfers_started - self._next_transfer_id
        if active > self.peak_active:
            self.peak_active = active
        return slot

    def reroute_flow(self, slot: int, path_links: tuple[int, ...]) -> None:
        """Move an in-flight flow onto a new path (flowlet switching).

        Bytes already moved were integrated on the old path by the last
        ``advance_to``; callers re-routing mid-epoch must advance the
        transport to the switching instant first so per-link byte
        conservation holds across the change.  The flow-set version
        bumps, invalidating the cached incidence structures, and rates
        are marked dirty for the next allocation pass.
        """
        if not 0 <= slot < self._paths.shape[0] or not self._active[slot]:
            raise ValueError(f"slot {slot} has no active flow")
        if not path_links:
            raise ValueError("flow path must cross at least one link")
        if len(path_links) > self.max_path:
            raise ValueError("path exceeds transport's max path length")
        if self._inc is not None:
            self._inc.on_remove(slot)
        self._paths[slot, :] = -1
        self._paths[slot, : len(path_links)] = path_links
        if self._inc is not None:
            self._inc.on_add(slot, tuple(path_links))
        self.rates_dirty = True
        self._flows_version += 1

    def _active_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(active_idx, paths, valid)`` for the current flow set.

        ``paths``/``valid`` depend only on active-set membership, not on
        rates or remaining bytes, so the gather is reused across every
        rate integration and allocation pass between flow arrivals and
        completions.
        """
        if self._view_version != self._flows_version or self._view is None:
            active_idx = np.flatnonzero(self._active)
            paths = self._paths[active_idx]
            self._view = (active_idx, paths, paths >= 0)
            self._view_version = self._flows_version
        return self._view

    def advance_to(self, time: float) -> None:
        """Integrate current rates up to ``time`` and complete drained flows."""
        if time < self.now - 1e-9:
            raise ValueError("cannot advance backwards")
        dt = time - self.now
        active_idx, paths, valid = self._active_view()
        if dt > 0 and active_idx.size:
            rates = self._rates[active_idx]
            if self.sinks:
                link_ids = paths[valid]
                per_flow = np.repeat(rates, valid.sum(axis=1))
                link_rates = np.bincount(
                    link_ids, weights=per_flow, minlength=self.num_links
                )
                loaded = np.flatnonzero(link_rates)
                if loaded.size:
                    for sink in self.sinks:
                        sink.add_interval_bulk(
                            loaded, link_rates[loaded], self.now, time,
                            unique_keys=True,
                        )
            self._remaining[active_idx] = np.maximum(
                self._remaining[active_idx] - rates * dt, 0.0
            )
        self.now = max(self.now, time)
        if active_idx.size:
            drained = active_idx[self._remaining[active_idx] <= _EPS_BYTES]
            for slot in drained:
                self._finish(int(slot))

    def _finish(self, slot: int) -> None:
        meta = self._meta[slot]
        assert meta is not None
        transfer = Transfer(
            transfer_id=self._next_transfer_id,
            src=int(self._src[slot]),
            dst=int(self._dst[slot]),
            size=float(self._sizes[slot]),
            start_time=float(self._start_times[slot]),
            end_time=self.now,
            meta=meta,
        )
        self._completed_buffer.append((transfer, self._on_complete[slot]))
        self._next_transfer_id += 1
        if self._inc is not None:
            self._inc.on_remove(slot)
        self._active[slot] = False
        self._rates[slot] = 0.0
        self._meta[slot] = None
        self._on_complete[slot] = None
        self._free_slots.append(slot)
        self.rates_dirty = True
        self._flows_version += 1

    def pop_completed(
        self,
    ) -> list[tuple[Transfer, Callable[[Transfer], None] | None]]:
        """Return and clear (transfer, callback) pairs completed since the
        last call.  The transport never invokes callbacks itself: the
        simulator decides dispatch order."""
        completed = self._completed_buffer
        self._completed_buffer = []
        return completed

    # ---------------------------------------------------------------- rates

    def recompute_rates(self) -> None:
        """Re-run the fair-share allocation for the current active set."""
        self.rate_recomputes += 1
        self.rates_epoch += 1
        active_idx, paths, valid = self._active_view()
        if active_idx.size == 0:
            self.rates_dirty = False
            return
        if self.fairness == "maxmin":
            rates = self._maxmin_rates(active_idx, paths, valid)
        else:
            rates = self._bottleneck_rates(paths, valid)
        self._rates[active_idx] = np.maximum(rates, _MIN_RATE)
        self.rates_dirty = False

    def _flow_incidence(self, paths: np.ndarray, valid: np.ndarray) -> FlowIncidence:
        """Incidence structures for the current active set, version-cached."""
        if (
            self._incidence_version != self._flows_version
            or self._incidence is None
            or self._incidence.paths is not paths
        ):
            self._incidence = FlowIncidence(
                paths, valid, self.capacities, self.num_links
            )
            self._incidence_version = self._flows_version
        return self._incidence

    def _maxmin_rates(
        self, active_idx: np.ndarray, paths: np.ndarray, valid: np.ndarray
    ) -> np.ndarray:
        """Max-min fair allocation via the configured allocator.

        All implementations live in :mod:`repro.simulation.waterfill`.
        ``reference``, ``vectorized``, and ``csr`` produce bit-identical
        rates; ``incremental`` re-solves only the affected bottleneck
        subgraph and is equivalent within
        :data:`~repro.simulation.waterfill.INCREMENTAL_RTOL`.
        """
        if self.impl == "reference":
            return maxmin_rates_reference(
                paths, valid, self.capacities, self.num_links
            )
        if self.impl == "incremental":
            assert self._inc is not None
            return self._inc.solve(
                active_idx,
                paths,
                valid,
                incidence=self._flow_incidence(paths, valid),
            )
        return maxmin_rates_vectorized(
            paths,
            valid,
            self.capacities,
            self.num_links,
            incidence=self._flow_incidence(paths, valid),
            regime="csr" if self.impl == "csr" else "auto",
        )

    def _bottleneck_rates(self, paths: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Equal split on each link; flow rate = min share along its path."""
        return bottleneck_rates(paths, valid, self.capacities, self.num_links)

    # ------------------------------------------------------------- frontier

    def _rebuild_frontier(self, *, set_head: bool) -> None:
        """Materialise the next :data:`_FRONTIER_DEPTH` completion times.

        One vectorised pass (``argpartition`` over ``remaining / rate``)
        replaces per-transfer completion events.  Rates are constant
        within an epoch and ``remaining`` is integrated to ``self.now``
        before any query, so absolute completion times computed here stay
        exact for the whole epoch.  ``set_head`` records the epoch head
        for :meth:`next_completion_wakeup`; mid-epoch rebuilds (frontier
        exhausted after a truncation) keep the original head.
        """
        self.frontier_rebuilds += 1
        active_idx = self._active_view()[0]
        if active_idx.size == 0:
            horizons = np.empty(0)
            sel = np.empty(0, dtype=np.int64)
        else:
            rates = self._rates[active_idx]
            remaining = self._remaining[active_idx]
            with np.errstate(divide="ignore"):
                horizons = np.where(rates > 0, remaining / rates, np.inf)
            if horizons.size > _FRONTIER_DEPTH:
                sel = np.argpartition(horizons, _FRONTIER_DEPTH - 1)[:_FRONTIER_DEPTH]
            else:
                sel = np.arange(horizons.size)
            sel = sel[np.argsort(horizons[sel], kind="stable")]
            sel = sel[np.isfinite(horizons[sel])]
        self._frontier_times = self.now + horizons[sel]
        self._frontier_slots = active_idx[sel] if sel.size else sel
        self._frontier_pos = 0
        self._frontier_truncated = active_idx.size > sel.size and bool(
            sel.size == _FRONTIER_DEPTH
        )
        self._frontier_epoch = self.rates_epoch
        if set_head:
            if sel.size:
                self._frontier_head_slot = int(self._frontier_slots[0])
                self._frontier_head_time = float(self._frontier_times[0])
            else:
                self._frontier_head_slot = -1

    def next_completion_time(self) -> float | None:
        """Earliest time an active flow drains at current rates, or ``None``."""
        if self._frontier_epoch != self.rates_epoch:
            self._rebuild_frontier(set_head=True)
        for _ in range(2):
            times, slots = self._frontier_times, self._frontier_slots
            while self._frontier_pos < times.size:
                pos = self._frontier_pos
                if self._active[slots[pos]]:
                    return max(float(times[pos]), self.now)
                self._frontier_pos += 1
            if not self._frontier_truncated:
                return None
            # The materialised prefix drained entirely within this epoch;
            # rescan the survivors (same rates, so times stay exact).
            self._rebuild_frontier(set_head=False)
        return None

    def next_completion_wakeup(self) -> float | None:
        """Dynamic engine wakeup: this epoch's earliest completion.

        Fires once per rate epoch — after the head flow drains the next
        wakeup is the rate recompute, which starts a fresh epoch.  This
        reproduces the legacy scheduler exactly (it kept one completion
        event, re-armed only on recompute), so event logs stay
        bit-identical while cancel/re-schedule becomes an epoch bump.
        """
        if self._frontier_epoch != self.rates_epoch:
            self._rebuild_frontier(set_head=True)
        head = self._frontier_head_slot
        if head < 0 or not self._active[head]:
            return None
        return max(self._frontier_head_time, self.now)

    # ------------------------------------------------------------- inspection

    def earliest_active_start(self) -> float | None:
        """Start time of the oldest in-flight flow, or ``None`` if idle.

        The streaming recorder uses this as its emission watermark: the
        collector timestamps a transfer's events across its lifetime, so
        no future completion can emit an event before the oldest active
        flow's start time (minus clock skew).
        """
        active_idx = self._active_view()[0]
        if active_idx.size == 0:
            return None
        return float(self._start_times[active_idx].min())

    def active_rates(self) -> np.ndarray:
        """Current allocated rates (bytes/s) of the in-flight flows."""
        return self._rates[np.flatnonzero(self._active)].copy()

    def utilization_snapshot(self) -> np.ndarray:
        """Instantaneous per-link utilisation under current rates."""
        active_idx, paths, valid = self._active_view()
        link_rates = np.zeros(self.num_links)
        if active_idx.size:
            per_flow = np.repeat(self._rates[active_idx], valid.sum(axis=1))
            link_rates = np.bincount(
                paths[valid], weights=per_flow, minlength=self.num_links
            )
        return link_rates / self.capacities
