"""Max-min fair-share allocators: the transport hot path.

Every congestion figure in the paper (§4.2, §4.3, §4.4) is driven by the
fluid transport's progressive-filling ("water-filling") allocation, and a
campaign recomputes it after every event batch — profiling shows it is
the single most expensive operation in the pipeline (see
``benchmarks/bench_core_ops.py::test_maxmin_waterfill``).  This module
holds the three interchangeable implementations:

``maxmin_rates_reference``
    The original round-based NumPy loop, kept verbatim.  Selected with
    ``SimulationConfig.transport_impl = "reference"``; the differential
    tests and the ``transport.allocator_equivalence`` checker assert the
    optimised paths below reproduce it *bit for bit*, so a reference run
    and a vectorized run produce identical event logs.

``maxmin_rates_vectorized``
    The production allocator.  It exploits two structural facts of
    progressive filling with level grouping: each link saturates in at
    most one round, and each flow is assigned in exactly one round — so
    total work can be made proportional to the number of (flow, link)
    incidences rather than ``rounds x flows``.  Two regimes:

    * **small active sets** (the common campaign case): a lazy min-heap
      of link shares drives the rounds entirely in Python.  Saturated
      links pop off the heap in increasing share order, so the first
      saturated link that reaches a flow *is* that flow's bottleneck —
      no per-flow minimisation at all.
    * **large active sets** (``>= _CSR_FLOW_THRESHOLD``): a batched
      fixed-point elimination over a compacted link x flow incidence
      array (CSR-style ``flat``/``indptr``), where each round masks the
      saturated links and finds each remaining flow's bottleneck with a
      single ``np.minimum.reduceat``.

    Both regimes replay the reference rounds with the same IEEE-754
    operations in the same order, so the allocations are bit-identical;
    they differ only in bookkeeping.

``bottleneck_rates``
    The cheap ablation mode: equal split on each link, no leftover
    redistribution.  Shared by every implementation.

``IncrementalMaxMin``
    The paper-scale allocator, selected with
    ``SimulationConfig.transport_impl = "incremental"``.  Instead of
    re-running water-filling over *all* active flows on every arrival
    and departure, it maintains the bottleneck structure — per-link
    consumed bandwidth, link→flow adjacency, and each flow's bottleneck
    link — across events and re-solves only the **affected bottleneck
    subgraph**: the flows touching a dirtied link, expanded outward
    while frozen neighbours would be left more than
    :data:`INCREMENTAL_RTOL` away from their fair share.  The
    re-solve itself reuses the exact allocators above on the reduced
    subproblem (frozen flows appear as capacity already consumed), so
    it never oversubscribes a link; unlike ``vectorized`` it is
    *tolerance-based*, not bit-identical — see the module constant and
    the ``transport.incremental_equivalence`` checker in
    :mod:`repro.validate`.

The :class:`FlowIncidence` cache holds the per-active-set structures
(flat incidence arrays, link->flow adjacency, initial shares) keyed by
the transport's flow-set version, so back-to-back recomputations — e.g.
a barrier phase releasing shuffle flows over several event batches —
skip the rebuild.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

import numpy as np

__all__ = [
    "FlowIncidence",
    "IncrementalMaxMin",
    "INCREMENTAL_RTOL",
    "bottleneck_rates",
    "maxmin_rates_reference",
    "maxmin_rates_vectorized",
]

#: Relative width within which links saturate together during one
#: water-filling round.  Bounds the number of rounds by the number of
#: *distinct share magnitudes* instead of distinct links, at a worst
#: case rate error of the grouping width — far below the fidelity of
#: the fluid abstraction itself.
_LEVEL_GROUPING = 0.02

#: Active-flow count at which the vectorized allocator switches from the
#: heap-driven Python rounds to the batched CSR elimination.  Below it,
#: NumPy per-call overhead dominates the tiny arrays; above it, the
#: batched path's O(remaining incidences) rounds win decisively.
_CSR_FLOW_THRESHOLD = 2048

_INF = float("inf")


# --------------------------------------------------------------- reference


def bottleneck_rates(
    paths: np.ndarray, valid: np.ndarray, capacities: np.ndarray, num_links: int
) -> np.ndarray:
    """Equal split on each link; flow rate = min share along its path."""
    flat = paths[valid]
    counts = np.bincount(flat, minlength=num_links).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.where(counts > 0, capacities / counts, np.inf)
    padded_share = np.where(paths >= 0, share[np.maximum(paths, 0)], np.inf)
    return padded_share.min(axis=1)


def maxmin_rates_reference(
    paths: np.ndarray, valid: np.ndarray, capacities: np.ndarray, num_links: int
) -> np.ndarray:
    """Progressive-filling max-min fair allocation (round-based loop).

    Links whose fair share lies within ``_LEVEL_GROUPING`` of the
    current bottleneck saturate together in one iteration.  Kept as the
    ground truth the optimised allocators are checked against.
    """
    num_flows = paths.shape[0]
    flat = paths[valid]
    counts = np.bincount(flat, minlength=num_links).astype(float)
    remaining_cap = capacities.astype(float).copy()
    rates = np.zeros(num_flows)
    unassigned = np.ones(num_flows, dtype=bool)
    num_unassigned = num_flows
    for _ in range(num_links + 1):
        if num_unassigned == 0:
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            share = remaining_cap / counts
        share[counts <= 0] = np.inf
        level = share.min()
        if not np.isfinite(level):
            break
        saturated = share <= level * (1.0 + _LEVEL_GROUPING)
        crosses = (saturated[paths] & valid).any(axis=1) & unassigned
        num_crossing = int(crosses.sum())
        if num_crossing == 0:
            break
        # Each grouped flow gets the exact share of its own tightest
        # saturated link (not the group level), so flows on slightly
        # wider links are not clipped to the narrowest one.
        padded = np.where(valid & saturated[paths], share[paths], np.inf)
        rates[crosses] = padded[crosses].min(axis=1)
        unassigned[crosses] = False
        num_unassigned -= num_crossing
        crossing_valid = valid[crosses]
        used = paths[crosses][crossing_valid]
        used_rates = np.repeat(rates[crosses], crossing_valid.sum(axis=1))
        consumed = np.bincount(used, weights=used_rates, minlength=num_links)
        np.maximum(remaining_cap - consumed, 0.0, out=remaining_cap)
        counts -= np.bincount(used, minlength=num_links)
    # Flows left unassigned cross only links that lost all contenders
    # (possible only through float jitter): give them their bottleneck
    # share directly.
    if num_unassigned > 0:
        rates[unassigned] = bottleneck_rates(
            paths[unassigned], valid[unassigned], capacities, num_links
        )
    return rates


# --------------------------------------------------------------- incidence


class FlowIncidence:
    """Per-active-set structures shared across recomputations.

    Everything here is a pure function of ``(paths, valid, capacities)``;
    the transport caches an instance keyed by its flow-set version so
    consecutive allocation passes over an unchanged active set skip the
    rebuild.  The Python adjacency lists used by the heap regime are
    built lazily — the CSR regime never pays for them.
    """

    __slots__ = (
        "paths",
        "valid",
        "num_flows",
        "lens",
        "flat",
        "counts0",
        "_cap_list",
        "_share0_list",
        "_heap0",
        "_flow_links",
        "_link_flows",
    )

    def __init__(
        self, paths: np.ndarray, valid: np.ndarray, capacities: np.ndarray,
        num_links: int,
    ) -> None:
        self.paths = paths
        self.valid = valid
        self.num_flows = paths.shape[0]
        self.lens = valid.sum(axis=1)
        self.flat = paths[valid]
        self.counts0 = np.bincount(self.flat, minlength=num_links).astype(float)
        self._cap_list: list[float] | None = None
        self._share0_list: list[float] | None = None
        self._heap0: list[tuple[float, int]] | None = None
        self._flow_links: list[list[int]] | None = None
        self._link_flows: list[list[int]] | None = None

    def heap_state(
        self, capacities: np.ndarray, num_links: int
    ) -> tuple[list, list, list, list, list, list]:
        """Fresh per-call state for the heap regime (lists are copied)."""
        if self._flow_links is None:
            share0 = np.full(num_links, _INF)
            np.divide(
                capacities, self.counts0, out=share0, where=self.counts0 > 0
            )
            share0_list = share0.tolist()
            heap0 = [(s, l) for l, s in enumerate(share0_list) if s < _INF]
            heapify(heap0)
            flow_links: list[list[int]] = []
            link_flows: list[list[int]] = [[] for _ in range(num_links)]
            rows = self.paths.tolist()
            lens = self.lens.tolist()
            for flow, row in enumerate(rows):
                links = row[: lens[flow]]
                flow_links.append(links)
                for link in links:
                    link_flows[link].append(flow)
            self._cap_list = capacities.astype(float).tolist()
            self._share0_list = share0_list
            self._heap0 = heap0
            self._flow_links = flow_links
            self._link_flows = link_flows
        return (
            self.counts0.tolist(),
            list(self._cap_list),
            list(self._share0_list),
            list(self._heap0),
            self._flow_links,
            self._link_flows,
        )


# --------------------------------------------------------------- vectorized


def maxmin_rates_vectorized(
    paths: np.ndarray,
    valid: np.ndarray,
    capacities: np.ndarray,
    num_links: int,
    incidence: FlowIncidence | None = None,
    regime: str = "auto",
) -> np.ndarray:
    """Bit-identical fast replay of :func:`maxmin_rates_reference`.

    Dispatches between the heap regime (small active sets, Python
    rounds) and the CSR regime (large active sets, batched NumPy
    elimination) on ``_CSR_FLOW_THRESHOLD``; both produce the exact
    floats of the reference loop, so the choice never shows up in an
    event log.  ``regime`` forces one path ("heap" or "csr") — that is
    how ``transport_impl = "csr"`` pins the batched elimination for
    differential tests regardless of the active-set size.
    """
    if paths.shape[0] == 0:
        return np.zeros(0)
    if incidence is None:
        incidence = FlowIncidence(paths, valid, capacities, num_links)
    if regime == "csr" or (
        regime == "auto" and incidence.num_flows >= _CSR_FLOW_THRESHOLD
    ):
        return _maxmin_csr(paths, valid, capacities, num_links, incidence)
    return _maxmin_heap(paths, valid, capacities, num_links, incidence)


def _maxmin_heap(
    paths: np.ndarray,
    valid: np.ndarray,
    capacities: np.ndarray,
    num_links: int,
    incidence: FlowIncidence,
) -> np.ndarray:
    """Heap-driven replay of the reference rounds, all in Python.

    A lazy min-heap of ``(share, link)`` supplies each round's level and
    its saturated links *in increasing share order* — so the first
    saturated link that reaches a flow is that flow's tightest saturated
    link, and the flow's rate is read off directly.  Stale heap entries
    (links whose share has since changed) are discarded on pop by
    comparing against the live share table.  Per-link consumption is
    accumulated in increasing flow order and applied once per round,
    matching the reference's ``np.bincount`` summation order so the
    floating-point results are identical.
    """
    num_flows = paths.shape[0]
    counts, remaining, share, heap, flow_links, link_flows = (
        incidence.heap_state(capacities, num_links)
    )
    rates_out = [0.0] * num_flows
    unassigned = [True] * num_flows
    num_unassigned = num_flows
    rounds_left = num_links + 1
    pop = heappop
    push = heappush
    while rounds_left > 0 and num_unassigned > 0:
        rounds_left -= 1
        while heap:
            level, link = heap[0]
            if share[link] == level:
                break
            pop(heap)
        if not heap:
            break
        thresh = heap[0][0] * (1.0 + _LEVEL_GROUPING)
        cand: list[int] = []
        append = cand.append
        while heap:
            s, link = heap[0]
            if s > thresh:
                break
            pop(heap)
            if share[link] == s:
                for flow in link_flows[link]:
                    if unassigned[flow]:
                        unassigned[flow] = False
                        rates_out[flow] = s
                        append(flow)
        if not cand:
            break
        cand.sort()
        num_unassigned -= len(cand)
        consumed: dict[int, float] = {}
        cget = consumed.get
        for flow in cand:
            rate = rates_out[flow]
            for link in flow_links[flow]:
                counts[link] -= 1.0
                total = cget(link)
                consumed[link] = rate if total is None else total + rate
        for link, total in consumed.items():
            left = remaining[link] - total
            if left < 0.0:
                left = 0.0
            remaining[link] = left
            count = counts[link]
            if count > 0.0:
                s = left / count
                share[link] = s
                push(heap, (s, link))
            else:
                share[link] = _INF
    rates = np.array(rates_out)
    if num_unassigned > 0:
        rem = np.array(
            [f for f in range(num_flows) if unassigned[f]], dtype=np.int64
        )
        rates[rem] = bottleneck_rates(
            paths[rem], valid[rem], capacities, num_links
        )
    return rates


def _maxmin_csr(
    paths: np.ndarray,
    valid: np.ndarray,
    capacities: np.ndarray,
    num_links: int,
    incidence: FlowIncidence,
) -> np.ndarray:
    """Batched elimination over a compacted link x flow incidence array.

    Each round masks the saturated links, finds every remaining flow's
    tightest saturated link with one ``np.minimum.reduceat`` over the
    CSR-flattened incidence, then compacts assigned flows out of the
    working arrays — so round ``k`` only touches flows still unassigned
    after round ``k - 1``.  Summation orders match the reference's
    ``np.bincount`` calls (flow-major, ascending), keeping the floats
    bit-identical.
    """
    num_flows = paths.shape[0]
    lens = incidence.lens
    flat = incidence.flat
    counts = incidence.counts0.copy()
    remaining_cap = capacities.astype(float).copy()
    rates = np.zeros(num_flows)
    ids = np.arange(num_flows)
    share = np.empty(num_links)
    num_unassigned = num_flows
    indptr = np.zeros(num_flows + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    for _ in range(num_links + 1):
        if num_unassigned == 0:
            break
        share.fill(np.inf)
        np.divide(remaining_cap, counts, out=share, where=counts > 0)
        level = share.min()
        if not np.isfinite(level):
            break
        masked = np.where(share <= level * (1.0 + _LEVEL_GROUPING), share, np.inf)
        mins = np.minimum.reduceat(masked[flat], indptr[:-1])
        crossing = np.isfinite(mins)
        num_crossing = int(crossing.sum())
        if num_crossing == 0:
            break
        rates[ids[crossing]] = mins[crossing]
        num_unassigned -= num_crossing
        expanded = np.repeat(crossing, lens)
        used = flat[expanded]
        used_rates = np.repeat(mins[crossing], lens[crossing])
        consumed = np.bincount(used, weights=used_rates, minlength=num_links)
        np.maximum(remaining_cap - consumed, 0.0, out=remaining_cap)
        counts -= np.bincount(used, minlength=num_links)
        keep = ~crossing
        ids = ids[keep]
        lens = lens[keep]
        flat = flat[~expanded]
        indptr = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
    if num_unassigned > 0:
        rates[ids] = bottleneck_rates(
            paths[ids], valid[ids], capacities, num_links
        )
    return rates



# --------------------------------------------------------------- incremental

#: Relative tolerance of the incremental allocator's rates against a
#: from-scratch reference allocation over the same active set.  The
#: allocator corrects itself whenever a flow's achievable rate drifts
#: past this bound (the starvation sweep) or a link accumulates this
#: much capacity-relative churn (the budget), and the reference itself
#: groups links saturating within ``_LEVEL_GROUPING`` of each other, so
#: even exact local corrections regroup rounds differently.  The
#: ``transport.incremental_equivalence`` checker and the Hypothesis
#: interleaving property assert agreement at this bound.
INCREMENTAL_RTOL = 0.15

#: Full from-scratch re-anchor cadence (in solves).  Bounds any drift an
#: adversarial event sequence could accumulate in frozen rates; costs
#: one vectorized allocation per this many events.
_REANCHOR_INTERVAL = 64

#: Fraction of :data:`INCREMENTAL_RTOL` a link may accumulate in
#: capacity-relative bandwidth churn before the flows crossing it are
#: re-solved exactly.  Half the tolerance leaves the other half for
#: admission error and the reference's own level grouping.
_CHURN_BUDGET = 1.0

#: Affected-set fraction beyond which a full solve is cheaper than the
#: subproblem bookkeeping.
_MAX_AFFECTED_FRACTION = 0.75

#: Starvation-sweep rounds per solve.  Each round lifts every starved
#: flow by exactly re-solving it with the flows crossing its limiting
#: link; a lift can expose starvation one hop away, so a few rounds let
#: it diffuse.  A state still starved after the last round is
#: re-anchored with a full solve.
_SWEEP_ROUNDS = 4

class IncrementalMaxMin:
    """Max-min allocator state maintained across flow arrivals/departures.

    The from-scratch allocators above cost ``O(rounds x incidences)``
    per call regardless of how little changed; at paper scale (tens of
    thousands of concurrent flows) that dominates the whole simulation.
    The observation that makes an incremental allocator viable is that
    datacenter bottlenecks are *shared*: hundreds of flows sit at the
    fair level of the same core or uplink bottleneck, so one arrival or
    departure moves each cohort member's fair share by ``~1/cohort`` —
    far inside the documented :data:`INCREMENTAL_RTOL`.  Re-solving the
    whole network on every event buys precision nobody asked for at the
    full allocator's price.

    Events are absorbed with tolerance-aware local work:

    1. **Admit** (arrival): the newcomer is granted the minimum over
       its path links of each link's projected fair level
       ``(cohort_level x n + residual) / (n + 1)``; on links where that
       exceeds the free residual, the bottleneck cohort is scaled down
       pro rata to make room (one vectorized pass over the cohort's
       incidence).
    2. **Release** (departure): the departed flow's bandwidth is
       returned to the residual of its links; nobody else's rate moves
       until a correction trigger fires.
    3. **Correction triggers**, evaluated after every event batch:

       - *churn budget*: grants, steals and releases accumulate per
         link; a link past :data:`_CHURN_BUDGET` x rtol of its capacity
         has drifted in aggregate.
       - *starvation sweep*: a vectorized pass computes every flow's
         achievable rate — the minimum over its path of saturated-link
         fair levels (the max rate crossing the link) and free residual
         headroom.  A flow whose achievable rate exceeds its allocated
         rate by more than rtol is *starved*: the direct, per-flow
         measure of the error the equivalence checker bounds.  This is
         what the churn budget alone cannot see — a lone flow starved
         under hundreds of correctly-allocated neighbours moves its
         link by well under any link-relative budget.

       All hot links and every starved flow's limiting link have their
       *crossing flows* re-solved exactly against the frozen
       complement — crossing flows, not just the resident cohort,
       because correcting a starved flow requires pulling drifted-high
       pass-through flows back down.  Frozen consumption is subtracted
       from capacities, so a correction can never oversubscribe a link.
       Corrections run for up to :data:`_SWEEP_ROUNDS` rounds (each
       exact fix can expose starvation one hop away); anything still
       dirty after that — or touching more than
       :data:`_MAX_AFFECTED_FRACTION` of the active flows — falls back
       to a full solve.
    4. **Re-anchor**: a full vectorized solve additionally runs every
       :data:`_REANCHOR_INTERVAL` solves, re-grounding bottleneck
       assignments and clearing all budgets.

    Per-link consumption is re-derived from the live rates at the top
    of every solve, so accounting noise never compounds.  All state is
    slot-indexed to match
    :class:`~repro.simulation.transport.FluidTransport`, and the solve
    machinery gathers subproblems from slot-indexed path arrays so the
    per-event cost is vectorized over the flows involved, never a
    Python loop over flows.
    """

    def __init__(
        self,
        capacities: np.ndarray,
        num_links: int,
        *,
        rtol: float = INCREMENTAL_RTOL,
        reanchor_interval: int = _REANCHOR_INTERVAL,
    ) -> None:
        self.capacities = np.asarray(capacities, dtype=float)
        self.num_links = num_links
        self.rtol = rtol
        self.reanchor_interval = reanchor_interval
        #: Total allocated bandwidth per link under the current rates.
        self.link_consumed = np.zeros(num_links)
        #: Unredistributed bandwidth churn per link since it was last
        #: solved exactly.
        self.churn = np.zeros(num_links)
        #: Slots of the flows crossing each link.
        self.link_flows: list[set[int]] = [set() for _ in range(num_links)]
        #: Path (tuple of link ids) per registered slot.
        self.flow_links: dict[int, tuple[int, ...]] = {}
        #: Allocated rate per slot (grown on demand).
        self.rates_by_slot = np.zeros(256)
        #: Tightest link on each flow's path as of its last solve.
        self.bottleneck_by_slot = np.full(256, -1, dtype=np.int64)
        #: Slot-indexed path rows (-1 padded), mirroring the transport's
        #: layout so subproblem gathers are one fancy index.
        self.paths_by_slot = np.full((256, 8), -1, dtype=np.int64)
        #: Flows added since the last solve, admitted in slot order.
        self.pending_new: set[int] = set()
        self._anchored = False
        self._solves_since_anchor = 0
        # Telemetry, folded into the run metrics by the simulator.
        self.full_solves = 0
        self.incremental_solves = 0
        #: Exact subgraph corrections (budget- or starvation-triggered).
        self.expansions = 0
        self.affected_flows_total = 0

    # ------------------------------------------------------------- events

    def _ensure_slot(self, slot: int) -> None:
        size = self.rates_by_slot.size
        if slot >= size:
            new = max(size * 2, slot + 1)
            self.rates_by_slot = np.concatenate(
                [self.rates_by_slot, np.zeros(new - size)]
            )
            self.bottleneck_by_slot = np.concatenate(
                [self.bottleneck_by_slot,
                 np.full(new - size, -1, dtype=np.int64)]
            )
            self.paths_by_slot = np.vstack([
                self.paths_by_slot,
                np.full((new - size, self.paths_by_slot.shape[1]), -1,
                        dtype=np.int64),
            ])

    def on_add(self, slot: int, links: tuple[int, ...]) -> None:
        """Register an arriving flow (admitted at the next solve)."""
        self._ensure_slot(slot)
        width = self.paths_by_slot.shape[1]
        if len(links) > width:
            pad = np.full(
                (self.paths_by_slot.shape[0], len(links) - width), -1,
                dtype=np.int64,
            )
            self.paths_by_slot = np.hstack([self.paths_by_slot, pad])
        self.flow_links[slot] = tuple(links)
        self.rates_by_slot[slot] = 0.0
        self.bottleneck_by_slot[slot] = -1
        self.paths_by_slot[slot, :] = -1
        self.paths_by_slot[slot, : len(links)] = links
        for link in links:
            self.link_flows[link].add(slot)
        self.pending_new.add(slot)

    def on_remove(self, slot: int) -> None:
        """Unregister a departing flow and release its bandwidth."""
        links = self.flow_links.pop(slot, None)
        if links is None:
            return
        rate = float(self.rates_by_slot[slot])
        self.rates_by_slot[slot] = 0.0
        self.bottleneck_by_slot[slot] = -1
        self.paths_by_slot[slot, :] = -1
        self.pending_new.discard(slot)
        for link in links:
            self.link_flows[link].discard(slot)
            self.link_consumed[link] -= rate
            self.churn[link] += rate
        np.maximum(self.link_consumed, 0.0, out=self.link_consumed)

    # ------------------------------------------------------------- solves

    def solve(
        self,
        active_idx: np.ndarray,
        paths: np.ndarray,
        valid: np.ndarray,
        incidence: FlowIncidence | None = None,
    ) -> np.ndarray:
        """Rates for ``active_idx`` after absorbing pending events.

        ``paths``/``valid``/``incidence`` describe the current active
        set exactly as the transport's cached view provides them.
        """
        num_active = active_idx.size
        if num_active == 0:
            self.pending_new.clear()
            self.churn[:] = 0.0
            self._anchored = True
            return np.zeros(0)
        if (
            not self._anchored
            or self._solves_since_anchor >= self.reanchor_interval
        ):
            return self._full_solve(active_idx, paths, valid, incidence)
        # Flat incidence view, shared by the consumption rebuild and the
        # starvation sweeps (paths/valid stay fixed within one solve).
        # The transport's version-cached FlowIncidence already carries
        # these arrays; fall back to computing them here for direct use.
        if incidence is not None:
            counts = incidence.lens
            flat = incidence.flat
        else:
            counts = valid.sum(axis=1)
            flat = paths[valid]
        bounds = np.zeros(counts.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=bounds[1:])
        # Re-derive per-link consumption exactly from the live rates so
        # accounting noise (steal clamps, float drift) never compounds.
        self.link_consumed = np.bincount(
            flat,
            weights=np.repeat(self.rates_by_slot[active_idx], counts),
            minlength=self.num_links,
        ).astype(float)
        cohort_cache: dict[int, np.ndarray] = {}
        for slot in sorted(self.pending_new):
            self._admit(slot, cohort_cache)
        self.pending_new.clear()
        hot = np.flatnonzero(
            self.churn
            > _CHURN_BUDGET * self.rtol * np.maximum(self.capacities, 1.0)
        )
        if hot.size:
            affected: set[int] = set()
            for link in hot:
                cohort = cohort_cache.get(int(link))
                if cohort is None:
                    cohort = self._cohort(int(link))
                affected.update(cohort.tolist())
            if len(affected) > _MAX_AFFECTED_FRACTION * num_active:
                return self._full_solve(active_idx, paths, valid, incidence)
            if affected and not self._subgraph_solve(affected):
                return self._full_solve(active_idx, paths, valid, incidence)
            self.churn[hot] = 0.0
        # Starvation corrections: lift each starved flow by re-solving
        # it together with everything crossing its limiting link.  One
        # lift can expose starvation a hop away, so sweep a few rounds;
        # a state that will not settle locally is re-anchored globally.
        for _ in range(_SWEEP_ROUNDS):
            starved_rows, limiting = self._starved(
                active_idx, paths, valid, flat, counts, bounds
            )
            if starved_rows.size == 0:
                break
            affected = set(active_idx[starved_rows].tolist())
            for link in limiting:
                affected.update(self.link_flows[int(link)])
            if len(affected) > _MAX_AFFECTED_FRACTION * num_active:
                return self._full_solve(active_idx, paths, valid, incidence)
            if not self._subgraph_solve(affected):
                return self._full_solve(active_idx, paths, valid, incidence)
        else:
            starved_rows, _ = self._starved(
                active_idx, paths, valid, flat, counts, bounds
            )
            if starved_rows.size:
                return self._full_solve(active_idx, paths, valid, incidence)
        self.incremental_solves += 1
        self._solves_since_anchor += 1
        return self.rates_by_slot[active_idx]

    def _starved(
        self,
        active_idx: np.ndarray,
        paths: np.ndarray,
        valid: np.ndarray,
        flat: np.ndarray,
        counts: np.ndarray,
        bounds: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rows of flows starved beyond the tolerance, and their limits.

        A flow is starved when its *achievable* rate — the minimum over
        its path of each saturated link's fair level (the maximum rate
        crossing it) and each unsaturated link's free headroom — beats
        its allocated rate by more than the tolerance.  This is the
        direct per-flow measure of the error the equivalence checker
        bounds, and the one failure mode link-level churn budgets cannot
        see: a lone flow starved under hundreds of correctly-allocated
        neighbours moves its link by well under any link-relative
        budget.
        """
        rates = self.rates_by_slot[active_idx]
        flat_rates = np.repeat(rates, counts)
        level = np.zeros(self.num_links)
        np.maximum.at(level, flat, flat_rates)
        residual = np.maximum(self.capacities - self.link_consumed, 0.0)
        # A link's free residual would be water-filled across the flows
        # sitting *at* its level (anyone lower is capped elsewhere), so
        # each level-setter's entitlement grows by residual / their
        # count: the whole residual for a lone top flow, a negligible
        # sliver inside a hundreds-strong cohort.  Even an exact
        # solution leaves ~_LEVEL_GROUPING of slack on bottlenecks, so
        # treating the residual as any one flow's headroom would flag
        # entire cohorts as starved against a reference that grouped
        # the same slack away.
        level_flat = level[flat]
        top = np.bincount(
            flat,
            weights=(
                flat_rates >= (1.0 - 2.0 * _LEVEL_GROUPING) * level_flat
            ).astype(float),
            minlength=self.num_links,
        )
        share = residual / np.maximum(top, 1.0)
        # Per-link ceiling: fairness entitles a flow up to the level,
        # and the level-setters additionally split the free residual.
        # Everything runs on the flat incidence (segmented by ``bounds``)
        # to avoid materialising padded flows x width temporaries.
        flat_ceiling = share[flat]
        flat_ceiling += flat_rates
        np.maximum(flat_ceiling, level_flat, out=flat_ceiling)
        achievable = np.minimum.reduceat(flat_ceiling, bounds)
        achievable[counts == 0] = np.inf
        rows = np.flatnonzero(
            np.isfinite(achievable)
            & (achievable - rates > self.rtol * np.maximum(rates, 1.0))
        )
        if rows.size == 0:
            return rows, np.empty(0, dtype=np.int64)
        limiting: set[int] = set()
        for row in rows:
            start = bounds[row]
            segment = flat_ceiling[start : start + counts[row]]
            limiting.add(int(flat[start + int(segment.argmin())]))
        return rows, np.fromiter(limiting, dtype=np.int64, count=len(limiting))

    def _cohort(self, link: int) -> np.ndarray:
        """Slots of the flows currently bottlenecked on ``link``."""
        crossing = self.link_flows[link]
        if not crossing:
            return np.empty(0, dtype=np.int64)
        arr = np.fromiter(crossing, dtype=np.int64, count=len(crossing))
        return arr[self.bottleneck_by_slot[arr] == link]

    def _admit(self, slot: int, cohort_cache: dict[int, np.ndarray]) -> None:
        """Grant an arriving flow its projected fair share.

        The grant is the minimum over the flow's links of the projected
        fair level ``(level x n + residual) / (n + 1)`` — what a fresh
        water-filling would hand the newcomer if each link's cohort and
        free residual were split ``n + 1`` ways.  Links whose residual
        cannot cover the grant have their cohort scaled down pro rata;
        the freed bandwidth on *other* links those cohort flows cross is
        charged to their churn budgets, as is the grant itself.
        """
        links = self.flow_links[slot]
        link_arr = np.fromiter(links, dtype=np.int64, count=len(links))
        caps = self.capacities[link_arr]
        residual = np.maximum(caps - self.link_consumed[link_arr], 0.0)
        entitle = np.empty(link_arr.size)
        for i, link in enumerate(links):
            cohort = cohort_cache.get(link)
            if cohort is None:
                cohort = self._cohort(link)
                cohort_cache[link] = cohort
            n = cohort.size
            if n:
                level = float(self.rates_by_slot[cohort].max())
                entitle[i] = (level * n + residual[i]) / (n + 1)
            else:
                entitle[i] = residual[i]
        grant = float(entitle.min())
        bottleneck = int(link_arr[int(entitle.argmin())])
        if grant > 0.0:
            need = grant - residual
            for i in np.flatnonzero(need > 1e-9 * grant):
                link = links[int(i)]
                cohort = cohort_cache[link]
                rates = self.rates_by_slot[cohort]
                total = float(rates.sum())
                if total <= 0.0:
                    continue
                shrink = min(float(need[i]) / total, 1.0)
                delta = rates * shrink
                self.rates_by_slot[cohort] = rates - delta
                cpaths = self.paths_by_slot[cohort]
                cvalid = cpaths >= 0
                freed = np.bincount(
                    cpaths[cvalid],
                    weights=np.repeat(delta, cvalid.sum(axis=1)),
                    minlength=self.num_links,
                )
                self.link_consumed -= freed
                np.maximum(self.link_consumed, 0.0, out=self.link_consumed)
                self.churn += freed
            self.link_consumed[link_arr] = np.minimum(
                self.link_consumed[link_arr] + grant, caps
            )
            np.add.at(self.churn, link_arr, grant)
        self.rates_by_slot[slot] = grant
        self.bottleneck_by_slot[slot] = bottleneck
        cached = cohort_cache.get(bottleneck)
        if cached is not None:
            cohort_cache[bottleneck] = np.append(cached, slot)

    def _subgraph_solve(self, affected: "set[int] | frozenset[int]") -> bool:
        """Exactly re-solve ``affected`` against the frozen complement.

        Returns ``False`` when the gathered subproblem is degenerate and
        the caller should fall back to a full solve.  The frozen
        complement's consumption is subtracted from capacities first, so
        the sub-allocation can never oversubscribe a link.  The shifts
        this causes on neighbouring links are *not* charged to their
        budgets: the per-event charges (grants, releases) are already
        first-order complete, and charging corrections too
        double-counts — it makes every correction look like fresh drift
        and cascades sub-solves across the whole core.  Second-order
        drift is caught by the starvation sweep and the periodic
        re-anchor.
        """
        flow_arr = np.fromiter(affected, dtype=np.int64, count=len(affected))
        flow_arr.sort()
        paths_global = self.paths_by_slot[flow_arr]
        sub_valid = paths_global >= 0
        if not sub_valid.any():
            return False
        link_arr = np.unique(paths_global[sub_valid])
        sub_paths = np.full_like(paths_global, -1)
        sub_paths[sub_valid] = np.searchsorted(link_arr, paths_global[sub_valid])
        counts = sub_valid.sum(axis=1)
        num_sub_links = link_arr.size
        internal_old = np.bincount(
            sub_paths[sub_valid],
            weights=np.repeat(self.rates_by_slot[flow_arr], counts),
            minlength=num_sub_links,
        )
        external = self.link_consumed[link_arr] - internal_old
        np.maximum(external, 0.0, out=external)
        sub_caps = np.maximum(self.capacities[link_arr] - external, 0.0)
        # Mid-size subproblems (hundreds of flows) sit below the global
        # CSR threshold but already favour batched elimination over the
        # heap walk; tiny cohorts stay on the adaptive default.
        sub_rates = maxmin_rates_vectorized(
            sub_paths,
            sub_valid,
            sub_caps,
            num_sub_links,
            regime="csr" if flow_arr.size >= 256 else None,
        )
        internal_new = np.bincount(
            sub_paths[sub_valid],
            weights=np.repeat(sub_rates, counts),
            minlength=num_sub_links,
        )
        self.rates_by_slot[flow_arr] = sub_rates
        self.link_consumed[link_arr] = external + internal_new
        self._refresh_bottlenecks(flow_arr, paths_global, sub_valid)
        self.expansions += 1
        self.affected_flows_total += flow_arr.size
        return True

    def _full_solve(
        self,
        active_idx: np.ndarray,
        paths: np.ndarray,
        valid: np.ndarray,
        incidence: FlowIncidence | None,
    ) -> np.ndarray:
        rates = maxmin_rates_vectorized(
            paths, valid, self.capacities, self.num_links, incidence=incidence
        )
        self._ensure_slot(int(active_idx.max(initial=0)))
        self.rates_by_slot[active_idx] = rates
        flat = paths[valid]
        per_link = np.repeat(rates, valid.sum(axis=1))
        self.link_consumed = np.bincount(
            flat, weights=per_link, minlength=self.num_links
        ).astype(float)
        self._refresh_bottlenecks(active_idx, paths, valid)
        self.churn[:] = 0.0
        self.pending_new.clear()
        self._anchored = True
        self._solves_since_anchor = 0
        self.full_solves += 1
        return rates

    def _refresh_bottlenecks(
        self, slots: np.ndarray, paths: np.ndarray, valid: np.ndarray
    ) -> None:
        """``bottleneck_by_slot`` ← the path link with the lowest fair level.

        In a max-min allocation a flow's bottleneck is the saturated
        link whose fair-share level equals the flow's rate; that level
        is observable as the maximum rate among the flows crossing the
        link.  Unsaturated links are ranked after every saturated one (a
        flow is never bottlenecked where capacity is left over).
        """
        if slots.size == 0:
            return
        level = np.zeros(self.num_links)
        flat = paths[valid]
        np.maximum.at(
            level, flat, np.repeat(self.rates_by_slot[slots], valid.sum(axis=1))
        )
        residual = self.capacities - self.link_consumed
        saturated = residual <= self.rtol * np.maximum(self.capacities, 1.0)
        rank = np.where(saturated, level, level.max(initial=0.0) + 1.0 + residual)
        padded = np.where(valid, rank[np.maximum(paths, 0)], np.inf)
        tightest = padded.argmin(axis=1)
        self.bottleneck_by_slot[slots] = paths[
            np.arange(slots.size), tightest
        ]
