"""Max-min fair-share allocators: the transport hot path.

Every congestion figure in the paper (§4.2, §4.3, §4.4) is driven by the
fluid transport's progressive-filling ("water-filling") allocation, and a
campaign recomputes it after every event batch — profiling shows it is
the single most expensive operation in the pipeline (see
``benchmarks/bench_core_ops.py::test_maxmin_waterfill``).  This module
holds the three interchangeable implementations:

``maxmin_rates_reference``
    The original round-based NumPy loop, kept verbatim.  Selected with
    ``SimulationConfig.transport_impl = "reference"``; the differential
    tests and the ``transport.allocator_equivalence`` checker assert the
    optimised paths below reproduce it *bit for bit*, so a reference run
    and a vectorized run produce identical event logs.

``maxmin_rates_vectorized``
    The production allocator.  It exploits two structural facts of
    progressive filling with level grouping: each link saturates in at
    most one round, and each flow is assigned in exactly one round — so
    total work can be made proportional to the number of (flow, link)
    incidences rather than ``rounds x flows``.  Two regimes:

    * **small active sets** (the common campaign case): a lazy min-heap
      of link shares drives the rounds entirely in Python.  Saturated
      links pop off the heap in increasing share order, so the first
      saturated link that reaches a flow *is* that flow's bottleneck —
      no per-flow minimisation at all.
    * **large active sets** (``>= _CSR_FLOW_THRESHOLD``): a batched
      fixed-point elimination over a compacted link x flow incidence
      array (CSR-style ``flat``/``indptr``), where each round masks the
      saturated links and finds each remaining flow's bottleneck with a
      single ``np.minimum.reduceat``.

    Both regimes replay the reference rounds with the same IEEE-754
    operations in the same order, so the allocations are bit-identical;
    they differ only in bookkeeping.

``bottleneck_rates``
    The cheap ablation mode: equal split on each link, no leftover
    redistribution.  Shared by every implementation.

The :class:`FlowIncidence` cache holds the per-active-set structures
(flat incidence arrays, link->flow adjacency, initial shares) keyed by
the transport's flow-set version, so back-to-back recomputations — e.g.
a barrier phase releasing shuffle flows over several event batches —
skip the rebuild.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

import numpy as np

__all__ = [
    "FlowIncidence",
    "bottleneck_rates",
    "maxmin_rates_reference",
    "maxmin_rates_vectorized",
]

#: Relative width within which links saturate together during one
#: water-filling round.  Bounds the number of rounds by the number of
#: *distinct share magnitudes* instead of distinct links, at a worst
#: case rate error of the grouping width — far below the fidelity of
#: the fluid abstraction itself.
_LEVEL_GROUPING = 0.02

#: Active-flow count at which the vectorized allocator switches from the
#: heap-driven Python rounds to the batched CSR elimination.  Below it,
#: NumPy per-call overhead dominates the tiny arrays; above it, the
#: batched path's O(remaining incidences) rounds win decisively.
_CSR_FLOW_THRESHOLD = 2048

_INF = float("inf")


# --------------------------------------------------------------- reference


def bottleneck_rates(
    paths: np.ndarray, valid: np.ndarray, capacities: np.ndarray, num_links: int
) -> np.ndarray:
    """Equal split on each link; flow rate = min share along its path."""
    flat = paths[valid]
    counts = np.bincount(flat, minlength=num_links).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.where(counts > 0, capacities / counts, np.inf)
    padded_share = np.where(paths >= 0, share[np.maximum(paths, 0)], np.inf)
    return padded_share.min(axis=1)


def maxmin_rates_reference(
    paths: np.ndarray, valid: np.ndarray, capacities: np.ndarray, num_links: int
) -> np.ndarray:
    """Progressive-filling max-min fair allocation (round-based loop).

    Links whose fair share lies within ``_LEVEL_GROUPING`` of the
    current bottleneck saturate together in one iteration.  Kept as the
    ground truth the optimised allocators are checked against.
    """
    num_flows = paths.shape[0]
    flat = paths[valid]
    counts = np.bincount(flat, minlength=num_links).astype(float)
    remaining_cap = capacities.astype(float).copy()
    rates = np.zeros(num_flows)
    unassigned = np.ones(num_flows, dtype=bool)
    num_unassigned = num_flows
    for _ in range(num_links + 1):
        if num_unassigned == 0:
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            share = remaining_cap / counts
        share[counts <= 0] = np.inf
        level = share.min()
        if not np.isfinite(level):
            break
        saturated = share <= level * (1.0 + _LEVEL_GROUPING)
        crosses = (saturated[paths] & valid).any(axis=1) & unassigned
        num_crossing = int(crosses.sum())
        if num_crossing == 0:
            break
        # Each grouped flow gets the exact share of its own tightest
        # saturated link (not the group level), so flows on slightly
        # wider links are not clipped to the narrowest one.
        padded = np.where(valid & saturated[paths], share[paths], np.inf)
        rates[crosses] = padded[crosses].min(axis=1)
        unassigned[crosses] = False
        num_unassigned -= num_crossing
        crossing_valid = valid[crosses]
        used = paths[crosses][crossing_valid]
        used_rates = np.repeat(rates[crosses], crossing_valid.sum(axis=1))
        consumed = np.bincount(used, weights=used_rates, minlength=num_links)
        np.maximum(remaining_cap - consumed, 0.0, out=remaining_cap)
        counts -= np.bincount(used, minlength=num_links)
    # Flows left unassigned cross only links that lost all contenders
    # (possible only through float jitter): give them their bottleneck
    # share directly.
    if num_unassigned > 0:
        rates[unassigned] = bottleneck_rates(
            paths[unassigned], valid[unassigned], capacities, num_links
        )
    return rates


# --------------------------------------------------------------- incidence


class FlowIncidence:
    """Per-active-set structures shared across recomputations.

    Everything here is a pure function of ``(paths, valid, capacities)``;
    the transport caches an instance keyed by its flow-set version so
    consecutive allocation passes over an unchanged active set skip the
    rebuild.  The Python adjacency lists used by the heap regime are
    built lazily — the CSR regime never pays for them.
    """

    __slots__ = (
        "paths",
        "valid",
        "num_flows",
        "lens",
        "flat",
        "counts0",
        "_cap_list",
        "_share0_list",
        "_heap0",
        "_flow_links",
        "_link_flows",
    )

    def __init__(
        self, paths: np.ndarray, valid: np.ndarray, capacities: np.ndarray,
        num_links: int,
    ) -> None:
        self.paths = paths
        self.valid = valid
        self.num_flows = paths.shape[0]
        self.lens = valid.sum(axis=1)
        self.flat = paths[valid]
        self.counts0 = np.bincount(self.flat, minlength=num_links).astype(float)
        self._cap_list: list[float] | None = None
        self._share0_list: list[float] | None = None
        self._heap0: list[tuple[float, int]] | None = None
        self._flow_links: list[list[int]] | None = None
        self._link_flows: list[list[int]] | None = None

    def heap_state(
        self, capacities: np.ndarray, num_links: int
    ) -> tuple[list, list, list, list, list, list]:
        """Fresh per-call state for the heap regime (lists are copied)."""
        if self._flow_links is None:
            share0 = np.full(num_links, _INF)
            np.divide(
                capacities, self.counts0, out=share0, where=self.counts0 > 0
            )
            share0_list = share0.tolist()
            heap0 = [(s, l) for l, s in enumerate(share0_list) if s < _INF]
            heapify(heap0)
            flow_links: list[list[int]] = []
            link_flows: list[list[int]] = [[] for _ in range(num_links)]
            rows = self.paths.tolist()
            lens = self.lens.tolist()
            for flow, row in enumerate(rows):
                links = row[: lens[flow]]
                flow_links.append(links)
                for link in links:
                    link_flows[link].append(flow)
            self._cap_list = capacities.astype(float).tolist()
            self._share0_list = share0_list
            self._heap0 = heap0
            self._flow_links = flow_links
            self._link_flows = link_flows
        return (
            self.counts0.tolist(),
            list(self._cap_list),
            list(self._share0_list),
            list(self._heap0),
            self._flow_links,
            self._link_flows,
        )


# --------------------------------------------------------------- vectorized


def maxmin_rates_vectorized(
    paths: np.ndarray,
    valid: np.ndarray,
    capacities: np.ndarray,
    num_links: int,
    incidence: FlowIncidence | None = None,
) -> np.ndarray:
    """Bit-identical fast replay of :func:`maxmin_rates_reference`.

    Dispatches between the heap regime (small active sets, Python
    rounds) and the CSR regime (large active sets, batched NumPy
    elimination) on ``_CSR_FLOW_THRESHOLD``; both produce the exact
    floats of the reference loop, so the choice never shows up in an
    event log.
    """
    if paths.shape[0] == 0:
        return np.zeros(0)
    if incidence is None:
        incidence = FlowIncidence(paths, valid, capacities, num_links)
    if incidence.num_flows >= _CSR_FLOW_THRESHOLD:
        return _maxmin_csr(paths, valid, capacities, num_links, incidence)
    return _maxmin_heap(paths, valid, capacities, num_links, incidence)


def _maxmin_heap(
    paths: np.ndarray,
    valid: np.ndarray,
    capacities: np.ndarray,
    num_links: int,
    incidence: FlowIncidence,
) -> np.ndarray:
    """Heap-driven replay of the reference rounds, all in Python.

    A lazy min-heap of ``(share, link)`` supplies each round's level and
    its saturated links *in increasing share order* — so the first
    saturated link that reaches a flow is that flow's tightest saturated
    link, and the flow's rate is read off directly.  Stale heap entries
    (links whose share has since changed) are discarded on pop by
    comparing against the live share table.  Per-link consumption is
    accumulated in increasing flow order and applied once per round,
    matching the reference's ``np.bincount`` summation order so the
    floating-point results are identical.
    """
    num_flows = paths.shape[0]
    counts, remaining, share, heap, flow_links, link_flows = (
        incidence.heap_state(capacities, num_links)
    )
    rates_out = [0.0] * num_flows
    unassigned = [True] * num_flows
    num_unassigned = num_flows
    rounds_left = num_links + 1
    pop = heappop
    push = heappush
    while rounds_left > 0 and num_unassigned > 0:
        rounds_left -= 1
        while heap:
            level, link = heap[0]
            if share[link] == level:
                break
            pop(heap)
        if not heap:
            break
        thresh = heap[0][0] * (1.0 + _LEVEL_GROUPING)
        cand: list[int] = []
        append = cand.append
        while heap:
            s, link = heap[0]
            if s > thresh:
                break
            pop(heap)
            if share[link] == s:
                for flow in link_flows[link]:
                    if unassigned[flow]:
                        unassigned[flow] = False
                        rates_out[flow] = s
                        append(flow)
        if not cand:
            break
        cand.sort()
        num_unassigned -= len(cand)
        consumed: dict[int, float] = {}
        cget = consumed.get
        for flow in cand:
            rate = rates_out[flow]
            for link in flow_links[flow]:
                counts[link] -= 1.0
                total = cget(link)
                consumed[link] = rate if total is None else total + rate
        for link, total in consumed.items():
            left = remaining[link] - total
            if left < 0.0:
                left = 0.0
            remaining[link] = left
            count = counts[link]
            if count > 0.0:
                s = left / count
                share[link] = s
                push(heap, (s, link))
            else:
                share[link] = _INF
    rates = np.array(rates_out)
    if num_unassigned > 0:
        rem = np.array(
            [f for f in range(num_flows) if unassigned[f]], dtype=np.int64
        )
        rates[rem] = bottleneck_rates(
            paths[rem], valid[rem], capacities, num_links
        )
    return rates


def _maxmin_csr(
    paths: np.ndarray,
    valid: np.ndarray,
    capacities: np.ndarray,
    num_links: int,
    incidence: FlowIncidence,
) -> np.ndarray:
    """Batched elimination over a compacted link x flow incidence array.

    Each round masks the saturated links, finds every remaining flow's
    tightest saturated link with one ``np.minimum.reduceat`` over the
    CSR-flattened incidence, then compacts assigned flows out of the
    working arrays — so round ``k`` only touches flows still unassigned
    after round ``k - 1``.  Summation orders match the reference's
    ``np.bincount`` calls (flow-major, ascending), keeping the floats
    bit-identical.
    """
    num_flows = paths.shape[0]
    lens = incidence.lens
    flat = incidence.flat
    counts = incidence.counts0.copy()
    remaining_cap = capacities.astype(float).copy()
    rates = np.zeros(num_flows)
    ids = np.arange(num_flows)
    share = np.empty(num_links)
    num_unassigned = num_flows
    indptr = np.zeros(num_flows + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    for _ in range(num_links + 1):
        if num_unassigned == 0:
            break
        share.fill(np.inf)
        np.divide(remaining_cap, counts, out=share, where=counts > 0)
        level = share.min()
        if not np.isfinite(level):
            break
        masked = np.where(share <= level * (1.0 + _LEVEL_GROUPING), share, np.inf)
        mins = np.minimum.reduceat(masked[flat], indptr[:-1])
        crossing = np.isfinite(mins)
        num_crossing = int(crossing.sum())
        if num_crossing == 0:
            break
        rates[ids[crossing]] = mins[crossing]
        num_unassigned -= num_crossing
        expanded = np.repeat(crossing, lens)
        used = flat[expanded]
        used_rates = np.repeat(mins[crossing], lens[crossing])
        consumed = np.bincount(used, weights=used_rates, minlength=num_links)
        np.maximum(remaining_cap - consumed, 0.0, out=remaining_cap)
        counts -= np.bincount(used, minlength=num_links)
        keep = ~crossing
        ids = ids[keep]
        lens = lens[keep]
        flat = flat[~expanded]
        indptr = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
    if num_unassigned > 0:
        rates[ids] = bottleneck_rates(
            paths[ids], valid[ids], capacities, num_links
        )
    return rates
