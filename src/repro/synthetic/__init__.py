"""Parametric synthetic traffic from the paper's §4.1/§4.3 models.

The paper distils its measurements into two generative observations:
traffic volumes are well described by a bimodal within-rack/out-of-rack
split over a gravity-style pair distribution (§4.1), and flow arrivals
follow stop-and-go ON/OFF processes with heavy-tailed periods (§4.3).
:class:`SyntheticTrafficModel` and :func:`gravity_synthetic_tm` generate
traffic matrices from the first; :class:`StopAndGoArrivals` generates
arrival processes from the second.

These are the models the evaluation experiments compare *against* the
simulated ground truth — e.g. whether a gravity fit can stand in for
the measured TM (Fig 12-14's tomography question).

:mod:`.empirical` adds the complementary DCT²Gen-style generator: flow
sizes drawn from measured CDF presets at a target link-load fraction,
used to drive matched workloads across the topology family.
"""

from .arrivals import StopAndGoArrivals
from .empirical import (
    MIX_PRESETS,
    EmpiricalWorkload,
    FlowSizeMix,
    GeneratedFlows,
    flow_size_mix,
)
from .model import SyntheticTrafficModel, gravity_synthetic_tm

__all__ = [
    "SyntheticTrafficModel",
    "gravity_synthetic_tm",
    "StopAndGoArrivals",
    "FlowSizeMix",
    "MIX_PRESETS",
    "flow_size_mix",
    "EmpiricalWorkload",
    "GeneratedFlows",
]
