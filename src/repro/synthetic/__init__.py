"""Parametric synthetic traffic from the paper's §4.1/§4.3 models."""

from .arrivals import StopAndGoArrivals
from .model import SyntheticTrafficModel, gravity_synthetic_tm

__all__ = ["SyntheticTrafficModel", "gravity_synthetic_tm", "StopAndGoArrivals"]
