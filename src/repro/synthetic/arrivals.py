"""Synthetic flow arrival processes (paper §4.3, Fig 11).

Generates flow arrival time series matching the paper's observed
inter-arrival structure: "pronounced periodic modes spaced apart by
roughly 15ms" from stop-and-go flow creation, plus a heavy tail out to
about 10 s.  Useful for driving schedulers or load generators without a
full workload simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StopAndGoArrivals"]


@dataclass(frozen=True)
class StopAndGoArrivals:
    """Mixture arrival process: quantised bursts plus a lognormal tail.

    With probability ``burst_weight`` the next arrival comes one-or-more
    quanta after the previous one (geometric number of quanta, small
    jitter); otherwise the gap is drawn from a heavy lognormal tail.
    """

    quantum: float = 0.015
    jitter: float = 0.001
    burst_weight: float = 0.7
    quanta_continue_prob: float = 0.4
    tail_log_mean: float = -3.0
    tail_log_sigma: float = 1.8
    max_gap: float = 10.0

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if not 0 <= self.burst_weight <= 1:
            raise ValueError("burst_weight must lie in [0, 1]")
        if not 0 <= self.quanta_continue_prob < 1:
            raise ValueError("quanta_continue_prob must lie in [0, 1)")

    def sample_gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` inter-arrival gaps."""
        if count < 0:
            raise ValueError("count must be non-negative")
        burst = rng.random(count) < self.burst_weight
        quanta = rng.geometric(1.0 - self.quanta_continue_prob, size=count)
        jitter = rng.uniform(0.0, self.jitter, size=count)
        burst_gaps = quanta * self.quantum + jitter
        tail_gaps = rng.lognormal(self.tail_log_mean, self.tail_log_sigma, size=count)
        gaps = np.where(burst, burst_gaps, tail_gaps)
        return np.minimum(gaps, self.max_gap)

    def sample_times(
        self, duration: float, rng: np.random.Generator, start: float = 0.0
    ) -> np.ndarray:
        """Arrival timestamps in ``[start, start + duration)``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        times = []
        t = start
        # Draw in batches to avoid a Python-level loop per arrival.
        while t < start + duration:
            gaps = self.sample_gaps(1024, rng)
            for gap in gaps:
                t += gap
                if t >= start + duration:
                    break
                times.append(t)
        return np.asarray(times)
