"""Empirical flow-level workload generation (DCT²Gen-style).

The paper's §4 models describe *structure* (gravity pair volumes,
stop-and-go arrivals); this module adds the complementary empirical
approach used by trace-driven generators such as DCT²Gen: draw flow
sizes from a measured CDF, pick endpoint pairs from a bimodal
intra/inter-rack split, and set the Poisson arrival rate so offered
load hits a target fraction of the fabric's edge capacity.  That last
knob is what the topology experiments need — matched load across a
tree, a fat-tree and a leaf-spine makes their goodput comparable.

All sampling is deterministic given a seed: sizes come from inverse-CDF
transforms of ``Generator`` draws, the mean flow size is a closed-form
integral of the piecewise interpolant (no Monte-Carlo), and arrival
times are cumulative exponential gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FlowSizeMix",
    "MIX_PRESETS",
    "flow_size_mix",
    "EmpiricalWorkload",
    "GeneratedFlows",
]


@dataclass(frozen=True)
class FlowSizeMix:
    """A flow-size distribution given as empirical CDF points.

    ``sizes`` are byte values (strictly increasing, first is the minimum
    flow size), ``cdf`` the cumulative probability at each (ending at
    1.0).  Between points the quantile function interpolates linearly in
    ``log(size)`` — the standard reading of measured heavy-tailed flow
    CDFs, which are plotted and tabulated on log-size axes.
    """

    name: str
    sizes: tuple[float, ...]
    cdf: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.cdf) or len(self.sizes) < 2:
            raise ValueError("sizes and cdf must be equal-length, >= 2 points")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("flow sizes must be positive")
        if any(b <= a for a, b in zip(self.sizes, self.sizes[1:])):
            raise ValueError("sizes must be strictly increasing")
        if any(b <= a for a, b in zip(self.cdf, self.cdf[1:])):
            raise ValueError("cdf must be strictly increasing")
        if not (0.0 <= self.cdf[0] and abs(self.cdf[-1] - 1.0) < 1e-12):
            raise ValueError("cdf must lie in [0, 1] and end at 1.0")

    def quantile(self, u) -> np.ndarray:
        """Inverse CDF: flow size(s) in bytes at probability ``u``."""
        u = np.asarray(u, dtype=np.float64)
        if np.any(u < 0.0) or np.any(u > 1.0):
            raise ValueError("quantile argument must lie in [0, 1]")
        log_sizes = np.log(np.asarray(self.sizes))
        # Below the first CDF point, clamp to the minimum flow size.
        cdf = np.asarray(self.cdf)
        out = np.exp(np.interp(u, cdf, log_sizes))
        return np.where(u <= cdf[0], self.sizes[0], out)

    def sample_sizes(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` flow sizes in bytes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.quantile(rng.random(count))

    def mean_size(self) -> float:
        """E[size] in bytes, exactly, from the piecewise interpolant.

        On each CDF segment the quantile is log-linear, so the segment's
        contribution to the mean has the closed form
        ``(p1-p0) * (s1-s0) / log(s1/s0)`` (the logarithmic mean of the
        endpoint sizes, weighted by the segment's probability mass).
        Deterministic — no sampling — so load targeting is reproducible.
        """
        total = self.cdf[0] * self.sizes[0]
        for (p0, p1), (s0, s1) in zip(
            zip(self.cdf, self.cdf[1:]), zip(self.sizes, self.sizes[1:])
        ):
            total += (p1 - p0) * (s1 - s0) / np.log(s1 / s0)
        return float(total)


#: Named presets.  ``websearch`` follows the DCTCP web-search measurement
#: (heavy tail: >95% of bytes in the few >1 MB flows); ``datamining``
#: the hadoop-style mix with even heavier tail mass; ``uniform`` a
#: near-flat control distribution for calibration tests.
MIX_PRESETS: dict[str, FlowSizeMix] = {
    "websearch": FlowSizeMix(
        name="websearch",
        sizes=(6e3, 10e3, 30e3, 100e3, 300e3, 1e6, 3e6, 10e6, 30e6),
        cdf=(0.15, 0.30, 0.53, 0.70, 0.80, 0.90, 0.95, 0.99, 1.0),
    ),
    "datamining": FlowSizeMix(
        name="datamining",
        sizes=(1e2, 1e3, 10e3, 100e3, 1e6, 10e6, 100e6, 1e9),
        cdf=(0.50, 0.70, 0.82, 0.90, 0.95, 0.98, 0.995, 1.0),
    ),
    "uniform": FlowSizeMix(
        name="uniform",
        sizes=(1e4, 1e5, 1e6),
        cdf=(0.34, 0.67, 1.0),
    ),
}


def flow_size_mix(name: str) -> FlowSizeMix:
    """Look up a preset by name."""
    try:
        return MIX_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MIX_PRESETS))
        raise ValueError(f"unknown flow-size mix {name!r}; choose from {known}")


@dataclass(frozen=True)
class GeneratedFlows:
    """One generated flow schedule, as parallel arrays."""

    start: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    size: np.ndarray

    def __len__(self) -> int:
        return int(self.start.size)

    @property
    def total_bytes(self) -> float:
        return float(self.size.sum())


@dataclass(frozen=True)
class EmpiricalWorkload:
    """Size-CDF-driven workload at a target edge-load fraction.

    ``target_load`` is the offered load as a fraction of the cluster's
    aggregate server NIC capacity: the Poisson arrival rate is
    ``target_load * num_servers * nic_capacity / mean_flow_size``.
    ``intra_rack_fraction`` reproduces the paper's §4.1 bimodal pair
    split — that probability mass stays inside the source's rack.
    """

    mix: FlowSizeMix
    target_load: float = 0.25
    intra_rack_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.target_load <= 1.0:
            raise ValueError("target_load must lie in (0, 1]")
        if not 0.0 <= self.intra_rack_fraction <= 1.0:
            raise ValueError("intra_rack_fraction must lie in [0, 1]")

    def arrival_rate(self, topology) -> float:
        """Poisson flow arrivals per second hitting ``target_load``."""
        capacity = topology.num_servers * topology.spec.server_nic_capacity
        return self.target_load * capacity / self.mix.mean_size()

    def generate(self, topology, duration: float, seed: int = 0) -> GeneratedFlows:
        """Generate the flow schedule for ``duration`` seconds.

        Deterministic in ``(topology spec, duration, seed)``.  Requires
        at least two racks (inter-rack pairs must exist) and at least
        two servers per rack when ``intra_rack_fraction > 0``.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if topology.num_racks < 2:
            raise ValueError("empirical workload needs at least two racks")
        per_rack = topology.spec.servers_per_rack
        if self.intra_rack_fraction > 0 and per_rack < 2:
            raise ValueError("intra-rack flows need >= 2 servers per rack")
        rng = np.random.default_rng(seed)
        rate = self.arrival_rate(topology)
        # Over-draw gaps, then trim to the horizon: one vectorised pass.
        expected = max(16, int(rate * duration * 1.25) + 8)
        start = np.cumsum(rng.exponential(1.0 / rate, size=expected))
        while start.size and start[-1] < duration:
            more = np.cumsum(rng.exponential(1.0 / rate, size=expected))
            start = np.concatenate([start, start[-1] + more])
        start = start[start < duration]
        count = start.size

        src = rng.integers(0, topology.num_servers, size=count)
        src_rack = src // per_rack
        intra = rng.random(count) < self.intra_rack_fraction
        # Intra-rack: a uniform *other* server in the same rack.
        offset = rng.integers(1, per_rack, size=count) if per_rack > 1 else (
            np.zeros(count, dtype=np.int64)
        )
        intra_dst = src_rack * per_rack + (src % per_rack + offset) % per_rack
        # Inter-rack: a uniform server in a uniform *other* rack.
        rack_offset = rng.integers(1, topology.num_racks, size=count)
        other_rack = (src_rack + rack_offset) % topology.num_racks
        inter_dst = other_rack * per_rack + rng.integers(0, per_rack, size=count)
        dst = np.where(intra, intra_dst, inter_dst)

        size = np.ceil(self.mix.sample_sizes(count, rng)).astype(np.float64)
        return GeneratedFlows(start=start, src=src, dst=dst, size=size)
