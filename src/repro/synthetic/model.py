"""Parametric synthetic TM generators from the paper's characterisation.

"We believe that figs. 2 to 4 together form the first characterization of
datacenter traffic at a macroscopic level and comprise a model that can
be used in simulating such traffic" (§4.1).  This module is that model as
a standalone generator — no workload simulation required — plus the
ISP-style gravity generator used as a contrast (ablation A3).

The datacenter model's parameters default to the paper's reported
statistics:

* a server pair in the same rack exchanges traffic with probability 11%
  (P(zero) = 89%); a cross-rack pair with probability 0.5% (P(zero) =
  99.5%);
* non-zero pair volumes are heavy-tailed over roughly ``[e^4, e^20]``
  bytes, with in-rack pairs skewed larger;
* optional scatter-gather overlays add the fan-in/fan-out rows and
  columns of Fig 2;
* optional job clustering concentrates cross-rack traffic among rack
  groups that "share jobs" — the structure that defeats the gravity
  prior (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterTopology

__all__ = ["SyntheticTrafficModel", "gravity_synthetic_tm"]


@dataclass(frozen=True)
class SyntheticTrafficModel:
    """The §4.1 macroscopic traffic model.

    Log-volume parameters are for the natural log of bytes: draws are
    normal in log space, truncated to ``[log_min, log_max]``.
    """

    prob_talk_in_rack: float = 0.11
    prob_talk_cross_rack: float = 0.005
    log_mean_in_rack: float = 13.0
    log_mean_cross_rack: float = 11.5
    log_sigma: float = 3.0
    log_min: float = 4.0
    log_max: float = 20.0
    #: Expected number of scatter-gather servers per generated TM window.
    scatter_gather_rate: float = 2.0
    #: Fraction of the cluster a scatter/gather server spans.
    scatter_fanout: float = 0.5
    #: Number of rack "job clusters" for cross-rack concentration;
    #: 0 disables clustering (cross-rack traffic falls uniformly).
    job_clusters: int = 4
    #: How much more likely cross-rack traffic is within a job cluster.
    cluster_concentration: float = 8.0

    def __post_init__(self) -> None:
        for name in ("prob_talk_in_rack", "prob_talk_cross_rack"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.log_min >= self.log_max:
            raise ValueError("log_min must be below log_max")
        if self.job_clusters < 0:
            raise ValueError("job_clusters must be non-negative")

    # ------------------------------------------------------------- sampling

    def _draw_volumes(
        self, rng: np.random.Generator, count: int, log_mean: float
    ) -> np.ndarray:
        logs = rng.normal(log_mean, self.log_sigma, size=count)
        logs = np.clip(logs, self.log_min, self.log_max)
        return np.exp(logs)

    def sample_server_tm(
        self, topology: ClusterTopology, rng: np.random.Generator
    ) -> np.ndarray:
        """One server-to-server TM window drawn from the model.

        Returns an ``(n, n)`` byte matrix over in-cluster servers (no
        external hosts; add those separately if needed).
        """
        n = topology.num_servers
        racks = np.array([topology.rack_of(s) for s in range(n)])
        same_rack = racks[:, None] == racks[None, :]
        np.fill_diagonal(same_rack, False)
        cross_rack = ~same_rack
        np.fill_diagonal(cross_rack, False)

        tm = np.zeros((n, n))

        # In-rack pairs: i.i.d. Bernoulli at the paper's talk probability.
        in_pairs = np.argwhere(same_rack)
        talk = rng.random(in_pairs.shape[0]) < self.prob_talk_in_rack
        chosen = in_pairs[talk]
        tm[chosen[:, 0], chosen[:, 1]] = self._draw_volumes(
            rng, chosen.shape[0], self.log_mean_in_rack
        )

        # Cross-rack pairs: optionally concentrated inside job clusters.
        cross_pairs = np.argwhere(cross_rack)
        if self.job_clusters > 0 and topology.num_racks >= self.job_clusters:
            cluster_of_rack = rng.integers(self.job_clusters, size=topology.num_racks)
            same_cluster = (
                cluster_of_rack[racks[cross_pairs[:, 0]]]
                == cluster_of_rack[racks[cross_pairs[:, 1]]]
            )
            base = self.prob_talk_cross_rack
            # Solve for in/out-of-cluster probabilities preserving the mean.
            frac_same = same_cluster.mean() if same_cluster.size else 0.0
            boost = self.cluster_concentration
            p_out = base / (1.0 + (boost - 1.0) * frac_same)
            p_in = min(boost * p_out, 1.0)
            probs = np.where(same_cluster, p_in, p_out)
        else:
            probs = np.full(cross_pairs.shape[0], self.prob_talk_cross_rack)
        talk = rng.random(cross_pairs.shape[0]) < probs
        chosen = cross_pairs[talk]
        tm[chosen[:, 0], chosen[:, 1]] = self._draw_volumes(
            rng, chosen.shape[0], self.log_mean_cross_rack
        )

        # Scatter-gather overlays: a few servers push to / pull from a
        # large slice of the cluster (Fig 2's lines).
        num_sg = rng.poisson(self.scatter_gather_rate)
        for _ in range(num_sg):
            hub = int(rng.integers(n))
            fanout = max(1, int(self.scatter_fanout * n))
            peers = rng.choice([s for s in range(n) if s != hub],
                               size=min(fanout, n - 1), replace=False)
            volumes = self._draw_volumes(rng, peers.size, self.log_mean_cross_rack)
            if rng.random() < 0.5:
                tm[hub, peers] = np.maximum(tm[hub, peers], volumes)  # scatter
            else:
                tm[peers, hub] = np.maximum(tm[peers, hub], volumes)  # gather
        return tm

    def sample_tor_tm(
        self, topology: ClusterTopology, rng: np.random.Generator
    ) -> np.ndarray:
        """One ToR-to-ToR TM window (zero diagonal) drawn from the model."""
        server_tm = self.sample_server_tm(topology, rng)
        racks = np.array([topology.rack_of(s) for s in range(topology.num_servers)])
        tor_tm = np.zeros((topology.num_racks, topology.num_racks))
        np.add.at(tor_tm, (racks[:, None], racks[None, :]), server_tm)
        np.fill_diagonal(tor_tm, 0.0)
        return tor_tm


def gravity_synthetic_tm(
    num_nodes: int,
    rng: np.random.Generator,
    total_volume: float = 1e12,
    spread_sigma: float = 0.5,
    noise_sigma: float = 0.1,
) -> np.ndarray:
    """A dense, gravity-structured TM (the ISP regime of ablation A3).

    Node masses are lognormal; the TM is the gravity outer product with
    mild multiplicative noise — the setting where the gravity prior is a
    nearly perfect predictor, as the literature the paper cites found.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    masses_out = rng.lognormal(0.0, spread_sigma, size=num_nodes)
    masses_in = rng.lognormal(0.0, spread_sigma, size=num_nodes)
    tm = np.outer(masses_out, masses_in)
    tm *= rng.lognormal(0.0, noise_sigma, size=tm.shape)
    np.fill_diagonal(tm, 0.0)
    tm *= total_volume / tm.sum()
    return tm
