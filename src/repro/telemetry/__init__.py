"""repro.telemetry — observability for the simulator itself.

The paper instruments a production cluster (ETW socket events, app logs,
SNMP counters); this package instruments the *reproduction* with the
same philosophy: cheap always-on counters, structured traces, and a
provenance manifest per campaign.

Six pieces:

* :mod:`~repro.telemetry.metrics` — a zero-dependency registry of
  counters, gauges and histograms (reservoir quantiles) with
  serialisable, mergeable state;
* :mod:`~repro.telemetry.tracing` — nested wall-clock spans with JSONL
  export;
* :mod:`~repro.telemetry.manifest` — :class:`RunManifest`, pinning
  config, seed, git version, timings and headline metrics for a run;
* :mod:`~repro.telemetry.resources` — :class:`ResourceProfiler`,
  sampling RSS/CPU, timing GC pauses and naming wall-clock phases
  (spawn / import / dataset-load / compute / merge);
* :mod:`~repro.telemetry.merge` — cross-process fan-in: worker reports
  merge into one campaign timeline with per-worker span lanes;
* :mod:`~repro.telemetry.export` — ASCII Gantt rendering, Prometheus
  text and Chrome ``trace_event`` export, and tolerance-based diffing
  of two runs' telemetry (``repro telemetry timeline`` / ``diff``).

:class:`Telemetry` bundles a registry and a tracer behind one handle.
Components take an optional ``telemetry`` argument and default to
:data:`NULL_TELEMETRY`, whose instruments are shared no-ops — call sites
stay branch-free and a non-instrumented run pays only a no-op method
call on already-resolved objects.

Usage::

    from repro.telemetry import Telemetry

    tele = Telemetry()
    with tele.span("simulate.campaign", seed=42):
        result = simulate(config, telemetry=tele)
    tele.tracer.write_jsonl("trace.jsonl")
    print(tele.metrics.snapshot())
"""

from __future__ import annotations

from .manifest import RunManifest, git_describe
from .merge import (
    interleave_spans,
    load_spans,
    load_timeline,
    merge_worker_reports,
    phase_totals,
    worker_report,
    write_timeline,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .resources import ResourceProfiler
from .tracing import Span, Tracer, aggregate_spans, read_jsonl

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "read_jsonl",
    "aggregate_spans",
    "RunManifest",
    "git_describe",
    "ResourceProfiler",
    "worker_report",
    "merge_worker_reports",
    "interleave_spans",
    "load_spans",
    "phase_totals",
    "write_timeline",
    "load_timeline",
]


class _NullSpan:
    """Inert span: context manager + attribute sink."""

    __slots__ = ()
    span_id = -1
    parent_id = None
    name = "<null>"
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Discard attributes."""


class _NullCounter:
    """Inert counter."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""


class _NullGauge:
    """Inert gauge."""

    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""

    def max(self, value: float) -> None:
        """Discard the value."""


class _NullHistogram:
    """Inert histogram."""

    __slots__ = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        """Discard the sample."""

    def quantile(self, q: float) -> float:
        """Always zero."""
        return 0.0


class _NullProfiler:
    """Inert resource profiler: no thread, no GC hook, empty profile."""

    __slots__ = ()
    pid = -1
    interval = 0.0

    def start(self) -> "_NullProfiler":
        return self

    def stop(self) -> "_NullProfiler":
        return self

    def __enter__(self) -> "_NullProfiler":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def phase(self, name: str) -> "_NullSpan":
        return _NULL_SPAN

    def add_phase(self, name: str, start: float, duration: float, **extra) -> dict:
        return {}

    def add_startup_phases(self, submitted_at) -> None:
        """Discard the timestamps."""

    def profile(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_PROFILER = _NullProfiler()


class Telemetry:
    """One run's metrics registry + tracer behind a single handle."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()

    def span(self, name: str, **attrs):
        """Context manager tracing the body (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **attrs)

    def counter(self, name: str, **labels):
        """Resolve a counter (shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_COUNTER
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels):
        """Resolve a gauge (shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_GAUGE
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels):
        """Resolve a histogram (shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self.metrics.histogram(name, **labels)

    def resource_profiler(self, interval: float | None = None):
        """A :class:`ResourceProfiler` (shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_PROFILER
        if interval is None:
            return ResourceProfiler()
        return ResourceProfiler(interval=interval)


#: Shared disabled session: every instrument is an inert singleton.
NULL_TELEMETRY = Telemetry(enabled=False)
