"""Export and comparison surfaces for merged campaign telemetry.

Three consumers of a campaign timeline (:mod:`repro.telemetry.merge`):

* a human at a terminal — :func:`render_timeline` draws the per-worker
  lanes as an ASCII Gantt (same no-plotting-stack philosophy as
  :mod:`repro.util.ascii`), with phase totals so the 0.84x parallel
  pathology reads directly off the chart;
* external tooling — :func:`to_prometheus` emits the merged metrics in
  Prometheus text exposition format, :func:`to_chrome_trace` emits
  Chrome ``trace_event`` JSON loadable in ``about:tracing`` / Perfetto;
* CI — :func:`diff_observables` compares two manifests or timelines
  metric-by-metric under a relative tolerance, the same contract as
  ``repro bench compare`` (statuses ``ok`` / ``regression`` /
  ``improved`` / ``new`` / ``missing``), so observability regressions
  show up as a delta table.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

from .merge import TIMELINE_KIND

__all__ = [
    "render_timeline",
    "to_prometheus",
    "to_chrome_trace",
    "DiffRow",
    "load_observable",
    "diff_observables",
    "format_diff_table",
    "DEFAULT_DIFF_TOLERANCE",
]

#: Default relative tolerance for ``repro telemetry diff`` — matches the
#: bench-compare default: wide enough for host noise, tight enough to
#: catch real drift.
DEFAULT_DIFF_TOLERANCE = 0.25

_STATUS_ORDER = {"regression": 0, "improved": 1, "ok": 2, "new": 3, "missing": 4}

#: One Gantt character per phase; idle time renders as ``.``.
_PHASE_CHARS = {
    "spawn": "s",
    "import": "i",
    "wait": "w",
    "claim": "a",
    "lease-wait": "W",
    "shm-attach": "h",
    "dataset-load": "d",
    "compute": "c",
    "merge": "m",
}


# --------------------------------------------------------------- ASCII Gantt


def render_timeline(timeline: dict, width: int = 64) -> str:
    """Render a merged campaign timeline as an ASCII Gantt chart."""
    if width < 8:
        raise ValueError("width must be at least 8")
    window = timeline.get("window", {})
    start = float(window.get("start", 0.0))
    wall = max(float(window.get("wall_seconds", 0.0)), 1e-9)

    def col(t: float) -> int:
        return max(0, min(width - 1, int((t - start) / wall * width)))

    lanes = timeline.get("lanes", [])
    label_width = max([len(lane.get("label", "?")) for lane in lanes] + [4])
    lines = [
        f"campaign timeline — {timeline.get('campaign_id', '?')}",
        (
            f"seeds={timeline.get('seeds')} jobs={timeline.get('jobs')} "
            f"wall={wall:.2f}s coverage={timeline.get('coverage', 0.0):.1%}"
        ),
        "",
    ]
    for lane in lanes:
        row = ["."] * width
        phases = [
            phase
            for segment in lane.get("segments", [])
            for phase in segment.get("phases", [])
        ]
        # Wait-like phases paint first so overlapping segments (one
        # worker, many seeds) never hide the active phase under a wait.
        phases.sort(key=lambda p: (
            p.get("name") not in ("wait", "lease-wait"),
            p.get("start", 0.0),
        ))
        for phase in phases:
            mark = _PHASE_CHARS.get(phase.get("name", ""), "#")
            lo = col(float(phase.get("start", start)))
            hi = col(
                float(phase.get("start", start))
                + float(phase.get("duration", 0.0))
            )
            for index in range(lo, max(hi, lo + 1)):
                row[index] = mark
        seeds = ",".join(str(s) for s in lane.get("seeds", []))
        label = f"{lane.get('label', '?'):<{label_width}}"
        lines.append(f"{label} |{''.join(row)}| {seeds}")
    lines.append(
        " " * label_width
        + " +"
        + "-" * width
        + f"+ 0 .. {wall:.2f}s"
    )
    key = " ".join(f"{char}={name}" for name, char in _PHASE_CHARS.items())
    lines.append(f"phase key: {key} (.=idle)")
    totals = timeline.get("phase_totals", {})
    if totals:
        lines.append("")
        lines.append("phase totals (summed across lanes):")
        biggest = max(len(name) for name in totals)
        budget = sum(totals.values()) or 1.0
        for name, seconds in totals.items():
            lines.append(
                f"  {name:<{biggest}}  {seconds:8.2f}s  {seconds / budget:6.1%}"
            )
    return "\n".join(lines)


# ------------------------------------------------------------- Prometheus


def _split_flat_key(flat: str) -> tuple[str, list[tuple[str, str]]]:
    if "{" not in flat:
        return flat, []
    name, rest = flat.split("{", 1)
    pairs = [
        tuple(part.split("=", 1))
        for part in rest.rstrip("}").split(",")
        if "=" in part
    ]
    return name, pairs  # type: ignore[return-value]


def _prom_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{_prom_name(key)}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def to_prometheus(metrics: dict) -> str:
    """Metrics snapshot → Prometheus text exposition format.

    Counters and gauges map directly; histograms become summaries
    (``_count`` / ``_sum`` plus ``quantile``-labelled samples from the
    reservoir estimates).
    """
    lines: list[str] = []
    typed: set[str] = set()
    for flat, state in metrics.items():
        name, pairs = _split_flat_key(flat)
        prom = _prom_name(name)
        kind = state.get("type", "gauge")
        if kind == "histogram":
            if prom not in typed:
                lines.append(f"# TYPE {prom} summary")
                typed.add(prom)
            labels = _prom_labels(pairs)
            lines.append(f"{prom}_count{labels} {state.get('count', 0)}")
            lines.append(f"{prom}_sum{labels} {state.get('sum', 0.0):.10g}")
            for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
                qpairs = pairs + [("quantile", quantile)]
                lines.append(
                    f"{prom}{_prom_labels(qpairs)} {state.get(key, 0.0):.10g}"
                )
        else:
            if prom not in typed:
                lines.append(f"# TYPE {prom} {kind}")
                typed.add(prom)
            lines.append(
                f"{prom}{_prom_labels(pairs)} {state.get('value', 0.0):.10g}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------ Chrome trace


def to_chrome_trace(timeline: dict) -> dict:
    """Timeline → Chrome ``trace_event`` JSON (``about:tracing`` format).

    Lanes become threads; resource phases and worker spans become
    complete (``"ph": "X"``) events with microsecond timestamps relative
    to the campaign window start.
    """
    base = float(timeline.get("window", {}).get("start", 0.0))
    events: list[dict] = []
    for tid, lane in enumerate(timeline.get("lanes", [])):
        events.append({
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": f"{lane.get('label')} (pid {lane.get('pid')})"},
        })
        for segment in lane.get("segments", []):
            seed = segment.get("seed")
            for phase in segment.get("phases", []):
                events.append({
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "cat": "phase",
                    "name": phase.get("name", "?"),
                    "ts": (float(phase.get("start", base)) - base) * 1e6,
                    "dur": float(phase.get("duration", 0.0)) * 1e6,
                    "args": {"seed": seed},
                })
            for span in segment.get("spans", []):
                events.append({
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "cat": "span",
                    "name": span.get("name", "?"),
                    "ts": (float(span.get("start", base)) - base) * 1e6,
                    "dur": float(span.get("duration", 0.0)) * 1e6,
                    "args": dict(span.get("attrs", {}), seed=seed),
                })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "campaign_id": timeline.get("campaign_id"),
            "jobs": timeline.get("jobs"),
            "coverage": timeline.get("coverage"),
        },
    }


# -------------------------------------------------------------------- diff


@dataclass(frozen=True)
class DiffRow:
    """One metric's baseline-vs-current verdict."""

    name: str
    baseline: float | None
    current: float | None
    #: current / baseline (None when either side is absent).
    ratio: float | None
    #: "ok" | "regression" | "improved" | "new" | "missing"
    status: str


def _scalar_rows(metrics: dict) -> dict[str, float]:
    """Flatten a metrics snapshot into comparable named scalars.

    Counters and gauges contribute their value; histograms contribute
    their count and mean (the shape facets that should be stable across
    equivalent runs).
    """
    rows: dict[str, float] = {}
    for flat, state in metrics.items():
        if state.get("type") == "histogram":
            rows[f"{flat}[count]"] = float(state.get("count", 0))
            rows[f"{flat}[mean]"] = float(state.get("mean", 0.0))
        else:
            rows[flat] = float(state.get("value", 0.0))
    return rows


def load_observable(path) -> dict:
    """Load a manifest or timeline into a comparable ``{name: value}``.

    Accepts a campaign timeline (``repro campaign run`` writes one next
    to the manifest) or any :class:`~repro.telemetry.RunManifest` JSON.
    Timeline phase totals join the comparison as ``phase.<name>_seconds``
    pseudo-metrics so a spawn-time regression is flagged like any other.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("kind") == TIMELINE_KIND:
        rows = _scalar_rows(data.get("metrics", {}))
        for name, seconds in data.get("phase_totals", {}).items():
            rows[f"phase.{name}_seconds"] = float(seconds)
        rows["timeline.coverage"] = float(data.get("coverage", 0.0))
        return rows
    if "metrics" in data:
        rows = _scalar_rows(data.get("metrics", {}))
        observability = data.get("extra", {}).get("observability", {})
        for name, seconds in observability.get("phase_totals", {}).items():
            rows[f"phase.{name}_seconds"] = float(seconds)
        return rows
    raise ValueError(f"{path} is neither a campaign timeline nor a run manifest")


def diff_observables(
    baseline: dict[str, float] | str,
    current: dict[str, float] | str,
    tolerance: float = DEFAULT_DIFF_TOLERANCE,
) -> list[DiffRow]:
    """Compare two observable payloads metric-by-metric.

    Same contract as :func:`repro.bench.compare.compare_results`: a
    metric regresses when ``current / baseline`` exceeds ``1 +
    tolerance``, improves below ``1 - tolerance``; one-sided metrics are
    ``new`` / ``missing`` and never count as regressions.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if not isinstance(baseline, dict):
        baseline = load_observable(baseline)
    if not isinstance(current, dict):
        current = load_observable(current)
    rows: list[DiffRow] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            rows.append(DiffRow(name, None, cur, None, "new"))
            continue
        if cur is None:
            rows.append(DiffRow(name, base, None, None, "missing"))
            continue
        if base == cur:
            ratio = 1.0
        elif base == 0.0:
            ratio = float("inf")
        else:
            ratio = cur / base
        if ratio > 1.0 + tolerance:
            status = "regression"
        elif ratio < 1.0 - tolerance:
            status = "improved"
        else:
            status = "ok"
        rows.append(DiffRow(name, base, cur, ratio, status))
    rows.sort(key=lambda row: (_STATUS_ORDER[row.status], row.name))
    return rows


def _fmt_value(value: float | None) -> str:
    return "-" if value is None else f"{value:.6g}"


def format_diff_table(
    rows: list[DiffRow],
    tolerance: float = DEFAULT_DIFF_TOLERANCE,
    only_changed: bool = False,
) -> str:
    """Render diff rows as the aligned delta table CI prints."""
    shown = [
        row for row in rows
        if not only_changed or row.status != "ok"
    ]
    header = ("metric", "baseline", "current", "delta", "status")
    body = []
    for row in shown:
        if row.ratio is None or row.ratio != row.ratio or row.ratio == float("inf"):
            delta = "-" if row.ratio is None else "+inf"
        else:
            delta = f"{(row.ratio - 1.0) * 100:+.1f}%"
        body.append(
            (row.name, _fmt_value(row.baseline), _fmt_value(row.current),
             delta, row.status)
        )
    widths = [
        max(len(header[col]), *(len(line[col]) for line in body))
        if body else len(header[col])
        for col in range(5)
    ]
    lines = [
        "  ".join(header[col].ljust(widths[col]) for col in range(5)),
        "  ".join("-" * widths[col] for col in range(5)),
    ]
    for line in body:
        lines.append("  ".join(line[col].ljust(widths[col]) for col in range(5)))
    regressions = sum(1 for row in rows if row.status == "regression")
    hidden = len(rows) - len(shown)
    lines.append("")
    summary = (
        f"{len(rows)} metric(s), {regressions} regression(s) "
        f"at ±{tolerance * 100:.0f}% tolerance"
    )
    if hidden:
        summary += f" ({hidden} unchanged row(s) hidden)"
    lines.append(summary)
    return "\n".join(lines)
