"""Run manifests: the provenance record of one measurement campaign.

The paper's analyses are only auditable because every figure can be
traced back to *which* cluster, *which* weeks of logs and *which*
pipeline produced it (§2).  A :class:`RunManifest` plays that role for
the reproduction: it pins the full configuration, the seed, the code
version (``git describe``), per-stage timings from the tracer and the
final metrics snapshot, so any artefact — a figure, a table, a trace —
can be regenerated from its manifest alone.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone

from .tracing import aggregate_spans

__all__ = ["RunManifest", "git_describe"]

_SCHEMA_VERSION = 1

#: Environment override for :func:`git_describe` — hermetic builds and
#: spawned campaign workers can pin the version string without paying a
#: ``git`` subprocess per manifest.
_GIT_DESCRIBE_ENV = "REPRO_GIT_DESCRIBE"

#: Per-process memo: the source tree cannot change mid-process in any
#: way a running campaign should react to, and an N-seed campaign would
#: otherwise spawn N ``git`` subprocesses.
_GIT_DESCRIBE_CACHE: str | None = None


def _git_describe_uncached() -> str:
    repo_dir = pathlib.Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def git_describe() -> str:
    """``git describe --always --dirty``, memoized per process.

    The ``REPRO_GIT_DESCRIBE`` environment variable short-circuits the
    subprocess entirely (read on every call, never cached, so tests and
    build systems can flip it at will).
    """
    override = os.environ.get(_GIT_DESCRIBE_ENV)
    if override:
        return override
    global _GIT_DESCRIBE_CACHE
    if _GIT_DESCRIBE_CACHE is None:
        _GIT_DESCRIBE_CACHE = _git_describe_uncached()
    return _GIT_DESCRIBE_CACHE


def _jsonable_config(config) -> dict:
    """A config dataclass as plain JSON-friendly data."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        raw = dataclasses.asdict(config)
    elif isinstance(config, dict):
        raw = config
    else:
        raw = {"repr": repr(config)}
    # Round-trip through json to normalise tuples and reject surprises
    # early (a manifest that cannot serialise is useless).
    return json.loads(json.dumps(raw, default=str))


@dataclass
class RunManifest:
    """Everything needed to say what produced a campaign's artefacts."""

    command: str
    config: dict
    seed: int | None
    created_at: str
    git_version: str
    wall_seconds: float = 0.0
    timings: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    schema_version: int = _SCHEMA_VERSION

    @classmethod
    def capture(cls, command: str, config, telemetry, extra: dict | None = None
                ) -> "RunManifest":
        """Snapshot a finished run from its config and telemetry session.

        ``config`` is typically a :class:`repro.config.SimulationConfig`;
        any dataclass (or plain dict) works.  ``telemetry`` is a
        :class:`repro.telemetry.Telemetry`; its tracer supplies the
        per-stage timings and its registry the metrics snapshot.
        """
        spans = telemetry.tracer.spans
        roots = [span for span in spans if span.parent_id is None]
        return cls(
            command=command,
            config=_jsonable_config(config),
            seed=getattr(config, "seed", None),
            created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            git_version=git_describe(),
            wall_seconds=sum(span.duration for span in roots),
            timings=aggregate_spans(spans),
            metrics=telemetry.metrics.snapshot(),
            extra=dict(extra or {}),
        )

    def to_dict(self) -> dict:
        """JSON-friendly record."""
        return dataclasses.asdict(self)

    def write(self, path) -> None:
        """Write the manifest as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "RunManifest":
        """Read a manifest previously written with :meth:`write`."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
