"""Cross-process telemetry fan-in: worker reports → one campaign timeline.

The paper's pipeline is per-machine capture plus central fusion (§2):
every server logs locally, a collector joins the streams into one
cluster-wide dataset.  This module is the reproduction's collector for
its *own* instrumentation.  Each campaign worker runs under a private
:class:`~repro.telemetry.Telemetry` handle plus a
:class:`~repro.telemetry.resources.ResourceProfiler`, serialises both
into a **worker report** (:func:`worker_report`), and ships it back
with the seed result.  The parent folds the reports
(:func:`merge_worker_reports`) into a **campaign timeline**:

* metrics merge by kind — counters sum, gauges last-writer-wins on
  their timestamps, histograms merge reservoirs — into one registry
  snapshot;
* spans interleave on wall-clock start into per-worker lanes, one lane
  per worker process, deterministically ordered no matter what order
  the reports arrived in;
* resource phases (spawn / import / dataset-load / compute, plus the
  parent-side merge) become the timeline's Gantt segments, so the
  artifact shows *where* a campaign's wall-clock went.

The timeline is plain JSON written next to the campaign's
:class:`~repro.telemetry.RunManifest`; :mod:`repro.telemetry.export`
renders and diffs it.
"""

from __future__ import annotations

import json
import time

from .metrics import MetricsRegistry
from .resources import PHASE_MERGE, ResourceProfiler

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "worker_report",
    "merge_worker_reports",
    "interleave_spans",
    "load_spans",
    "phase_totals",
    "write_timeline",
    "load_timeline",
]

TIMELINE_SCHEMA_VERSION = 1

#: ``kind`` marker distinguishing timelines from run manifests on disk.
TIMELINE_KIND = "campaign-timeline"


def worker_report(
    telemetry,
    profiler: ResourceProfiler | None = None,
    *,
    campaign_id: str,
    seed: int,
    submitted_at: float | None = None,
    started_at: float | None = None,
    finished_at: float | None = None,
) -> dict:
    """Serialise one worker's telemetry into a JSON/pickle-safe report.

    The report carries the propagated trace context (campaign id, seed,
    worker pid), the full metrics state, every completed span, and the
    resource profile.  It is what crosses the process boundary — the
    parent never sees live instrument objects.
    """
    profile = profiler.profile() if profiler is not None else {}
    return {
        "campaign_id": campaign_id,
        "seed": seed,
        "pid": profile.get("pid", ResourceProfiler().pid),
        "submitted_at": submitted_at,
        "started_at": started_at,
        "finished_at": finished_at if finished_at is not None else time.time(),
        "metrics": telemetry.metrics.export_state(),
        "spans": [span.to_dict() for span in telemetry.tracer.spans],
        "resources": profile,
    }


def interleave_spans(spans: list[dict]) -> list[dict]:
    """Order spans for a merged view: wall-clock start, then identity.

    The tiebreak on ``(seed, span_id)`` makes the interleave a pure
    function of the span *set* — shuffling report arrival order cannot
    change the merged timeline.
    """
    return sorted(
        spans,
        key=lambda s: (s.get("start", 0.0), s.get("seed", -1), s.get("span_id", -1)),
    )


def load_spans(paths) -> list[dict]:
    """Read and interleave spans from one or more JSONL trace files."""
    from .tracing import read_jsonl

    spans: list[dict] = []
    for path in paths:
        for span in read_jsonl(path):
            span.setdefault("source", str(path))
            spans.append(span)
    return interleave_spans(spans)


def phase_totals(timeline: dict) -> dict[str, float]:
    """Total seconds per named phase across every lane of a timeline."""
    totals: dict[str, float] = {}
    for lane in timeline.get("lanes", []):
        for segment in lane.get("segments", []):
            for phase in segment.get("phases", []):
                name = phase.get("name", "?")
                totals[name] = totals.get(name, 0.0) + float(
                    phase.get("duration", 0.0)
                )
    return dict(sorted(totals.items()))


def _union_seconds(intervals: list[tuple[float, float]], lo: float, hi: float) -> float:
    """Length of the union of intervals clipped to ``[lo, hi]``."""
    clipped = sorted(
        (max(start, lo), min(end, hi))
        for start, end in intervals
        if min(end, hi) > max(start, lo)
    )
    covered = 0.0
    cursor = lo
    for start, end in clipped:
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = max(cursor, end)
    return covered


def merge_worker_reports(
    reports: list[dict],
    *,
    campaign_id: str,
    window_start: float,
    jobs: int = 1,
    telemetry=None,
) -> dict:
    """Fuse worker reports into one campaign-wide timeline.

    The merge itself is measured: it appears as the parent lane's
    ``merge`` phase, and the timeline window closes when merging does,
    so the per-worker lanes plus the merge phase account for the whole
    campaign wall-clock.  When a live parent ``telemetry`` session is
    given, the merged metrics are also folded into it (that is how the
    campaign manifest ends up with cluster-wide counters).
    """
    merge_started = time.time()
    ordered = sorted(reports, key=lambda r: (r.get("seed", -1)))

    registry = MetricsRegistry()
    for report in ordered:
        registry.merge_state(report.get("metrics", []))
    if telemetry is not None and getattr(telemetry, "enabled", False):
        telemetry.metrics.merge_state(registry.export_state())

    by_pid: dict[int, list[dict]] = {}
    for report in ordered:
        by_pid.setdefault(int(report.get("pid", -1)), []).append(report)
    lane_order = sorted(
        by_pid.items(),
        key=lambda item: min(r.get("seed", -1) for r in item[1]),
    )

    lanes: list[dict] = []
    intervals: list[tuple[float, float]] = []
    for index, (pid, lane_reports) in enumerate(lane_order):
        segments = []
        for report in lane_reports:
            seed = report.get("seed")
            start = report.get("submitted_at") or report.get("started_at") or 0.0
            end = report.get("finished_at") or start
            intervals.append((start, end))
            spans = [
                dict(span, seed=seed)
                for span in report.get("spans", [])
            ]
            resources = dict(report.get("resources", {}))
            phases = resources.pop("phases", [])
            segments.append({
                "seed": seed,
                "start": start,
                "end": end,
                "phases": sorted(phases, key=lambda p: p.get("start", 0.0)),
                "spans": interleave_spans(spans),
                "resources": resources,
            })
        lanes.append({
            "label": f"worker-{index}",
            "pid": pid,
            "seeds": [segment["seed"] for segment in segments],
            "segments": segments,
        })

    merge_finished = time.time()
    lanes.append({
        "label": "parent",
        "pid": ResourceProfiler().pid,
        "seeds": [],
        "segments": [{
            "seed": None,
            "start": merge_started,
            "end": merge_finished,
            "phases": [{
                "name": PHASE_MERGE,
                "start": merge_started,
                "duration": merge_finished - merge_started,
            }],
            "spans": [],
            "resources": {},
        }],
    })
    intervals.append((merge_started, merge_finished))

    window_end = max(
        [merge_finished] + [end for _, end in intervals]
    )
    wall = max(window_end - window_start, 1e-9)
    coverage = _union_seconds(intervals, window_start, window_end) / wall

    timeline = {
        "schema_version": TIMELINE_SCHEMA_VERSION,
        "kind": TIMELINE_KIND,
        "campaign_id": campaign_id,
        "jobs": jobs,
        "seeds": [report.get("seed") for report in ordered],
        "window": {
            "start": window_start,
            "end": window_end,
            "wall_seconds": window_end - window_start,
        },
        "coverage": coverage,
        "lanes": lanes,
        "metrics": registry.snapshot(),
    }
    timeline["phase_totals"] = phase_totals(timeline)
    return timeline


def write_timeline(path, timeline: dict) -> None:
    """Write a timeline as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(timeline, handle, indent=2)
        handle.write("\n")


def load_timeline(path) -> dict:
    """Read a timeline written by :func:`write_timeline`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("kind") != TIMELINE_KIND:
        raise ValueError(f"{path} is not a campaign timeline")
    return data
