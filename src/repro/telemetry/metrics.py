"""Zero-dependency metrics registry: counters, gauges, histograms.

The paper's measurement stack keeps per-server counters (ETW event
counts, SNMP byte counters) alongside the raw logs; this module is the
reproduction's equivalent for the *simulator itself*.  Everything here
is stdlib-only and cheap enough to leave compiled into the hot layers:
a counter increment is one float add, and histogram quantiles use a
fixed-size reservoir (Vitter's Algorithm R) so memory stays bounded no
matter how many samples a campaign produces.

Instruments are identified by ``(name, labels)``.  Asking the registry
for the same name/labels twice returns the same object, so call sites
can resolve an instrument once and hold it across a hot loop.

Every instrument also knows how to serialise its *full* state
(:meth:`state`) and fold another instrument's state into itself
(:meth:`merge_state`) — the substrate for cross-process fan-in, where
each campaign worker ships its registry home and the parent merges:
counters sum, gauges keep the latest write (wall-clock timestamped),
histograms merge their reservoirs with count-proportional sampling.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default reservoir capacity for histogram quantiles.  512 samples give
#: quantile estimates within a few percent — plenty for progress and
#: profiling metrics.
_RESERVOIR_SIZE = 512


def _flatten(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Canonical flat key, e.g. ``jobs_finished{outcome=succeeded}``."""
    if not labels:
        return name
    body = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{body}}}"


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-friendly state."""
        return {"type": "counter", "value": self.value}

    def state(self) -> dict:
        """Full serialisable state (for cross-process merging)."""
        return {
            "kind": "counter",
            "name": self.name,
            "labels": [list(pair) for pair in self.labels],
            "value": self.value,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another counter's state into this one (sum)."""
        self.inc(float(state.get("value", 0.0)))


@dataclass
class Gauge:
    """A point-in-time value (heap depth, active flows, rates).

    Every write stamps ``updated_at`` (epoch seconds) so that merging
    two processes' gauges is well-defined: the latest writer wins.
    """

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0
    updated_at: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)
        self.updated_at = time.time()

    def max(self, value: float) -> None:
        """Keep the running maximum of observed values."""
        if value > self.value:
            self.value = float(value)
        self.updated_at = time.time()

    def snapshot(self) -> dict:
        """JSON-friendly state."""
        return {"type": "gauge", "value": self.value}

    def state(self) -> dict:
        """Full serialisable state (for cross-process merging)."""
        return {
            "kind": "gauge",
            "name": self.name,
            "labels": [list(pair) for pair in self.labels],
            "value": self.value,
            "updated_at": self.updated_at,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another gauge's state into this one (last writer wins)."""
        stamp = float(state.get("updated_at", 0.0))
        if stamp >= self.updated_at:
            self.value = float(state.get("value", 0.0))
            self.updated_at = stamp


@dataclass
class Histogram:
    """Count/sum/min/max plus reservoir-sampled quantiles.

    The reservoir is Vitter's Algorithm R with a generator seeded from
    the instrument name, so a deterministic simulation produces a
    deterministic metrics snapshot.
    """

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    reservoir_size: int = _RESERVOIR_SIZE
    count: int = 0
    total: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")
    _reservoir: list[float] = field(default_factory=list)
    _rng: random.Random = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._rng is None:
            self._rng = random.Random(zlib.crc32(_flatten(self.name, self.labels).encode()))

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (nearest-rank over the reservoir)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def snapshot(self) -> dict:
        """JSON-friendly summary including p50/p90/p99."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def state(self) -> dict:
        """Full serialisable state, reservoir included."""
        return {
            "kind": "histogram",
            "name": self.name,
            "labels": [list(pair) for pair in self.labels],
            "count": self.count,
            "total": self.total,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "reservoir": list(self._reservoir),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's state into this one.

        Count/sum/min/max combine exactly.  The merged reservoir samples
        from the two reservoirs proportionally to the sample counts they
        represent, using this instrument's seeded generator — so merging
        the same states in the same order is deterministic, and quantile
        estimates keep their usual reservoir error bounds.
        """
        other_count = int(state.get("count", 0))
        if other_count == 0:
            return
        other_reservoir = [float(v) for v in state.get("reservoir", [])]
        other_total = float(state.get("total", 0.0))
        if self.count == 0:
            self.count = other_count
            self.total = other_total
            self.min_value = float(state.get("min", 0.0))
            self.max_value = float(state.get("max", 0.0))
            self._reservoir = other_reservoir[: self.reservoir_size]
            return
        mine_count, mine_reservoir = self.count, list(self._reservoir)
        self.count += other_count
        self.total += other_total
        self.min_value = min(self.min_value, float(state.get("min", self.min_value)))
        self.max_value = max(self.max_value, float(state.get("max", self.max_value)))
        combined = mine_reservoir + other_reservoir
        if len(combined) <= self.reservoir_size:
            self._reservoir = combined
            return
        total = mine_count + other_count
        merged: list[float] = []
        for _ in range(self.reservoir_size):
            if self._rng.randrange(total) < mine_count:
                merged.append(mine_reservoir[self._rng.randrange(len(mine_reservoir))])
            else:
                merged.append(
                    other_reservoir[self._rng.randrange(len(other_reservoir))]
                )
        self._reservoir = merged


class MetricsRegistry:
    """Get-or-create home for every instrument of one run."""

    def __init__(self, reservoir_size: int = _RESERVOIR_SIZE) -> None:
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._reservoir_size = reservoir_size

    @staticmethod
    def _labels_key(labels: dict) -> tuple[tuple[str, str], ...]:
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _get_or_create(self, name: str, labels: dict, factory, kind: type):
        key = (name, self._labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, labels, Counter, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, labels, Gauge, Gauge)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(
            name,
            labels,
            lambda n, l: Histogram(n, l, reservoir_size=self._reservoir_size),
            Histogram,
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def export_state(self) -> list[dict]:
        """Every instrument's full state, sorted by flat key.

        The inverse of :meth:`merge_state`; workers call this to ship
        their registry back to the campaign parent.
        """
        keyed = sorted(
            (_flatten(name, labels), instrument)
            for (name, labels), instrument in self._instruments.items()
        )
        return [instrument.state() for _, instrument in keyed]  # type: ignore[attr-defined]

    def merge_state(self, states: list[dict]) -> None:
        """Fold exported instrument states into this registry.

        Counters sum, gauges keep the latest timestamped write,
        histograms merge reservoirs (see the instrument docstrings).
        Instruments that do not exist here yet are created.
        """
        factories = {
            "counter": self.counter,
            "gauge": self.gauge,
            "histogram": self.histogram,
        }
        for state in states:
            kind = state.get("kind")
            if kind not in factories:
                raise ValueError(f"unknown instrument kind {kind!r}")
            labels = {key: value for key, value in state.get("labels", [])}
            factories[kind](state["name"], **labels).merge_state(state)

    def snapshot(self) -> dict[str, dict]:
        """Flat ``{name{labels}: state}`` map of every instrument, sorted."""
        flat = {
            _flatten(name, labels): instrument.snapshot()  # type: ignore[attr-defined]
            for (name, labels), instrument in self._instruments.items()
        }
        return dict(sorted(flat.items()))
