"""Zero-dependency metrics registry: counters, gauges, histograms.

The paper's measurement stack keeps per-server counters (ETW event
counts, SNMP byte counters) alongside the raw logs; this module is the
reproduction's equivalent for the *simulator itself*.  Everything here
is stdlib-only and cheap enough to leave compiled into the hot layers:
a counter increment is one float add, and histogram quantiles use a
fixed-size reservoir (Vitter's Algorithm R) so memory stays bounded no
matter how many samples a campaign produces.

Instruments are identified by ``(name, labels)``.  Asking the registry
for the same name/labels twice returns the same object, so call sites
can resolve an instrument once and hold it across a hot loop.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default reservoir capacity for histogram quantiles.  512 samples give
#: quantile estimates within a few percent — plenty for progress and
#: profiling metrics.
_RESERVOIR_SIZE = 512


def _flatten(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Canonical flat key, e.g. ``jobs_finished{outcome=succeeded}``."""
    if not labels:
        return name
    body = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{body}}}"


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-friendly state."""
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A point-in-time value (heap depth, active flows, rates)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def max(self, value: float) -> None:
        """Keep the running maximum of observed values."""
        if value > self.value:
            self.value = float(value)

    def snapshot(self) -> dict:
        """JSON-friendly state."""
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Count/sum/min/max plus reservoir-sampled quantiles.

    The reservoir is Vitter's Algorithm R with a generator seeded from
    the instrument name, so a deterministic simulation produces a
    deterministic metrics snapshot.
    """

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    reservoir_size: int = _RESERVOIR_SIZE
    count: int = 0
    total: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")
    _reservoir: list[float] = field(default_factory=list)
    _rng: random.Random = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._rng is None:
            self._rng = random.Random(zlib.crc32(_flatten(self.name, self.labels).encode()))

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (nearest-rank over the reservoir)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def snapshot(self) -> dict:
        """JSON-friendly summary including p50/p90/p99."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create home for every instrument of one run."""

    def __init__(self, reservoir_size: int = _RESERVOIR_SIZE) -> None:
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._reservoir_size = reservoir_size

    @staticmethod
    def _labels_key(labels: dict) -> tuple[tuple[str, str], ...]:
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _get_or_create(self, name: str, labels: dict, factory, kind: type):
        key = (name, self._labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, labels, Counter, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, labels, Gauge, Gauge)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(
            name,
            labels,
            lambda n, l: Histogram(n, l, reservoir_size=self._reservoir_size),
            Histogram,
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """Flat ``{name{labels}: state}`` map of every instrument, sorted."""
        flat = {
            _flatten(name, labels): instrument.snapshot()  # type: ignore[attr-defined]
            for (name, labels), instrument in self._instruments.items()
        }
        return dict(sorted(flat.items()))
