"""Per-process resource profiling: RSS/CPU sampling, GC pauses, phases.

The paper can say *where* cluster time goes because every machine
reports SNMP counters alongside its event logs; this module gives each
campaign worker the equivalent self-measurement.  A
:class:`ResourceProfiler` samples resident-set size and CPU time on a
background thread (``/proc/self`` where available, the stdlib
``resource`` module as the fallback), times garbage-collection pauses
through ``gc.callbacks``, and records named wall-clock **phases**
(spawn, import, dataset-load, compute, merge) that the campaign
timeline renders as a per-worker Gantt lane.

Phase boundaries that predate the profiler — process spawn and
interpreter/import startup — are reconstructed from the kernel's
process-creation timestamp (:func:`process_create_time`), so the
timeline accounts for time spent before any Python code of ours ran.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator

try:  # pragma: no cover - always present on Linux/macOS
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None  # type: ignore[assignment]

__all__ = [
    "ResourceProfiler",
    "read_rss_bytes",
    "read_cpu_seconds",
    "process_create_time",
    "PHASE_SPAWN",
    "PHASE_IMPORT",
    "PHASE_WAIT",
    "PHASE_CLAIM",
    "PHASE_LEASE_WAIT",
    "PHASE_SHM_ATTACH",
    "PHASE_DATASET",
    "PHASE_COMPUTE",
    "PHASE_MERGE",
]

#: Canonical phase names used by the campaign timeline.
PHASE_SPAWN = "spawn"
PHASE_IMPORT = "import"
PHASE_WAIT = "wait"
#: Work-queue scheduler phases (:mod:`repro.experiments.scheduler`):
#: lease acquisition, idle-while-all-units-leased, shared-memory attach.
PHASE_CLAIM = "claim"
PHASE_LEASE_WAIT = "lease-wait"
PHASE_SHM_ATTACH = "shm-attach"
PHASE_DATASET = "dataset-load"
PHASE_COMPUTE = "compute"
PHASE_MERGE = "merge"

#: Default sampling cadence, seconds.  Coarse enough to be invisible in
#: profiles, fine enough to catch per-phase RSS peaks.
DEFAULT_INTERVAL = 0.05


def _sysconf(name: str, default: float) -> float:
    try:
        value = os.sysconf(name)
    except (AttributeError, ValueError, OSError):
        return default
    return float(value) if value > 0 else default


_PAGE_SIZE = _sysconf("SC_PAGE_SIZE", 4096.0)
_CLK_TCK = _sysconf("SC_CLK_TCK", 100.0)


def read_rss_bytes() -> int | None:
    """Current resident-set size in bytes (``None`` if unmeasurable).

    Prefers ``/proc/self/statm`` (current RSS); falls back to
    ``resource.getrusage`` whose ``ru_maxrss`` is the *peak* RSS — still
    useful for the peak statistic the profiler reports.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            return int(int(handle.read().split()[1]) * _PAGE_SIZE)
    except (OSError, ValueError, IndexError):
        pass
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        # Linux reports kilobytes, macOS bytes; kilobytes is the common
        # case and over-reporting by 1024x on macOS would be obvious.
        return int(usage.ru_maxrss) * 1024
    return None


def read_cpu_seconds() -> float:
    """User + system CPU seconds consumed by this process."""
    times = os.times()
    return times.user + times.system


def process_create_time() -> float | None:
    """Wall-clock epoch when this process was created (Linux only).

    Field 22 of ``/proc/self/stat`` is the process start time in clock
    ticks since boot; subtracting it from ``/proc/uptime`` gives the
    process age, hence its creation timestamp.  Returns ``None`` when
    ``/proc`` is unavailable, in which case spawn and import time
    collapse into one phase.
    """
    try:
        with open("/proc/self/stat", "r", encoding="ascii") as handle:
            stat = handle.read()
        # comm (field 2) may contain spaces; split after its closing ')'.
        fields = stat.rsplit(")", 1)[1].split()
        starttime_ticks = float(fields[19])  # field 22 overall
        with open("/proc/uptime", "r", encoding="ascii") as handle:
            uptime = float(handle.read().split()[0])
    except (OSError, ValueError, IndexError):
        return None
    age = uptime - starttime_ticks / _CLK_TCK
    return time.time() - age


class ResourceProfiler:
    """Samples process resources and records named wall-clock phases.

    Usage::

        profiler = ResourceProfiler()
        profiler.start()
        with profiler.phase("dataset-load"):
            dataset = build_dataset(config)
        profiler.stop()
        record = profiler.profile()

    ``profile()`` is a plain JSON-friendly dict: peak/last RSS, CPU
    seconds, GC collection count and total pause, and the phase list
    with per-phase CPU and GC deltas.  The profiler is designed to ride
    along a worker process: start/stop cost is two thread operations,
    and sampling touches nothing the simulation's RNG streams see, so
    profiled and unprofiled runs stay bit-identical.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self.interval = interval
        self.pid = os.getpid()
        self._samples = 0
        self._peak_rss = 0
        self._last_rss = 0
        self._cpu_start = 0.0
        self._cpu_seconds = 0.0
        self._wall_start = 0.0
        self._gc_pauses = 0.0
        self._gc_collections = 0
        self._gc_started: float | None = None
        self._phases: list[dict] = []
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._running = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ResourceProfiler":
        """Begin sampling; idempotent."""
        if self._running:
            return self
        self._running = True
        self._wall_start = time.time()
        self._cpu_start = read_cpu_seconds()
        self._sample()
        gc.callbacks.append(self._gc_callback)
        if self.interval > 0:
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._sampler, name="repro-resource-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "ResourceProfiler":
        """Stop sampling and settle the CPU total; idempotent."""
        if not self._running:
            return self
        self._running = False
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        try:
            gc.callbacks.remove(self._gc_callback)
        except ValueError:  # pragma: no cover - already removed
            pass
        self._cpu_seconds = read_cpu_seconds() - self._cpu_start
        self._sample()
        return self

    def __enter__(self) -> "ResourceProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------ sampling

    def _sampler(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        rss = read_rss_bytes()
        if rss is None:
            return
        self._samples += 1
        self._last_rss = rss
        if rss > self._peak_rss:
            self._peak_rss = rss

    def _gc_callback(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_started = time.perf_counter()
        elif phase == "stop" and self._gc_started is not None:
            self._gc_pauses += time.perf_counter() - self._gc_started
            self._gc_collections += 1
            self._gc_started = None

    # ------------------------------------------------------------ phases

    @contextmanager
    def phase(self, name: str) -> Iterator[dict]:
        """Record the body as one named phase with resource deltas."""
        start = time.time()
        cpu_before = read_cpu_seconds()
        gc_pause_before = self._gc_pauses
        record = {"name": name, "start": start}
        try:
            yield record
        finally:
            self._sample()
            record.update(
                duration=time.time() - start,
                cpu_seconds=read_cpu_seconds() - cpu_before,
                gc_pause_seconds=self._gc_pauses - gc_pause_before,
                rss_bytes=self._last_rss,
            )
            self._phases.append(record)

    def add_phase(self, name: str, start: float, duration: float, **extra) -> dict:
        """Record a phase measured externally (e.g. spawn, queue wait)."""
        record = {"name": name, "start": start, "duration": max(0.0, duration)}
        record.update(extra)
        self._phases.append(record)
        return record

    def add_startup_phases(self, submitted_at: float | None) -> None:
        """Reconstruct what happened before this profiler existed.

        ``submitted_at`` is the parent's wall-clock timestamp when it
        handed the work over.  If the kernel says this process was
        created *after* that, the gap splits into ``spawn`` (process
        creation) and ``import`` (interpreter startup + imports +
        payload unpickle).  Otherwise — a reused pool worker or an
        in-process run — the gap is queue ``wait``.
        """
        if submitted_at is None:
            return
        now = self._wall_start or time.time()
        gap = now - submitted_at
        if gap <= 0:
            return
        created = process_create_time()
        if created is not None and created >= submitted_at:
            self.add_phase(PHASE_SPAWN, submitted_at, created - submitted_at)
            self.add_phase(PHASE_IMPORT, created, now - created)
        else:
            self.add_phase(PHASE_WAIT, submitted_at, gap)

    # ------------------------------------------------------------ output

    def profile(self) -> dict:
        """JSON-friendly resource record for the worker report."""
        return {
            "pid": self.pid,
            "interval": self.interval,
            "samples": self._samples,
            "peak_rss_bytes": self._peak_rss,
            "last_rss_bytes": self._last_rss,
            "cpu_seconds": (
                self._cpu_seconds
                if not self._running
                else read_cpu_seconds() - self._cpu_start
            ),
            "gc": {
                "collections": self._gc_collections,
                "pause_seconds": self._gc_pauses,
            },
            "phases": sorted(self._phases, key=lambda p: p["start"]),
        }
