"""Span-based tracing with wall-clock timing and JSONL export.

A :class:`Tracer` records a tree of named spans::

    with tracer.span("simulate.campaign", seed=42):
        with tracer.span("simulate.engine_run"):
            ...

Each completed span carries its name, parent link, start timestamp,
duration and free-form attributes.  ``write_jsonl`` emits one JSON
object per line — the same grep-able shape as the collector's ETW-style
socket log, so the simulator's own behaviour is inspectable with the
same tools as the traffic it simulates.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Span", "Tracer", "read_jsonl", "aggregate_spans"]


@dataclass
class Span:
    """One traced operation; attributes may be added while it is open."""

    span_id: int
    parent_id: int | None
    name: str
    start: float  # wall-clock epoch seconds
    attrs: dict = field(default_factory=dict)
    duration: float = 0.0  # seconds, filled on exit

    def set(self, **attrs) -> None:
        """Attach extra attributes to the span."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        """JSON-friendly record."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans; nesting follows the runtime call structure."""

    def __init__(self) -> None:
        self.spans: list[Span] = []  # completed, in finish order
        self._stack: list[Span] = []
        self._next_id = 0

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body."""
        record = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=time.time(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(record)
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - started
            self._stack.pop()
            self.spans.append(record)

    def to_jsonl(self) -> str:
        """Serialise completed spans, one JSON object per line."""
        return "\n".join(json.dumps(span.to_dict()) for span in self.spans)

    def write_jsonl(self, path) -> int:
        """Write the trace to ``path``; returns the number of spans."""
        body = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            if body:
                handle.write(body + "\n")
        return len(self.spans)


def read_jsonl(path) -> list[dict]:
    """Load a trace written by :meth:`Tracer.write_jsonl`."""
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def aggregate_spans(spans: list[dict] | list[Span]) -> dict[str, dict]:
    """Per-name timing rollup: ``{name: {count, total_s, mean_s, max_s}}``.

    Accepts either :class:`Span` objects or the dicts ``read_jsonl``
    returns, so the CLI report works on live tracers and on files alike.
    """
    rollup: dict[str, dict] = {}
    for span in spans:
        if isinstance(span, Span):
            name, duration = span.name, span.duration
        else:
            name, duration = span["name"], span["duration"]
        entry = rollup.setdefault(
            name, {"count": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += duration
        entry["max_s"] = max(entry["max_s"], duration)
    for entry in rollup.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return dict(sorted(rollup.items()))
