"""Network tomography in the datacenter (paper §5).

The paper's §5 asks whether classical ISP tomography — inferring the
traffic matrix from SNMP link counts plus a prior — survives contact
with datacenter traffic, and answers no.  This package reproduces that
negative result: :mod:`~repro.tomography.gravity` builds the standard
gravity prior from node totals, :mod:`~repro.tomography.jobprior` and
:mod:`~repro.tomography.roleprior` the application-informed
alternatives, :mod:`~repro.tomography.tomogravity` the least-squares
correction step against the routing A-matrix, and
:mod:`~repro.tomography.metrics` the error measures (plus
:mod:`~repro.tomography.sparsity`, the Fig 13-14 diagnostics explaining
*why* the priors fail: datacenter TMs are sparse, spiky and weakly
correlated with node totals).
"""

from .gravity import gravity_matrix, gravity_prior_for_pairs, node_totals_from_tm
from .jobprior import job_affinity_matrix, job_aware_prior
from .metrics import (
    fraction_of_entries_for_volume,
    heavy_hitter_overlap,
    nonzero_count,
    rmsre,
    volume_threshold,
)
from .roleprior import role_affinity_matrix, role_aware_prior
from .sparsity import sparsity_max_estimate
from .tomogravity import tomogravity_estimate

__all__ = [
    "gravity_matrix",
    "gravity_prior_for_pairs",
    "node_totals_from_tm",
    "job_affinity_matrix",
    "job_aware_prior",
    "tomogravity_estimate",
    "sparsity_max_estimate",
    "role_affinity_matrix",
    "role_aware_prior",
    "rmsre",
    "volume_threshold",
    "fraction_of_entries_for_volume",
    "nonzero_count",
    "heavy_hitter_overlap",
]
