"""The gravity traffic model (paper §5.1 prior).

"The gravity model assumes that the amount of traffic a node (origin)
would send to another node (destination) is proportional to the traffic
volume received by the destination."  Concretely, for outflow totals
``o_i`` and inflow totals ``t_j``:

    x_ij = o_i * t_j / T,     T = Σ o = Σ t

This prior is excellent in ISP backbones and — the paper's point — a
poor fit for job-clustered, sparse datacenter TMs: it spreads traffic
over all pairs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gravity_matrix", "gravity_prior_for_pairs", "node_totals_from_tm"]


def gravity_matrix(
    out_totals: np.ndarray, in_totals: np.ndarray, zero_diagonal: bool = True
) -> np.ndarray:
    """The rank-one gravity TM for given node in/out totals.

    With ``zero_diagonal`` (the ToR-level convention) the diagonal is
    removed and the matrix rescaled to preserve total volume.
    """
    out_arr = np.asarray(out_totals, dtype=float)
    in_arr = np.asarray(in_totals, dtype=float)
    if out_arr.ndim != 1 or in_arr.ndim != 1 or out_arr.size != in_arr.size:
        raise ValueError("totals must be equal-length vectors")
    if np.any(out_arr < 0) or np.any(in_arr < 0):
        raise ValueError("totals must be non-negative")
    total = out_arr.sum()
    in_sum = in_arr.sum()
    if total <= 0 or in_sum <= 0:
        return np.zeros((out_arr.size, out_arr.size))
    matrix = np.outer(out_arr, in_arr) / in_sum
    if zero_diagonal:
        np.fill_diagonal(matrix, 0.0)
        current = matrix.sum()
        if current > 0:
            matrix *= total / current
    return matrix


def node_totals_from_tm(tm: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(out_totals, in_totals) row/column sums of a TM."""
    matrix = np.asarray(tm, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("TM must be square")
    return matrix.sum(axis=1), matrix.sum(axis=0)


def gravity_prior_for_pairs(
    out_totals: np.ndarray,
    in_totals: np.ndarray,
    pairs: list[tuple[int, int]],
) -> np.ndarray:
    """Gravity prior flattened over an ordered pair list.

    ``pairs`` is the unknown ordering used by the routing matrix (ToR
    pairs with ``i != j``); the returned vector aligns with it.
    """
    matrix = gravity_matrix(out_totals, in_totals, zero_diagonal=True)
    return np.array([matrix[i, j] for i, j in pairs])
