"""Gravity prior augmented with application metadata (paper §5.3).

"We use metadata on which jobs ran when and which machines were running
instances of the same job.  We extend the gravity model to include an
additional multiplier for traffic between two given nodes (ToRs) i and j
that is larger if the nodes share more jobs ... i.e., the product of the
number of instances of a job running on servers under ToRs i and j,
summed over all jobs k."

The paper finds the improvement marginal — nodes in a job change roles
over time, so sharing a job does not pin down who talks to whom — and
experiment F12/F14 checks that our reproduction shows the same mild
effect.
"""

from __future__ import annotations

import numpy as np

from ..cluster.topology import ClusterTopology
from ..instrumentation.applog import ApplicationLog
from .gravity import gravity_matrix

__all__ = ["job_affinity_matrix", "job_aware_prior"]


def job_affinity_matrix(
    applog: ApplicationLog,
    topology: ClusterTopology,
    start: float | None = None,
    end: float | None = None,
) -> np.ndarray:
    """Rack-level job co-location counts: ``Σ_k n_ki * n_kj``.

    ``n_ki`` counts vertices of job ``k`` that ran on servers under ToR
    ``i``, taken from the application log's placement records.  ``start``
    / ``end`` restrict to vertices placed in a time window ("which jobs
    ran when"), matching the per-TM-window prior the paper builds.
    """
    num_racks = topology.num_racks
    affinity = np.zeros((num_racks, num_racks))
    counts_by_job: dict[int, np.ndarray] = {}
    for record in applog.vertex_starts:
        if start is not None and record.time < start:
            continue
        if end is not None and record.time >= end:
            continue
        per_rack = counts_by_job.get(record.job_id)
        if per_rack is None:
            per_rack = np.zeros(num_racks)
            counts_by_job[record.job_id] = per_rack
        per_rack[topology.rack_of(record.server)] += 1
    for per_rack in counts_by_job.values():
        affinity += np.outer(per_rack, per_rack)
    np.fill_diagonal(affinity, 0.0)
    return affinity


def job_aware_prior(
    out_totals: np.ndarray,
    in_totals: np.ndarray,
    affinity: np.ndarray,
    strength: float = 1.0,
) -> np.ndarray:
    """Gravity prior modulated by job co-location affinity.

    Each gravity entry is scaled by ``1 + strength * a_ij / mean(a)``;
    the result is renormalised to preserve total volume.  ``strength=0``
    degenerates to plain gravity.
    """
    if strength < 0:
        raise ValueError("strength must be non-negative")
    base = gravity_matrix(out_totals, in_totals, zero_diagonal=True)
    total = base.sum()
    if total <= 0:
        return base
    affinity_arr = np.asarray(affinity, dtype=float)
    if affinity_arr.shape != base.shape:
        raise ValueError("affinity shape must match the gravity matrix")
    off_diagonal = affinity_arr[~np.eye(affinity_arr.shape[0], dtype=bool)]
    mean_affinity = off_diagonal.mean() if off_diagonal.size else 0.0
    if mean_affinity <= 0:
        return base
    multiplier = 1.0 + strength * affinity_arr / mean_affinity
    modulated = base * multiplier
    np.fill_diagonal(modulated, 0.0)
    current = modulated.sum()
    if current > 0:
        modulated *= total / current
    return modulated
