"""Estimation-error and sparsity metrics (paper §5 methodology).

"Our error function avoids penalizing mis-estimates of matrix entries
that have small values.  Specifically, we choose a threshold T such that
entries larger than T make up about 75% of traffic volume and then
obtain Root Mean Square Relative Error (RMSRE) as

    RMSRE = sqrt( mean over {ij : x_true_ij >= T} of
                  ((x_est_ij - x_true_ij) / x_true_ij)^2 )."

Also implements the sparsity measures of Figs 13-14: the fraction of
entries that carry 75% of the volume, and the overlap between estimated
non-zeros and true heavy hitters.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "volume_threshold",
    "rmsre",
    "fraction_of_entries_for_volume",
    "nonzero_count",
    "heavy_hitter_overlap",
]


def volume_threshold(x_true: np.ndarray, volume_fraction: float = 0.75) -> float:
    """The paper's threshold T: entries >= T carry ``volume_fraction`` of
    total volume.

    Computed by descending cumulative sum; returns 0 for an all-zero
    vector (every entry then qualifies).
    """
    if not 0 < volume_fraction <= 1:
        raise ValueError("volume_fraction must lie in (0, 1]")
    values = np.asarray(x_true, dtype=float).ravel()
    total = values.sum()
    if total <= 0:
        return 0.0
    ordered = np.sort(values)[::-1]
    cumulative = np.cumsum(ordered)
    index = int(np.searchsorted(cumulative, volume_fraction * total, side="left"))
    index = min(index, ordered.size - 1)
    return float(ordered[index])


def rmsre(
    x_true: np.ndarray, x_est: np.ndarray, volume_fraction: float = 0.75
) -> float:
    """Root mean square relative error over the top-volume entries."""
    true_vals = np.asarray(x_true, dtype=float).ravel()
    est_vals = np.asarray(x_est, dtype=float).ravel()
    if true_vals.shape != est_vals.shape:
        raise ValueError("true and estimated vectors must have equal shape")
    threshold = volume_threshold(true_vals, volume_fraction)
    mask = true_vals >= threshold if threshold > 0 else true_vals > 0
    if not mask.any():
        return float("nan")
    relative = (est_vals[mask] - true_vals[mask]) / true_vals[mask]
    return float(np.sqrt(np.mean(relative**2)))


def fraction_of_entries_for_volume(
    x: np.ndarray, volume_fraction: float = 0.75
) -> float:
    """Fraction of entries needed to cover ``volume_fraction`` of volume.

    The Fig 13/14 sparsity measure: small values mean a few heavy pairs
    carry most traffic.  Returns NaN for an all-zero vector.
    """
    if not 0 < volume_fraction <= 1:
        raise ValueError("volume_fraction must lie in (0, 1]")
    values = np.asarray(x, dtype=float).ravel()
    total = values.sum()
    if total <= 0:
        return float("nan")
    ordered = np.sort(values)[::-1]
    cumulative = np.cumsum(ordered)
    needed = int(np.searchsorted(cumulative, volume_fraction * total, side="left")) + 1
    return needed / values.size


def nonzero_count(x: np.ndarray, relative_floor: float = 1e-9) -> int:
    """Entries carrying non-negligible volume (> floor × total)."""
    values = np.asarray(x, dtype=float).ravel()
    total = values.sum()
    if total <= 0:
        return 0
    return int(np.count_nonzero(values > relative_floor * total))


def heavy_hitter_overlap(
    x_true: np.ndarray, x_est: np.ndarray, percentile: float = 97.0
) -> int:
    """How many estimated non-zeros are true heavy hitters.

    The paper checks whether the sparsity-maximised TM's ~150 non-zero
    entries line up with ground truth heavy hitters (value above the
    97th percentile of the true TM) and finds only a handful do.
    """
    true_vals = np.asarray(x_true, dtype=float).ravel()
    est_vals = np.asarray(x_est, dtype=float).ravel()
    if true_vals.shape != est_vals.shape:
        raise ValueError("true and estimated vectors must have equal shape")
    if true_vals.size == 0:
        return 0
    cutoff = np.percentile(true_vals, percentile)
    est_nonzero = est_vals > 1e-9 * max(est_vals.sum(), 1.0)
    return int(np.count_nonzero(est_nonzero & (true_vals >= cutoff) & (true_vals > 0)))
