"""Role-aware tomography prior — the paper's §5.3 future work.

The job-metadata prior disappoints because "nodes in a job assum[e]
different roles over time and traffic patterns var[y] with respective
roles.  As future work, we plan to incorporate further information on
roles of nodes assigned to a job."  This module implements that plan.

Shuffle traffic flows from *producer* vertices (Extract/Partition, whose
outputs feed a barrier phase) to *consumer* vertices (Aggregate/Combine,
which pull a partition from every producer).  Knowing which racks hosted
a job's producers and which its consumers during a window gives a
*directional* affinity:

    A_ij = Σ_k  producers_k(i) * consumers_k(j)

which modulates the gravity prior exactly as the symmetric §5.3
multiplier did, but no longer predicts traffic between two racks that
merely ran producers of the same job.
"""

from __future__ import annotations

import numpy as np

from ..cluster.topology import ClusterTopology
from ..instrumentation.applog import ApplicationLog
from .gravity import gravity_matrix

__all__ = ["PRODUCER_PHASES", "CONSUMER_PHASES", "role_affinity_matrix",
           "role_aware_prior"]

#: Phase types whose outputs are pulled over the network by a barrier.
PRODUCER_PHASES = frozenset({"extract", "partition"})
#: Barrier phase types that pull from every producer (shuffle consumers).
CONSUMER_PHASES = frozenset({"aggregate", "combine"})


def role_affinity_matrix(
    applog: ApplicationLog,
    topology: ClusterTopology,
    start: float | None = None,
    end: float | None = None,
) -> np.ndarray:
    """Directional rack affinity from per-job producer/consumer roles.

    ``A[i, j]`` counts, summed over jobs, producer placements under ToR
    ``i`` times consumer placements under ToR ``j`` within the window.
    Unlike :func:`~repro.tomography.jobprior.job_affinity_matrix`, the
    result is *not* symmetric — shuffles have a direction.
    """
    num_racks = topology.num_racks
    phase_types: dict[tuple[int, int], str] = {}
    for record in applog.phase_starts:
        phase_types[(record.job_id, record.phase_index)] = record.phase_type

    producers: dict[int, np.ndarray] = {}
    consumers: dict[int, np.ndarray] = {}
    for record in applog.vertex_starts:
        if start is not None and record.time < start:
            continue
        if end is not None and record.time >= end:
            continue
        phase_type = phase_types.get((record.job_id, record.phase_index))
        if phase_type in PRODUCER_PHASES:
            table = producers
        elif phase_type in CONSUMER_PHASES:
            table = consumers
        else:
            continue
        per_rack = table.get(record.job_id)
        if per_rack is None:
            per_rack = np.zeros(num_racks)
            table[record.job_id] = per_rack
        per_rack[topology.rack_of(record.server)] += 1

    affinity = np.zeros((num_racks, num_racks))
    for job_id, produced in producers.items():
        consumed = consumers.get(job_id)
        if consumed is None:
            continue
        affinity += np.outer(produced, consumed)
    np.fill_diagonal(affinity, 0.0)
    return affinity


def role_aware_prior(
    out_totals: np.ndarray,
    in_totals: np.ndarray,
    affinity: np.ndarray,
    strength: float = 1.0,
) -> np.ndarray:
    """Gravity prior modulated by the directional role affinity.

    Identical modulation algebra to the symmetric job prior — scale each
    gravity entry by ``1 + strength * a_ij / mean(a)`` and renormalise —
    so any improvement over it is attributable to the role information,
    not to a different estimator.
    """
    if strength < 0:
        raise ValueError("strength must be non-negative")
    base = gravity_matrix(out_totals, in_totals, zero_diagonal=True)
    total = base.sum()
    if total <= 0:
        return base
    affinity_arr = np.asarray(affinity, dtype=float)
    if affinity_arr.shape != base.shape:
        raise ValueError("affinity shape must match the gravity matrix")
    off_diagonal = affinity_arr[~np.eye(affinity_arr.shape[0], dtype=bool)]
    mean_affinity = off_diagonal.mean() if off_diagonal.size else 0.0
    if mean_affinity <= 0:
        return base
    multiplier = 1.0 + strength * affinity_arr / mean_affinity
    modulated = base * multiplier
    np.fill_diagonal(modulated, 0.0)
    current = modulated.sum()
    if current > 0:
        modulated *= total / current
    return modulated
