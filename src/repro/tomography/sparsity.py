"""Sparsity-maximising TM estimation (paper §5.2).

"Given the sparse nature of datacenter TMs, we consider an estimation
method that favors sparser TMs among the many possible.  Specifically,
we formulated a mixed integer linear program (MILP) that generates the
sparsest TM subject to link traffic constraints."

The MILP, for pair volumes ``x`` and indicator binaries ``z``:

    minimize    Σ_k z_k
    subject to  |A x − y| ≤ tol · y   (per link)
                0 ≤ x_k ≤ M_k z_k
                z_k ∈ {0, 1}

with big-M per pair tightened to the smallest link count on the pair's
path (a pair cannot carry more than any link it crosses).  Solved with
``scipy.optimize.milp`` (HiGHS) under a time limit; the incumbent is
returned even when optimality is not proven, mirroring practical use.

The paper's finding — reproduced by experiment F14 — is that the
sparsest consistent TM is *much* sparser than the ground truth and its
non-zeros rarely coincide with true heavy hitters, so it estimates even
worse than tomogravity.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

__all__ = ["sparsity_max_estimate"]


@contextlib.contextmanager
def _silence_stdout():
    """Suppress HiGHS's C-level progress chatter during the solve."""
    stdout_fd = os.dup(1)
    devnull = os.open(os.devnull, os.O_WRONLY)
    try:
        os.dup2(devnull, 1)
        yield
    finally:
        os.dup2(stdout_fd, 1)
        os.close(devnull)
        os.close(stdout_fd)


def sparsity_max_estimate(
    routing: np.ndarray,
    link_counts: np.ndarray,
    tolerance: float = 0.02,
    time_limit: float = 20.0,
) -> np.ndarray:
    """Sparsest non-negative TM consistent with the link counts.

    ``tolerance`` relaxes each link constraint to ``± tolerance * y_l``
    (plus a small absolute slack for zero-count links).  Returns the pair
    volume vector; raises ``RuntimeError`` if the solver finds no
    feasible point (which, given the slack, indicates inconsistent
    inputs).
    """
    matrix = np.asarray(routing, dtype=float)
    counts = np.asarray(link_counts, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("routing matrix must be 2-D")
    num_links, num_pairs = matrix.shape
    if counts.shape != (num_links,):
        raise ValueError("link_counts length must match routing rows")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    total = counts.sum()
    if total <= 0:
        return np.zeros(num_pairs)

    # Per-pair big-M: a pair's volume is bounded by the smallest byte
    # count among links its traffic must cross.
    big_m = np.full(num_pairs, total)
    for k in range(num_pairs):
        on_path = matrix[:, k] > 0
        if on_path.any():
            big_m[k] = counts[on_path].min()
    big_m = np.maximum(big_m, 1e-9)

    # Variables: [x (continuous), z (binary)].
    objective = np.concatenate([np.zeros(num_pairs), np.ones(num_pairs)])

    slack = tolerance * counts + 1e-6 * max(total, 1.0)
    link_constraint = LinearConstraint(
        sparse.hstack([sparse.csr_matrix(matrix),
                       sparse.csr_matrix((num_links, num_pairs))]),
        counts - slack,
        counts + slack,
    )
    # x_k - M_k z_k <= 0
    coupling = LinearConstraint(
        sparse.hstack([sparse.eye(num_pairs), sparse.diags(-big_m)]),
        -np.inf,
        np.zeros(num_pairs),
    )
    bounds = Bounds(
        lb=np.zeros(2 * num_pairs),
        ub=np.concatenate([big_m, np.ones(num_pairs)]),
    )
    integrality = np.concatenate([np.zeros(num_pairs), np.ones(num_pairs)])
    with _silence_stdout():
        result = milp(
            c=objective,
            constraints=[link_constraint, coupling],
            bounds=bounds,
            integrality=integrality,
            options={"time_limit": time_limit, "presolve": True},
        )
    if result.x is None:
        raise RuntimeError(f"sparsity MILP found no feasible point: {result.message}")
    estimate = np.maximum(result.x[:num_pairs], 0.0)
    # Zero-out numerically open indicators that carry no volume.
    estimate[estimate < 1e-6 * max(total, 1.0)] = 0.0
    return estimate
