"""Tomogravity TM estimation (paper §5.1; Zhang et al. 2003).

Given link byte counts ``y``, a routing matrix ``A`` and a gravity prior
``g``, tomogravity picks the TM that satisfies the link constraints while
deviating least from the prior under a weighted least-squares norm:

    minimize   ||(x - g) / sqrt(w)||²  subject to  A x ≈ y,  x ≥ 0

with weights ``w ∝ g`` so that relative (not absolute) deviations are
penalised.  The equality constraints are folded into the objective with a
large penalty and the bounded problem is solved with
``scipy.optimize.lsq_linear`` — robust, dependency-free, and exact enough
for the estimation-error analysis the paper performs.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import lsq_linear

__all__ = ["tomogravity_estimate"]

#: Relative weight of the link-count constraints vs. the prior pull.
_CONSTRAINT_PENALTY = 300.0


def tomogravity_estimate(
    routing: np.ndarray,
    link_counts: np.ndarray,
    prior: np.ndarray,
    max_iterations: int = 200,
) -> np.ndarray:
    """Estimate TM pair volumes from link counts and a prior.

    Returns a non-negative vector aligned with the routing matrix's pair
    columns.  A zero-traffic instance returns the zero vector.
    """
    matrix = np.asarray(routing, dtype=float)
    counts = np.asarray(link_counts, dtype=float)
    prior_vec = np.asarray(prior, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("routing matrix must be 2-D")
    num_links, num_pairs = matrix.shape
    if counts.shape != (num_links,):
        raise ValueError("link_counts length must match routing rows")
    if prior_vec.shape != (num_pairs,):
        raise ValueError("prior length must match routing columns")
    if np.any(counts < 0) or np.any(prior_vec < 0):
        raise ValueError("link counts and prior must be non-negative")

    total = counts.sum()
    if total <= 0 or prior_vec.sum() <= 0:
        return np.zeros(num_pairs)

    # Normalise to O(1) so the solver tolerances behave uniformly.
    scale = prior_vec.sum()
    prior_n = prior_vec / scale
    counts_n = counts / scale

    # Relative-deviation weights; floor keeps zero-prior pairs feasible.
    weights = np.sqrt(np.maximum(prior_n, 1e-6 * prior_n.mean()))
    design = np.vstack([
        _CONSTRAINT_PENALTY * matrix,
        np.diag(1.0 / weights),
    ])
    target = np.concatenate([
        _CONSTRAINT_PENALTY * counts_n,
        prior_n / weights,
    ])
    result = lsq_linear(
        design,
        target,
        bounds=(0.0, np.inf),
        max_iter=max_iterations,
        lsmr_tol="auto",
    )
    estimate = np.maximum(result.x, 0.0) * scale
    return estimate
