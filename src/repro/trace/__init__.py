"""On-disk trace store and streaming analyses (the out-of-core layer).

The paper's measurement campaign persisted months of socket-level logs
and analysed them out of core; this package gives the reproduction the
same shape:

* :mod:`~repro.trace.format` — the versioned ``.reprotrace`` directory
  layout (npz chunks + JSON manifest with content hashes);
* :class:`~repro.trace.writer.TraceWriter` /
  :class:`~repro.trace.reader.TraceReader` — append-only chunked writing
  and lazy chunk iteration;
* :func:`~repro.trace.record.record_trace` — simulate while streaming
  events to disk (constant memory, bit-identical to an in-memory run);
* :func:`~repro.trace.analyze.analyze_trace` — one streaming pass of the
  mergeable core accumulators, sequential or fanned across processes.
"""

from .analyze import TraceAnalysis, analyze_trace, check_against_inmemory
from .format import (
    DEFAULT_CHUNK_SIZE,
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    TRACE_SUFFIX,
)
from .reader import TraceLinkLoads, TraceReader, as_event_log, find_traces
from .record import RecordResult, record_trace
from .writer import TraceWriter

__all__ = [
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "TRACE_SUFFIX",
    "DEFAULT_CHUNK_SIZE",
    "TraceWriter",
    "TraceReader",
    "TraceLinkLoads",
    "TraceAnalysis",
    "RecordResult",
    "as_event_log",
    "find_traces",
    "record_trace",
    "analyze_trace",
    "check_against_inmemory",
]
