"""Streaming analysis of recorded traces — sequential or fanned out.

``analyze_trace`` runs the three mergeable core accumulators
(:class:`~repro.core.streaming.StreamingTrafficMatrix`,
:class:`~repro.core.streaming.StreamingFlows`,
:class:`~repro.core.streaming.StreamingCongestion`) over a trace one
chunk at a time.  With ``jobs > 1`` the chunk (and utilisation-bin)
ranges are partitioned contiguously across ``spawn`` worker processes —
the same pool shape as the campaign runner — and the partial
accumulators are merged left to right, which by construction yields the
identical result.  A :class:`~repro.core.streaming.FlowStatsSketch` is
folded over the final flow table either way.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context

import numpy as np

from ..cluster.topology import ClusterTopology, spec_from_mapping
from ..core.congestion import DEFAULT_THRESHOLD, CongestionSummary
from ..core.flows import DEFAULT_INACTIVITY_TIMEOUT, FlowTable
from ..core.streaming import (
    FlowStatsSketch,
    StreamingCongestion,
    StreamingFlows,
    StreamingTrafficMatrix,
)
from ..core.traffic_matrix import TrafficMatrixSeries
from ..telemetry import NULL_TELEMETRY, Telemetry
from .reader import TraceReader

__all__ = ["TraceAnalysis", "analyze_trace", "check_against_inmemory"]

#: Default TM window, matching the experiment datasets (Figs 2-4, 10).
DEFAULT_TM_WINDOW = 10.0


@dataclass
class TraceAnalysis:
    """Everything one streaming pass over a trace produces."""

    path: str
    rows: int
    chunks: int
    jobs: int
    flows: FlowTable
    tm: TrafficMatrixSeries
    congestion: CongestionSummary | None
    flow_stats: dict = field(default_factory=dict)

    def summary(self) -> dict:
        """Headline numbers for the CLI / smoke checks."""
        out = {
            "rows": self.rows,
            "chunks": self.chunks,
            "jobs": self.jobs,
            "num_flows": len(self.flows),
            "flow_bytes": float(self.flows.num_bytes.sum()) if len(self.flows) else 0.0,
            "tm_windows": self.tm.num_windows,
            "tm_total_bytes": float(self.tm.matrices.sum()),
        }
        if self.congestion is not None:
            out["congestion_episodes"] = len(self.congestion.episodes)
            out["links_with_congestion"] = self.congestion.links_with_any_congestion
            out["longest_episode"] = self.congestion.longest_episode
        return out


def _topology_from_meta(meta: dict) -> ClusterTopology:
    """Rebuild the (possibly non-tree) topology a trace was recorded on.

    Version-tolerant in both directions: seed-era traces (meta_version 1,
    no ``topology_kind`` in the spec) rebuild the original tree from the
    dataclass defaults, and unknown future spec keys are dropped (see
    :func:`~repro.cluster.topology.spec_from_mapping`).  The dispatch on
    ``topology_kind`` inside :class:`ClusterTopology` then builds the
    right fabric.
    """
    spec = meta.get("cluster_spec")
    if spec is None:
        raise ValueError(
            "trace has no cluster_spec in its meta; cannot rebuild the topology"
        )
    return ClusterTopology(spec_from_mapping(spec))


def _duration_from(reader: TraceReader) -> float:
    duration = reader.meta.get("duration")
    if duration is not None:
        return float(duration)
    # Fall back to the event span for traces recorded without meta.
    return max(reader.time_span()[1], 1.0)


def _make_accumulators(
    reader: TraceReader,
    window: float,
    timeout: float,
    threshold: float | None,
) -> tuple[StreamingTrafficMatrix, StreamingFlows, StreamingCongestion | None]:
    topology = _topology_from_meta(reader.meta)
    tm = StreamingTrafficMatrix(topology, window, _duration_from(reader))
    flows = StreamingFlows(inactivity_timeout=timeout)
    loads = reader.linkloads()
    congestion = None
    if loads is not None:
        if threshold is None:
            threshold = float(
                reader.meta.get("congestion_threshold", DEFAULT_THRESHOLD)
            )
        observed = loads.observed_links
        congestion = StreamingCongestion(
            num_links=observed.size,
            threshold=threshold,
            bin_width=loads.bin_width,
            link_ids=observed,
        )
    return tm, flows, congestion


def _analyze_range(payload: tuple) -> tuple:
    """Worker: accumulate one contiguous chunk range (and bin range).

    Top-level so ``spawn`` workers can pickle it; returns the partial
    accumulators for an in-order merge.
    """
    path, chunk_start, chunk_stop, bin_start, bin_stop, window, timeout, threshold = (
        payload
    )
    reader = TraceReader(path)
    tm, flows, congestion = _make_accumulators(reader, window, timeout, threshold)
    for log in reader.iter_chunks(chunk_start, chunk_stop):
        tm.update(log)
        flows.update(log)
    if congestion is not None:
        loads = reader.linkloads()
        observed = loads.utilization_matrix()[loads.observed_links]
        congestion.update(observed[:, bin_start:bin_stop], start_bin=bin_start)
    return tm, flows, congestion


def _ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous, covering ranges."""
    parts = max(1, parts)
    size = math.ceil(total / parts) if total else 0
    out = []
    start = 0
    for _ in range(parts):
        stop = min(total, start + size)
        out.append((start, stop))
        start = stop
    return out


def analyze_trace(
    path,
    jobs: int = 1,
    window: float = DEFAULT_TM_WINDOW,
    inactivity_timeout: float = DEFAULT_INACTIVITY_TIMEOUT,
    threshold: float | None = None,
    telemetry: Telemetry | None = None,
) -> TraceAnalysis:
    """One streaming pass over a trace; constant memory per process.

    ``threshold`` defaults to the recorded config's congestion threshold.
    ``jobs > 1`` fans contiguous chunk ranges across ``spawn`` workers
    and merges the partial accumulators in order — the result is
    identical to the sequential pass.
    """
    tele = telemetry or NULL_TELEMETRY
    reader = TraceReader(path)
    with tele.span(
        "trace.analyze", chunks=reader.num_chunks, rows=reader.total_rows, jobs=jobs
    ):
        if jobs <= 1 or reader.num_chunks <= 1:
            tm, flows, congestion = _make_accumulators(
                reader, window, inactivity_timeout, threshold
            )
            for log in reader.iter_chunks(telemetry=tele):
                tm.update(log)
                flows.update(log)
            if congestion is not None:
                loads = reader.linkloads()
                observed = loads.utilization_matrix()[loads.observed_links]
                congestion.update(observed)
            effective_jobs = 1
        else:
            effective_jobs = min(jobs, reader.num_chunks)
            chunk_ranges = _ranges(reader.num_chunks, effective_jobs)
            loads = reader.linkloads()
            num_bins = loads.num_bins if loads is not None else 0
            bin_ranges = _ranges(num_bins, effective_jobs)
            payloads = [
                (
                    str(path), cs, ce, bs, be,
                    window, inactivity_timeout, threshold,
                )
                for (cs, ce), (bs, be) in zip(chunk_ranges, bin_ranges)
            ]
            context = get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=effective_jobs, mp_context=context
            ) as pool:
                partials = list(pool.map(_analyze_range, payloads))
            tm, flows, congestion = partials[0]
            for other_tm, other_flows, other_congestion in partials[1:]:
                tm.merge(other_tm)
                flows.merge(other_flows)
                if congestion is not None:
                    congestion.merge(other_congestion)
        flow_table = flows.finalize()
        sketch = FlowStatsSketch().update(flow_table)
        return TraceAnalysis(
            path=str(path),
            rows=reader.total_rows,
            chunks=reader.num_chunks,
            jobs=effective_jobs,
            flows=flow_table,
            tm=tm.finalize(),
            congestion=congestion.finalize() if congestion is not None else None,
            flow_stats=sketch.finalize(),
        )


def check_against_inmemory(
    path,
    window: float = DEFAULT_TM_WINDOW,
    inactivity_timeout: float = DEFAULT_INACTIVITY_TIMEOUT,
    threshold: float | None = None,
    jobs: int = 1,
) -> dict:
    """Exact-equality comparison of streamed vs in-memory analyses.

    Loads the whole trace once (this is the *check*, not the production
    path) and asserts the streaming accumulators reproduced the
    traditional pipeline bit for bit.  Used by ``trace analyze --check``
    and the CI smoke job.
    """
    from ..core.congestion import congestion_summary
    from ..core.flows import reconstruct_flows
    from ..core.traffic_matrix import tm_series_from_events

    reader = TraceReader(path)
    streamed = analyze_trace(
        path, jobs=jobs, window=window,
        inactivity_timeout=inactivity_timeout, threshold=threshold,
    )
    log = reader.read_all()
    topology = _topology_from_meta(reader.meta)
    tm = tm_series_from_events(log, topology, window, _duration_from(reader))
    flows = reconstruct_flows(log, inactivity_timeout=inactivity_timeout)
    checks = {
        "tm_equal": bool(
            np.array_equal(streamed.tm.matrices, tm.matrices)
            and np.array_equal(streamed.tm.endpoint_ids, tm.endpoint_ids)
        ),
        "flows_equal": _flow_tables_equal(streamed.flows, flows),
    }
    loads = reader.linkloads()
    if loads is not None:
        resolved = threshold
        if resolved is None:
            resolved = float(
                reader.meta.get("congestion_threshold", DEFAULT_THRESHOLD)
            )
        observed = loads.utilization_matrix()[loads.observed_links]
        summary = congestion_summary(
            observed, threshold=resolved,
            bin_width=loads.bin_width, link_ids=loads.observed_links,
        )
        checks["congestion_equal"] = bool(
            streamed.congestion is not None
            and streamed.congestion.episodes == summary.episodes
            and streamed.congestion.num_links == summary.num_links
            and streamed.congestion.longest_episode == summary.longest_episode
        )
    checks["all_equal"] = all(checks.values())
    return checks


def _flow_tables_equal(a: FlowTable, b: FlowTable) -> bool:
    fields = (
        "src", "src_port", "dst", "dst_port", "protocol",
        "start_time", "end_time", "num_bytes", "num_events",
        "job_id", "phase_index",
    )
    return all(
        np.array_equal(getattr(a, name), getattr(b, name)) for name in fields
    )
