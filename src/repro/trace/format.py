"""The ``.reprotrace`` on-disk trace format.

A trace is a directory (conventionally named ``*.reprotrace``) holding

* ``events-NNNNN.npz`` — consecutive, time-sorted chunks of socket-event
  columns (the :class:`~repro.instrumentation.events.SocketEventLog`
  schema), each at most ``chunk_size`` rows;
* optionally ``linkloads.npz`` — the campaign's per-link byte matrix
  (small next to the events, so stored whole);
* ``manifest.json`` — schema version, column schema, per-chunk row
  counts, time ranges and content hashes, plus free-form ``meta``
  provenance (seed, duration, config fingerprint, cluster spec).

Chunk hashes cover the *column contents* (name, dtype, shape, raw
bytes), not the npz file bytes: zip containers embed timestamps, so
file-level hashes would never be reproducible.  Two recordings of the
same seed therefore yield byte-identical manifest hashes — the
determinism contract ``repro trace record`` is tested against.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np

__all__ = [
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "TRACE_SUFFIX",
    "MANIFEST_NAME",
    "DEFAULT_CHUNK_SIZE",
    "chunk_file_name",
    "content_hash",
    "write_manifest",
    "read_manifest",
    "is_trace_dir",
]

TRACE_FORMAT = "reprotrace"
TRACE_SCHEMA_VERSION = 1
TRACE_SUFFIX = ".reprotrace"
MANIFEST_NAME = "manifest.json"
LINKLOADS_NAME = "linkloads.npz"

#: Default rows per chunk: ~6 MB of event columns, small enough that a
#: streaming pass holds only a sliver of a long campaign in memory.
DEFAULT_CHUNK_SIZE = 65536


def chunk_file_name(index: int) -> str:
    """Canonical file name of chunk ``index``."""
    return f"events-{index:05d}.npz"


def content_hash(columns: dict[str, np.ndarray], order: list[str]) -> str:
    """SHA-256 over column contents in schema order (not file bytes)."""
    digest = hashlib.sha256()
    for name in order:
        column = np.ascontiguousarray(columns[name])
        digest.update(name.encode())
        digest.update(str(column.dtype).encode())
        digest.update(str(column.shape).encode())
        digest.update(column.tobytes())
    return digest.hexdigest()


def write_manifest(trace_dir: pathlib.Path, manifest: dict) -> pathlib.Path:
    """Write ``manifest.json`` (stable key order, trailing newline)."""
    path = trace_dir / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(trace_dir: pathlib.Path) -> dict:
    """Load and validate a trace manifest; raises on wrong format/version."""
    path = trace_dir / MANIFEST_NAME
    if not path.is_file():
        raise FileNotFoundError(f"not a trace directory (no {MANIFEST_NAME}): {trace_dir}")
    manifest = json.loads(path.read_text())
    if manifest.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} manifest")
    version = manifest.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version {version} unsupported "
            f"(this build reads version {TRACE_SCHEMA_VERSION})"
        )
    return manifest


def is_trace_dir(path: pathlib.Path) -> bool:
    """True when ``path`` holds a readable trace manifest."""
    try:
        read_manifest(pathlib.Path(path))
    except (FileNotFoundError, ValueError, NotADirectoryError, json.JSONDecodeError):
        return False
    return True
