"""Lazy reader for ``.reprotrace`` directories.

``TraceReader`` loads the manifest eagerly and chunks on demand, so a
streaming analysis over a long campaign holds one chunk of events in
memory at a time.  ``read_all`` rebuilds the full in-memory
:class:`~repro.instrumentation.events.SocketEventLog` for code that
wants the classic pipeline.
"""

from __future__ import annotations

import os
import pathlib
import zipfile
import zlib
from typing import Iterator

import numpy as np

from ..instrumentation.events import SocketEventLog
from ..telemetry import NULL_TELEMETRY, Telemetry
from .format import (
    LINKLOADS_NAME,
    MANIFEST_NAME,
    content_hash,
    is_trace_dir,
    read_manifest,
)

__all__ = ["TraceReader", "TraceLinkLoads", "as_event_log", "find_traces"]

#: Failure modes a damaged npz produces: truncated/garbled zip containers,
#: bad compressed streams, missing files or archive members, and numpy
#: refusing a mangled array header.
_CORRUPTION_ERRORS = (
    OSError,
    EOFError,
    KeyError,
    ValueError,
    zipfile.BadZipFile,
    zlib.error,
)


class TraceLinkLoads:
    """The trace-stored counterpart of the simulator's link-load tracker.

    Exposes the same ``byte_matrix()`` / ``utilization_matrix()`` surface
    (with the identical utilisation expression), so trace-backed analyses
    and datasets are drop-in.
    """

    def __init__(
        self,
        byte_counts: np.ndarray,
        capacities: np.ndarray,
        bin_width: float,
        observed_links: np.ndarray,
        queue_depth: np.ndarray | None = None,
    ) -> None:
        self._bytes = byte_counts
        self.capacities = capacities
        self.bin_width = float(bin_width)
        self.observed_links = observed_links
        self._queue_depth = queue_depth

    @property
    def num_links(self) -> int:
        """Number of topology links."""
        return int(self._bytes.shape[0])

    @property
    def num_bins(self) -> int:
        """Number of time bins."""
        return int(self._bytes.shape[1])

    def byte_matrix(self) -> np.ndarray:
        """(links, bins) bytes carried per bin."""
        return self._bytes

    def utilization_matrix(self) -> np.ndarray:
        """(links, bins) utilisation in [0, 1]-ish (same expression as
        :meth:`~repro.simulation.linkloads.LinkLoadTracker.utilization_matrix`)."""
        return self._bytes / (self.capacities[:, None] * self.bin_width)

    @property
    def has_queue_depth(self) -> bool:
        """Whether the recording stored queue-occupancy bins."""
        return self._queue_depth is not None

    def queue_depth_matrix(self) -> np.ndarray | None:
        """(links, bins) mean queue occupancy in bytes, or ``None`` for
        fluid recordings (same surface as the live tracker)."""
        return self._queue_depth


class TraceReader:
    """Read a chunked trace lazily; one chunk in memory at a time."""

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.manifest = read_manifest(self.path)
        self.chunks: list[dict] = self.manifest["chunks"]
        self.meta: dict = self.manifest.get("meta", {})
        self.column_names = [name for name, _ in self.manifest["columns"]]

    # ------------------------------------------------------------ overview

    @property
    def num_chunks(self) -> int:
        """Number of event chunks on disk."""
        return len(self.chunks)

    @property
    def total_rows(self) -> int:
        """Total event rows across all chunks."""
        return int(self.manifest["total_rows"])

    @property
    def chunk_size(self) -> int:
        """The writer's target rows per chunk."""
        return int(self.manifest["chunk_size"])

    def time_span(self) -> tuple[float, float]:
        """(first, last) event timestamps; (0, 0) when empty."""
        span = self.manifest.get("time_span")
        if not span:
            return (0.0, 0.0)
        return (float(span[0]), float(span[1]))

    def bytes_on_disk(self) -> int:
        """Total size of the trace directory's files, in bytes."""
        return sum(
            entry.stat().st_size
            for entry in self.path.iterdir()
            if entry.is_file()
        )

    # ------------------------------------------------------------- chunks

    def chunk_columns(self, index: int) -> dict[str, np.ndarray]:
        """Raw column arrays of one chunk.

        Raises :class:`~repro.validate.violations.TraceCorruptionError`
        when the chunk file is missing, truncated or otherwise
        unreadable, instead of leaking ``zipfile``/``numpy`` internals.
        """
        from ..validate.violations import TraceCorruptionError

        entry = self.chunks[index]
        try:
            with np.load(self.path / entry["file"]) as archive:
                return {name: archive[name] for name in self.column_names}
        except _CORRUPTION_ERRORS as error:
            raise TraceCorruptionError(
                f"trace chunk {entry['file']!r} in {self.path} is missing "
                f"or corrupt: {error}"
            ) from error

    def read_chunk(self, index: int) -> SocketEventLog:
        """One chunk as a finalized event log."""
        return SocketEventLog.from_columns(self.chunk_columns(index))

    def iter_chunks(
        self,
        start: int = 0,
        stop: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> Iterator[SocketEventLog]:
        """Yield chunk logs lazily over ``[start, stop)``."""
        tele = telemetry or NULL_TELEMETRY
        stop = self.num_chunks if stop is None else stop
        for index in range(start, stop):
            with tele.span(
                "trace.read_chunk", index=index, rows=self.chunks[index]["rows"]
            ):
                log = self.read_chunk(index)
            tele.counter("trace.chunks_read").inc()
            tele.counter("trace.rows_read").inc(len(log))
            yield log

    def read_all(self) -> SocketEventLog:
        """The whole trace as one in-memory log (chunks are consecutive
        and time-sorted, so concatenation is already finalize order)."""
        if self.num_chunks == 0:
            empty = SocketEventLog()
            empty.finalize()
            return empty
        parts = [self.chunk_columns(i) for i in range(self.num_chunks)]
        columns = {
            name: np.concatenate([part[name] for part in parts])
            for name in self.column_names
        }
        return SocketEventLog.from_columns(columns)

    # ------------------------------------------------------------ validate

    def verify(self) -> list[str]:
        """Re-hash every chunk; returns the files that do not match.

        Unreadable files count as mismatches rather than aborting the
        sweep, so one corrupt chunk cannot mask damage elsewhere.
        """
        from ..validate.violations import TraceCorruptionError

        bad = []
        for index, entry in enumerate(self.chunks):
            try:
                columns = self.chunk_columns(index)
            except TraceCorruptionError:
                bad.append(entry["file"])
                continue
            if content_hash(columns, self.column_names) != entry["sha256"]:
                bad.append(entry["file"])
        loads_entry = self.manifest.get("linkloads")
        if loads_entry is not None:
            try:
                with np.load(self.path / loads_entry["file"]) as archive:
                    arrays = {name: archive[name] for name in archive.files}
            except _CORRUPTION_ERRORS:
                bad.append(loads_entry["file"])
            else:
                hashed = ["bytes", "capacities", "bin_width", "observed_links"]
                if "queue_depth" in arrays:
                    hashed.append("queue_depth")
                digest = content_hash(arrays, hashed)
                if digest != loads_entry["sha256"]:
                    bad.append(loads_entry["file"])
        return bad

    # ------------------------------------------------------------ linkloads

    def linkloads(self) -> TraceLinkLoads | None:
        """The stored link byte counters, or ``None`` if not recorded.

        Raises :class:`~repro.validate.violations.TraceCorruptionError`
        when the manifest declares a sidecar that is missing or damaged.
        """
        from ..validate.violations import TraceCorruptionError

        if self.manifest.get("linkloads") is None:
            return None
        try:
            with np.load(self.path / LINKLOADS_NAME) as archive:
                return TraceLinkLoads(
                    byte_counts=archive["bytes"],
                    capacities=archive["capacities"],
                    bin_width=float(archive["bin_width"]),
                    observed_links=archive["observed_links"],
                    queue_depth=(
                        archive["queue_depth"]
                        if "queue_depth" in archive.files
                        else None
                    ),
                )
        except _CORRUPTION_ERRORS as error:
            raise TraceCorruptionError(
                f"trace sidecar {LINKLOADS_NAME!r} in {self.path} is "
                f"declared in the manifest but missing or corrupt: {error}"
            ) from error


def as_event_log(source) -> SocketEventLog:
    """Coerce a log / reader / trace path into a finalized event log."""
    if isinstance(source, SocketEventLog):
        return source
    if isinstance(source, TraceReader):
        return source.read_all()
    if isinstance(source, (str, os.PathLike)):
        return TraceReader(source).read_all()
    raise TypeError(
        f"expected a SocketEventLog, TraceReader or trace path, got {type(source)!r}"
    )


def find_traces(root) -> list[pathlib.Path]:
    """Trace directories at ``root``: itself, or direct children."""
    root = pathlib.Path(root)
    if is_trace_dir(root):
        return [root]
    if not root.is_dir():
        return []
    return sorted(
        child
        for child in root.iterdir()
        if child.is_dir() and (child / MANIFEST_NAME).is_file() and is_trace_dir(child)
    )
