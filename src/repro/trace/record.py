"""Record a simulated campaign straight to a ``.reprotrace`` directory.

``record_trace`` wires :class:`~repro.trace.writer.TraceWriter` into the
simulator's streaming hook
(:meth:`~repro.simulation.simulator.Simulator.attach_event_stream`), so
socket events hit the disk as the campaign runs and the in-process
buffer stays bounded by the watermark window.  The manifest's ``meta``
records provenance: seed, duration, the config fingerprint, and the
cluster spec (flat and JSON-round-trippable) from which analyses rebuild
the topology.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..config import SimulationConfig
from ..simulation.simulator import SimulationResult, Simulator
from ..telemetry import Telemetry
from .format import DEFAULT_CHUNK_SIZE
from .writer import TraceWriter

__all__ = ["RecordResult", "record_trace"]

#: Default simulated seconds between watermark flushes.
DEFAULT_FLUSH_INTERVAL = 5.0


@dataclass
class RecordResult:
    """What a recording run produced."""

    path: str
    manifest: dict
    #: The run's artefacts.  ``result.socket_log`` is *empty* — every
    #: event was streamed to the trace — but link loads, transfers and
    #: the application log are intact.
    result: SimulationResult


#: Version of the meta block written below.  Version 1 (implicit — the
#: key is absent from seed-era traces) predates the topology family:
#: its ``cluster_spec`` lacks ``topology_kind``/``fat_tree_k``/
#: ``spine_count`` and there is no ``routing_impl``; readers fall back
#: to the tree defaults via
#: :func:`~repro.cluster.topology.spec_from_mapping`.  Version 2 records
#: the full spec of any fabric plus the routing policy.
TRACE_META_VERSION = 2


def trace_meta(config: SimulationConfig) -> dict:
    """The provenance block stored in a recorded trace's manifest."""
    from ..experiments.cache import config_fingerprint

    return {
        "kind": "socket-events",
        "meta_version": TRACE_META_VERSION,
        "seed": config.seed,
        "duration": config.duration,
        "transport_impl": config.transport_impl,
        "routing_impl": config.routing_impl,
        "topology_kind": config.cluster.topology_kind,
        "day_length": config.workload.day_length,
        "cluster_spec": asdict(config.cluster),
        "clock_skew_max": config.collector.clock_skew_max,
        "congestion_threshold": config.congestion_threshold,
        "config_fingerprint": config_fingerprint(config),
    }


def record_trace(
    config: SimulationConfig,
    path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    flush_interval: float = DEFAULT_FLUSH_INTERVAL,
    telemetry: Telemetry | None = None,
    overwrite: bool = False,
    heartbeat=None,
    heartbeat_interval: float | None = None,
) -> RecordResult:
    """Simulate ``config`` while streaming its socket events to ``path``.

    The streamed run is bit-identical to an unstreamed one (the flush
    rides the engine's batch hook and never schedules events), and two
    recordings of the same config produce identical chunk content hashes.
    """
    simulator = Simulator(config, telemetry=telemetry)
    writer = TraceWriter(
        path,
        chunk_size=chunk_size,
        meta=trace_meta(config),
        telemetry=telemetry,
        overwrite=overwrite,
    )
    simulator.attach_event_stream(writer, flush_interval=flush_interval)
    if heartbeat is not None:
        interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else config.duration / 5.0
        )
        simulator.attach_heartbeat(interval, heartbeat)
    result = simulator.run()
    loads = result.link_loads
    observed = np.array(
        [link.link_id for link in result.topology.inter_switch_links()],
        dtype=np.int64,
    )
    writer.set_linkloads(
        loads.byte_matrix(), loads.capacities, loads.bin_width, observed,
        queue_depth=loads.queue_depth_matrix(),
    )
    manifest = writer.close()
    return RecordResult(path=str(writer.path), manifest=manifest, result=result)
