"""Append-only writer for ``.reprotrace`` directories.

``TraceWriter`` buffers incoming event columns and spills a compressed
npz chunk every ``chunk_size`` rows, so the simulator can stream an
arbitrarily long campaign to disk under constant memory.  It satisfies
the ``append_columns`` sink protocol of
:meth:`~repro.simulation.simulator.Simulator.attach_event_stream`.

Telemetry: one span per chunk (``trace.write_chunk``) and the counters
``trace.chunks_written`` / ``trace.rows_written`` / ``trace.bytes_written``.
"""

from __future__ import annotations

import pathlib
import shutil

import numpy as np

from ..instrumentation.events import SocketEventLog
from ..telemetry import NULL_TELEMETRY, Telemetry
from .format import (
    DEFAULT_CHUNK_SIZE,
    LINKLOADS_NAME,
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    chunk_file_name,
    content_hash,
    write_manifest,
)

__all__ = ["TraceWriter"]


class TraceWriter:
    """Stream time-sorted socket-event columns into a chunked trace.

    Append batches with :meth:`append_columns` (or a whole finalized log
    with :meth:`append_log`); batches must arrive in time order, which
    the simulator's watermark flushing guarantees.  :meth:`close` spills
    the final partial chunk and writes the manifest — a trace directory
    without a manifest is unreadable, so an interrupted recording is
    never mistaken for a complete one.
    """

    def __init__(
        self,
        path,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        meta: dict | None = None,
        telemetry: Telemetry | None = None,
        overwrite: bool = False,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.path = pathlib.Path(path)
        self.chunk_size = int(chunk_size)
        self.meta = dict(meta) if meta else {}
        self.telemetry = telemetry or NULL_TELEMETRY
        self._columns = SocketEventLog.column_spec()
        self._names = [name for name, _ in self._columns]
        if self.path.exists():
            if not overwrite:
                raise FileExistsError(f"trace path already exists: {self.path}")
            shutil.rmtree(self.path)
        self.path.mkdir(parents=True)
        self._buffers: dict[str, list[np.ndarray]] = {n: [] for n in self._names}
        self._buffered_rows = 0
        self._chunks: list[dict] = []
        self._linkloads: dict | None = None
        self.total_rows = 0
        self._closed = False
        self._chunk_counter = self.telemetry.counter("trace.chunks_written")
        self._row_counter = self.telemetry.counter("trace.rows_written")
        self._byte_counter = self.telemetry.counter("trace.bytes_written")

    # ------------------------------------------------------------ appending

    def append_columns(self, columns: dict[str, np.ndarray]) -> None:
        """Append one batch of time-sorted event columns."""
        if self._closed:
            raise RuntimeError("cannot append to a closed trace writer")
        if set(columns) != set(self._names):
            missing = sorted(set(self._names) - set(columns))
            extra = sorted(set(columns) - set(self._names))
            raise ValueError(f"column mismatch: missing {missing}, extra {extra}")
        arrays = {
            name: np.asarray(columns[name], dtype=dtype)
            for name, dtype in self._columns
        }
        sizes = {a.size for a in arrays.values()}
        if len(sizes) > 1:
            raise ValueError(f"columns have unequal lengths: {sorted(sizes)}")
        rows = arrays[self._names[0]].size
        if rows == 0:
            return
        for name in self._names:
            self._buffers[name].append(arrays[name])
        self._buffered_rows += rows
        while self._buffered_rows >= self.chunk_size:
            self._write_chunk(self._take(self.chunk_size))

    def append_log(self, log: SocketEventLog) -> None:
        """Append a whole finalized log (batched through the chunker)."""
        self.append_columns(log.to_columns())

    def _take(self, rows: int) -> dict[str, np.ndarray]:
        taken: dict[str, np.ndarray] = {}
        for name in self._names:
            parts = self._buffers[name]
            merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
            taken[name] = merged[:rows]
            remainder = merged[rows:]
            self._buffers[name] = [remainder] if remainder.size else []
        self._buffered_rows -= rows
        return taken

    def _write_chunk(self, columns: dict[str, np.ndarray]) -> None:
        index = len(self._chunks)
        file_name = chunk_file_name(index)
        times = columns["timestamp"]
        with self.telemetry.span("trace.write_chunk", index=index, rows=times.size):
            np.savez_compressed(self.path / file_name, **columns)
        entry = {
            "file": file_name,
            "rows": int(times.size),
            "t_min": float(times[0]),
            "t_max": float(times[-1]),
            "sha256": content_hash(columns, self._names),
        }
        self._chunks.append(entry)
        self.total_rows += entry["rows"]
        self._chunk_counter.inc()
        self._row_counter.inc(entry["rows"])
        self._byte_counter.inc(
            int(sum(c.nbytes for c in columns.values()))
        )

    # ------------------------------------------------------------ linkloads

    def set_linkloads(
        self,
        byte_matrix: np.ndarray,
        capacities: np.ndarray,
        bin_width: float,
        observed_links: np.ndarray,
        queue_depth: np.ndarray | None = None,
    ) -> None:
        """Attach the campaign's SNMP-grade link byte counters.

        Stored whole (a link-loads matrix is tiny next to the events);
        the congestion analyses read it back through
        :class:`~repro.trace.reader.TraceLinkLoads`.  ``queue_depth``
        (mean queue occupancy in bytes, same shape as ``byte_matrix``)
        rides along when a queued transport produced one.
        """
        if self._closed:
            raise RuntimeError("cannot attach linkloads to a closed trace writer")
        self._linkloads = {
            "bytes": np.asarray(byte_matrix, dtype=float),
            "capacities": np.asarray(capacities, dtype=float),
            "bin_width": np.float64(bin_width),
            "observed_links": np.asarray(observed_links, dtype=np.int64),
        }
        if queue_depth is not None:
            self._linkloads["queue_depth"] = np.asarray(queue_depth, dtype=float)

    # -------------------------------------------------------------- closing

    def close(self) -> dict:
        """Spill the final chunk, write the manifest, return it."""
        if self._closed:
            raise RuntimeError("trace writer already closed")
        if self._buffered_rows:
            self._write_chunk(self._take(self._buffered_rows))
        manifest = {
            "format": TRACE_FORMAT,
            "schema_version": TRACE_SCHEMA_VERSION,
            "chunk_size": self.chunk_size,
            "columns": [[name, np.dtype(dtype).name] for name, dtype in self._columns],
            "chunks": self._chunks,
            "total_rows": self.total_rows,
            "time_span": (
                [self._chunks[0]["t_min"], self._chunks[-1]["t_max"]]
                if self._chunks
                else None
            ),
            "meta": self.meta,
        }
        if self._linkloads is not None:
            arrays = self._linkloads
            np.savez_compressed(self.path / LINKLOADS_NAME, **arrays)
            hashed = ["bytes", "capacities", "bin_width", "observed_links"]
            if "queue_depth" in arrays:
                hashed.append("queue_depth")
            manifest["linkloads"] = {
                "file": LINKLOADS_NAME,
                "num_links": int(arrays["bytes"].shape[0]),
                "num_bins": int(arrays["bytes"].shape[1]),
                "bin_width": float(arrays["bin_width"]),
                "has_queue_depth": "queue_depth" in arrays,
                "sha256": content_hash(arrays, hashed),
            }
        write_manifest(self.path, manifest)
        self._closed = True
        return manifest

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Only a clean exit gets a manifest; a failed recording leaves an
        # unreadable directory rather than a plausible-looking trace.
        if exc_type is None and not self._closed:
            self.close()
