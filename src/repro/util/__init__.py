"""Shared utilities: units, deterministic RNG streams, statistics, binning."""

from .randomness import RandomSource, derive_seed
from .stats import (
    Ecdf,
    LogHistogram,
    ecdf,
    fraction_at_or_below,
    log_histogram,
    logarithmic_fit,
    pearson_correlation,
    percentile,
    weighted_ecdf,
)
from .timeseries import BinAccumulator, split_interval_over_bins

__all__ = [
    "RandomSource",
    "derive_seed",
    "Ecdf",
    "LogHistogram",
    "ecdf",
    "weighted_ecdf",
    "percentile",
    "fraction_at_or_below",
    "log_histogram",
    "pearson_correlation",
    "logarithmic_fit",
    "BinAccumulator",
    "split_interval_over_bins",
]
