"""Shared utilities: units, deterministic RNG streams, statistics, binning.

The small dependencies every layer shares:
:mod:`~repro.util.randomness` derives named, independent RNG streams
from one campaign seed so adding a consumer never perturbs existing
ones (the root of the repo's bit-reproducibility guarantee);
:mod:`~repro.util.timeseries` integrates piecewise-constant rates into
aligned time bins (the transport hot path writes through it);
:mod:`~repro.util.stats` holds the ECDF and log-histogram machinery the
figure experiments plot; :mod:`~repro.util.units` the byte/rate
formatting; :mod:`~repro.util.ascii` the terminal table and chart
primitives under :mod:`repro.viz`.
"""

from .randomness import RandomSource, derive_seed
from .stats import (
    Ecdf,
    LogHistogram,
    ecdf,
    fraction_at_or_below,
    log_histogram,
    logarithmic_fit,
    pearson_correlation,
    percentile,
    weighted_ecdf,
)
from .timeseries import BinAccumulator, split_interval_over_bins

__all__ = [
    "RandomSource",
    "derive_seed",
    "Ecdf",
    "LogHistogram",
    "ecdf",
    "weighted_ecdf",
    "percentile",
    "fraction_at_or_below",
    "log_histogram",
    "pearson_correlation",
    "logarithmic_fit",
    "BinAccumulator",
    "split_interval_over_bins",
]
