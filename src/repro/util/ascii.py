"""ASCII rendering of the paper's figures.

The reproduction environment has no plotting stack, so examples and the
benchmark harness render heatmaps, CDFs and bar charts as text.  These
renderers are intentionally simple: fixed-size character grids with density
ramps, adequate for eyeballing the work-seeks-bandwidth diagonal or a CDF
knee in a terminal.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from .stats import Ecdf

__all__ = ["render_heatmap", "render_cdf", "render_bars", "render_series"]

#: Character ramp from empty to dense.
_RAMP = " .:-=+*#%@"


def _normalise(matrix: np.ndarray) -> np.ndarray:
    finite = matrix[np.isfinite(matrix)]
    if finite.size == 0:
        return np.zeros_like(matrix)
    low = float(finite.min())
    high = float(finite.max())
    if high <= low:
        return np.where(np.isfinite(matrix), 0.5, 0.0)
    scaled = (matrix - low) / (high - low)
    return np.where(np.isfinite(matrix), np.clip(scaled, 0.0, 1.0), 0.0)


def render_heatmap(
    matrix: np.ndarray,
    max_width: int = 72,
    max_height: int = 36,
    title: str = "",
) -> str:
    """Render a 2-D array as an ASCII density plot (Fig 2 style).

    Large matrices are down-sampled by block averaging.  NaN / -inf cells
    (e.g. log of zero traffic) render as blank space.
    """
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2:
        raise ValueError("heatmap input must be 2-D")
    rows, cols = data.shape
    row_step = max(1, int(np.ceil(rows / max_height)))
    col_step = max(1, int(np.ceil(cols / max_width)))
    if row_step > 1 or col_step > 1:
        trimmed_rows = (rows // row_step) * row_step
        trimmed_cols = (cols // col_step) * col_step
        blocks = data[:trimmed_rows, :trimmed_cols].reshape(
            trimmed_rows // row_step, row_step, trimmed_cols // col_step, col_step
        )
        with warnings.catch_warnings():
            # All-NaN blocks (no traffic anywhere in the block) are fine;
            # they render as blank cells.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            data = np.nanmean(np.nanmean(blocks, axis=3), axis=1)
    levels = _normalise(data)
    lines = []
    if title:
        lines.append(title)
    border = "+" + "-" * levels.shape[1] + "+"
    lines.append(border)
    for row in levels:
        chars = "".join(_RAMP[int(v * (len(_RAMP) - 1))] for v in row)
        lines.append("|" + chars + "|")
    lines.append(border)
    return "\n".join(lines)


def render_cdf(
    curves: dict[str, Ecdf],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Render one or more ECDFs on a shared axis.

    Each curve gets a distinct marker character; a legend line maps markers
    to curve names.
    """
    markers = "ox+*#@%&"
    populated = {name: c for name, c in curves.items() if c.n > 0}
    if not populated:
        return (title + "\n" if title else "") + "(no data)"
    all_values = np.concatenate([c.values for c in populated.values()])
    if log_x:
        all_values = all_values[all_values > 0]
        if all_values.size == 0:
            return (title + "\n" if title else "") + "(no positive data for log axis)"
        x_low, x_high = np.log10(all_values.min()), np.log10(all_values.max())
    else:
        x_low, x_high = float(all_values.min()), float(all_values.max())
    if x_high <= x_low:
        x_high = x_low + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, curve) in enumerate(populated.items()):
        marker = markers[index % len(markers)]
        xs = np.linspace(x_low, x_high, width)
        query = 10**xs if log_x else xs
        ys = curve.evaluate(query)
        for col, y in enumerate(ys):
            row = height - 1 - int(round(y * (height - 1)))
            if grid[row][col] == " ":
                grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_label = 1.0 - row_index / (height - 1)
        lines.append(f"{y_label:4.2f} |" + "".join(row))
    axis_kind = "log10(x)" if log_x else "x"
    lines.append("     +" + "-" * width)
    lines.append(f"      {axis_kind}: {x_low:.3g} .. {x_high:.3g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(populated)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str = "",
) -> str:
    """Render a labelled horizontal bar chart (Fig 8 style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    data = np.asarray(values, dtype=float)
    biggest = max(abs(float(data.max())), abs(float(data.min())), 1e-12)
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, data):
        bar_len = int(round(abs(value) / biggest * width))
        bar = ("#" if value >= 0 else "-") * bar_len
        lines.append(f"{label:>{label_width}} | {bar} {value:.4g}")
    return "\n".join(lines)


def render_series(
    values: Sequence[float],
    width: int = 72,
    height: int = 12,
    title: str = "",
) -> str:
    """Render a 1-D series as a sparkline-style plot (Fig 10 top style)."""
    data = np.asarray(values, dtype=float)
    lines = [title] if title else []
    if data.size == 0:
        lines.append("(no data)")
        return "\n".join(lines)
    if data.size > width:
        step = int(np.ceil(data.size / width))
        trimmed = data[: (data.size // step) * step]
        data = trimmed.reshape(-1, step).mean(axis=1)
    low, high = float(data.min()), float(data.max())
    span = (high - low) or 1.0
    grid = [[" "] * data.size for _ in range(height)]
    for col, value in enumerate(data):
        row = height - 1 - int(round((value - low) / span * (height - 1)))
        grid[row][col] = "*"
    for row_index, row in enumerate(grid):
        level = high - span * row_index / (height - 1)
        lines.append(f"{level:10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * data.size)
    return "\n".join(lines)
