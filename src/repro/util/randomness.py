"""Deterministic random-stream management.

Every stochastic component of the simulator draws from its own
``numpy.random.Generator`` derived from a single experiment seed.  Deriving
named child streams (rather than sharing one generator) keeps components
decoupled: adding draws to the scheduler does not perturb the workload
generator, so experiment configurations remain reproducible as the code
evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomSource", "derive_seed"]


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a stable 63-bit child seed from a root seed and a name path.

    The derivation hashes the textual path so that child seeds do not
    collide for distinct names and do not depend on registration order.
    """
    text = f"{root_seed}:" + "/".join(names)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RandomSource:
    """A tree of named, independently seeded random generators.

    >>> rng = RandomSource(7)
    >>> a = rng.stream("scheduler")
    >>> b = rng.stream("workload", "arrivals")
    >>> a is rng.stream("scheduler")          # streams are cached
    True

    Streams with different names are statistically independent; the same
    (seed, path) pair always produces the same stream.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: dict[tuple[str, ...], np.random.Generator] = {}

    def stream(self, *names: str) -> np.random.Generator:
        """Return the cached generator for the given name path."""
        if not names:
            raise ValueError("at least one stream name is required")
        key = tuple(names)
        generator = self._streams.get(key)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.seed, *names))
            self._streams[key] = generator
        return generator

    def child(self, *names: str) -> "RandomSource":
        """Return a new :class:`RandomSource` rooted under ``names``.

        Useful for handing a component its own namespace so its internal
        stream names cannot collide with siblings.
        """
        return RandomSource(derive_seed(self.seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed}, streams={len(self._streams)})"
