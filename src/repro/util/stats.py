"""Small statistics toolkit used by the analysis pipeline.

The paper reports empirical CDFs, percentile ranks, byte-weighted
distributions and log-scale histograms.  This module implements those
primitives once so every figure reproduction shares the same definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Ecdf",
    "ecdf",
    "weighted_ecdf",
    "percentile",
    "fraction_at_or_below",
    "log_histogram",
    "LogHistogram",
    "pearson_correlation",
    "logarithmic_fit",
]


@dataclass(frozen=True)
class Ecdf:
    """An empirical cumulative distribution function.

    ``values`` are sorted sample points and ``probabilities`` the cumulative
    probability at each point (right-continuous step function).  For a
    weighted ECDF the probabilities reflect cumulative weight fractions.
    """

    values: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.probabilities.shape:
            raise ValueError("values and probabilities must have equal shape")

    @property
    def n(self) -> int:
        """Number of distinct sample points."""
        return int(self.values.size)

    def evaluate(self, points: Iterable[float] | float) -> np.ndarray:
        """Return ``P(X <= x)`` for each query point ``x``."""
        points_arr = np.atleast_1d(np.asarray(points, dtype=float))
        if self.n == 0:
            return np.zeros_like(points_arr)
        indices = np.searchsorted(self.values, points_arr, side="right")
        cdf = np.concatenate(([0.0], self.probabilities))
        return cdf[indices]

    def quantile(self, q: float | Iterable[float]) -> np.ndarray:
        """Return the smallest value whose CDF is >= ``q`` (0 <= q <= 1)."""
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise ValueError("quantiles must lie in [0, 1]")
        if self.n == 0:
            raise ValueError("cannot take quantile of an empty ECDF")
        indices = np.searchsorted(self.probabilities, q_arr, side="left")
        indices = np.minimum(indices, self.n - 1)
        return self.values[indices]

    def median(self) -> float:
        """Return the distribution median."""
        return float(self.quantile(0.5)[0])


def ecdf(samples: Iterable[float]) -> Ecdf:
    """Build an unweighted empirical CDF from samples.

    Duplicate sample values are merged into a single step.
    """
    data = np.sort(np.asarray(list(samples), dtype=float))
    if data.size == 0:
        empty = np.empty(0, dtype=float)
        return Ecdf(values=empty, probabilities=empty.copy())
    values, counts = np.unique(data, return_counts=True)
    probabilities = np.cumsum(counts) / data.size
    return Ecdf(values=values, probabilities=probabilities)


def weighted_ecdf(samples: Iterable[float], weights: Iterable[float]) -> Ecdf:
    """Build a weight-fraction CDF (e.g. bytes carried by flows <= x).

    Weights must be non-negative and sum to a positive total.
    """
    values = np.asarray(list(samples), dtype=float)
    weight = np.asarray(list(weights), dtype=float)
    if values.shape != weight.shape:
        raise ValueError("samples and weights must have equal length")
    if np.any(weight < 0):
        raise ValueError("weights must be non-negative")
    total = weight.sum()
    if values.size == 0 or total <= 0:
        empty = np.empty(0, dtype=float)
        return Ecdf(values=empty, probabilities=empty.copy())
    order = np.argsort(values, kind="stable")
    values = values[order]
    weight = weight[order]
    unique_values, start_indices = np.unique(values, return_index=True)
    cumulative = np.cumsum(weight)
    # Cumulative weight at the *last* occurrence of each unique value.
    end_indices = np.append(start_indices[1:], values.size) - 1
    probabilities = cumulative[end_indices] / total
    return Ecdf(values=unique_values, probabilities=probabilities)


def percentile(samples: Sequence[float] | np.ndarray, q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100])."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot take percentile of empty data")
    return float(np.percentile(data, q))


def fraction_at_or_below(samples: Sequence[float] | np.ndarray, threshold: float) -> float:
    """Return the fraction of samples that are <= ``threshold``."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        return 0.0
    return float(np.count_nonzero(data <= threshold) / data.size)


@dataclass(frozen=True)
class LogHistogram:
    """Histogram over the natural log of positive samples (Fig 3 style)."""

    bin_edges: np.ndarray
    counts: np.ndarray
    densities: np.ndarray = field(repr=False)

    @property
    def bin_centers(self) -> np.ndarray:
        """Mid-points of the log-space bins."""
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    @property
    def total(self) -> int:
        """Total number of samples across bins."""
        return int(self.counts.sum())


def log_histogram(
    samples: Iterable[float],
    bins: int = 30,
    log_range: tuple[float, float] | None = None,
) -> LogHistogram:
    """Histogram ``ln(samples)`` over positive samples.

    Non-positive samples are rejected because the paper's Fig 3 plots
    ``log_e(bytes)`` of *non-zero* TM entries only; callers filter zeros
    first and a zero slipping through indicates a bug.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size and np.any(data <= 0):
        raise ValueError("log_histogram requires strictly positive samples")
    logs = np.log(data) if data.size else data
    if log_range is None:
        if logs.size:
            log_range = (float(logs.min()), float(max(logs.max(), logs.min() + 1e-9)))
        else:
            log_range = (0.0, 1.0)
    counts, edges = np.histogram(logs, bins=bins, range=log_range)
    widths = np.diff(edges)
    total = counts.sum()
    densities = counts / (total * widths) if total else counts.astype(float)
    return LogHistogram(bin_edges=edges, counts=counts, densities=densities)


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size != y_arr.size:
        raise ValueError("sequences must have equal length")
    if x_arr.size < 2:
        raise ValueError("correlation requires at least two points")
    x_std = x_arr.std()
    y_std = y_arr.std()
    if x_std == 0 or y_std == 0:
        return 0.0
    return float(np.corrcoef(x_arr, y_arr)[0, 1])


def logarithmic_fit(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Fit ``y = a * ln(x) + b`` by least squares (Fig 13's best-fit curve).

    Returns the ``(a, b)`` coefficients.  All ``x`` must be positive.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size != y_arr.size:
        raise ValueError("sequences must have equal length")
    if x_arr.size < 2:
        raise ValueError("fit requires at least two points")
    if np.any(x_arr <= 0):
        raise ValueError("logarithmic fit requires positive x values")
    design = np.column_stack([np.log(x_arr), np.ones_like(x_arr)])
    (a, b), *_ = np.linalg.lstsq(design, y_arr, rcond=None)
    return float(a), float(b)
