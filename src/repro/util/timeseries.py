"""Fixed-width time-bin accumulation.

The transport engine produces piecewise-constant per-link rates between
simulation events.  Congestion analysis (paper §4.2) needs per-second byte
counts per link, and the SNMP substrate needs coarse poll-interval counts.
:class:`BinAccumulator` integrates ``rate * dt`` contributions into aligned
bins, splitting intervals that straddle bin boundaries exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinAccumulator", "split_interval_over_bins"]


def split_interval_over_bins(
    start: float, end: float, bin_width: float
) -> list[tuple[int, float]]:
    """Split ``[start, end)`` into per-bin overlap durations.

    Returns ``(bin_index, seconds_of_overlap)`` pairs in increasing bin
    order.  Bin ``i`` covers ``[i * bin_width, (i + 1) * bin_width)``.

    >>> split_interval_over_bins(0.5, 2.25, 1.0)
    [(0, 0.5), (1, 1.0), (2, 0.25)]
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if end < start:
        raise ValueError("interval end precedes start")
    if end == start:
        return []
    first_bin = int(np.floor(start / bin_width))
    last_bin = int(np.ceil(end / bin_width)) - 1
    pieces: list[tuple[int, float]] = []
    for index in range(first_bin, last_bin + 1):
        bin_start = index * bin_width
        bin_end = bin_start + bin_width
        overlap = min(end, bin_end) - max(start, bin_start)
        if overlap > 0:
            pieces.append((index, overlap))
    return pieces


class BinAccumulator:
    """Accumulate per-key quantities into fixed-width time bins.

    Keys are small non-negative integers (e.g. link ids); storage is a dense
    ``(num_keys, num_bins)`` float array grown on demand along the time axis.
    """

    def __init__(self, num_keys: int, bin_width: float, horizon: float = 0.0) -> None:
        if num_keys < 0:
            raise ValueError("num_keys must be non-negative")
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.num_keys = num_keys
        self.bin_width = float(bin_width)
        initial_bins = max(1, int(np.ceil(horizon / bin_width))) if horizon > 0 else 16
        self._data = np.zeros((num_keys, initial_bins), dtype=float)
        self._max_bin_touched = -1

    @property
    def num_bins(self) -> int:
        """Number of bins touched so far (trailing untouched bins excluded)."""
        return self._max_bin_touched + 1

    def _ensure_bins(self, bin_index: int) -> None:
        current = self._data.shape[1]
        if bin_index >= current:
            new_size = max(bin_index + 1, current * 2)
            grown = np.zeros((self.num_keys, new_size), dtype=float)
            grown[:, :current] = self._data
            self._data = grown
        if bin_index > self._max_bin_touched:
            self._max_bin_touched = bin_index

    def add_point(self, key: int, time: float, amount: float) -> None:
        """Add ``amount`` at an instant in time (e.g. a discrete event)."""
        if time < 0:
            raise ValueError("time must be non-negative")
        bin_index = int(np.floor(time / self.bin_width))
        self._ensure_bins(bin_index)
        self._data[key, bin_index] += amount

    def add_interval(self, key: int, start: float, end: float, rate: float) -> None:
        """Integrate a constant ``rate`` over ``[start, end)`` into bins."""
        if start < 0:
            raise ValueError("start must be non-negative")
        for bin_index, overlap in split_interval_over_bins(start, end, self.bin_width):
            self._ensure_bins(bin_index)
            self._data[key, bin_index] += rate * overlap

    def add_interval_bulk(
        self,
        keys: np.ndarray,
        rates: np.ndarray,
        start: float,
        end: float,
        unique_keys: bool = False,
    ) -> None:
        """Integrate many (key, rate) pairs over the same interval at once.

        ``unique_keys=True`` asserts that ``keys`` contains no duplicates,
        allowing fancy-indexed ``+=`` instead of the much slower
        ``np.add.at`` scatter (the transport sink's keys come from
        ``np.flatnonzero`` and are always unique).  The additions are the
        same either way, so the accumulated floats are bit-identical.
        """
        if keys.shape != rates.shape:
            raise ValueError("keys and rates must have equal shape")
        if keys.size == 0 or end <= start:
            return
        for bin_index, overlap in split_interval_over_bins(start, end, self.bin_width):
            self._ensure_bins(bin_index)
            if unique_keys:
                self._data[keys, bin_index] += rates * overlap
            else:
                np.add.at(self._data[:, bin_index], keys, rates * overlap)

    def totals(self) -> np.ndarray:
        """Per-key totals across all bins."""
        return self._data[:, : self.num_bins].sum(axis=1)

    def series(self, key: int) -> np.ndarray:
        """The binned series for a single key (copy)."""
        return self._data[key, : self.num_bins].copy()

    def matrix(self) -> np.ndarray:
        """The full ``(num_keys, num_bins)`` array (copy)."""
        return self._data[:, : self.num_bins].copy()

    def bin_times(self) -> np.ndarray:
        """Start times of every touched bin."""
        return np.arange(self.num_bins) * self.bin_width
