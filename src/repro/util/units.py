"""Units and formatting helpers shared across the library.

The simulator expresses time in seconds (floats), data in bytes (floats,
because fluid-model transfers integrate rates over time), and bandwidth in
bytes per second.  The constants here exist so that configuration code can
say ``1 * GBPS`` instead of sprinkling magic numbers around.
"""

from __future__ import annotations

#: Decimal data-size multipliers (bytes).  Networking gear is decimal.
KB = 1_000.0
MB = 1_000_000.0
GB = 1_000_000_000.0
TB = 1_000_000_000_000.0

#: Bandwidth multipliers, in *bytes per second*.  A "1 Gbps" NIC moves
#: 125 MB of payload per second at line rate.
KBPS = 1_000.0 / 8.0
MBPS = 1_000_000.0 / 8.0
GBPS = 1_000_000_000.0 / 8.0

#: Time multipliers (seconds).
MS = 1e-3
US = 1e-6
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8.0


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / 8.0


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a human-friendly decimal suffix.

    >>> format_bytes(1500)
    '1.50 KB'
    >>> format_bytes(3.2e9)
    '3.20 GB'
    """
    magnitude = abs(num_bytes)
    for limit, suffix in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if magnitude >= limit:
            return f"{num_bytes / limit:.2f} {suffix}"
    return f"{num_bytes:.0f} B"


#: Binary data-size multipliers (bytes).  Storage footprints are binary.
KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3
TIB = 1024.0**4


def format_bytes_binary(num_bytes: float) -> str:
    """Render a byte count with a binary (KiB/MiB/GiB) suffix.

    Use this for on-disk footprints (caches, traces), where sizes are
    compared against filesystem tools that report powers of 1024;
    :func:`format_bytes` stays decimal for network payload sizes.

    >>> format_bytes_binary(1536)
    '1.50 KiB'
    >>> format_bytes_binary(3 * 1024**3)
    '3.00 GiB'
    """
    magnitude = abs(num_bytes)
    for limit, suffix in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if magnitude >= limit:
            return f"{num_bytes / limit:.2f} {suffix}"
    return f"{num_bytes:.0f} B"


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth (bytes/s) in bit-rate units.

    >>> format_rate(125e6)
    '1.00 Gbps'
    """
    bits = bytes_to_bits(bytes_per_second)
    for limit, suffix in ((1e9, "Gbps"), (1e6, "Mbps"), (1e3, "Kbps")):
        if abs(bits) >= limit:
            return f"{bits / limit:.2f} {suffix}"
    return f"{bits:.0f} bps"


def format_duration(seconds: float) -> str:
    """Render a duration compactly.

    >>> format_duration(0.002)
    '2.0 ms'
    >>> format_duration(3700)
    '1.03 h'
    """
    magnitude = abs(seconds)
    if magnitude >= HOUR:
        return f"{seconds / HOUR:.2f} h"
    if magnitude >= MINUTE:
        return f"{seconds / MINUTE:.2f} min"
    if magnitude >= 1.0:
        return f"{seconds:.2f} s"
    if magnitude >= MS:
        return f"{seconds / MS:.1f} ms"
    return f"{seconds / US:.1f} us"
