"""Cross-layer invariant validation.

The pipeline derives one campaign four ways — in-memory, streaming,
trace-backed, campaign-cached — and this package makes their agreement a
machine-checked invariant instead of an incidental test assertion.  It
ships a registry of named checkers (``repro validate --list`` prints
them), a :class:`ValidationContext` façade over any artefact, and an
inline mode the simulator samples mid-run
(``SimulationConfig.validate_every_n_batches``).

Typical use::

    from repro.validate import validate
    report = validate("runs/smoke.reprotrace")
    report.raise_if_violations()
"""

from __future__ import annotations

from .context import ValidationContext
from .registry import (
    CheckerSpec,
    checker,
    checker_names,
    checker_specs,
    get_checker,
    run_checkers,
)
from .violations import (
    CheckerResult,
    TraceCorruptionError,
    ValidationError,
    ValidationReport,
    Violation,
)

# Importing the module registers the built-in checkers.
from . import checkers as _builtin_checkers  # noqa: F401  (side effects)

__all__ = [
    "CheckerResult",
    "CheckerSpec",
    "TraceCorruptionError",
    "ValidationContext",
    "ValidationError",
    "ValidationReport",
    "Violation",
    "checker",
    "checker_names",
    "checker_specs",
    "get_checker",
    "run_checkers",
    "run_inline_checks",
    "validate",
]


def validate(
    source,
    names: list[str] | None = None,
    tags: tuple | None = None,
    telemetry=None,
) -> ValidationReport:
    """Run invariant checkers against any campaign artefact.

    ``source`` may be an :class:`~repro.experiments.common
    .ExperimentDataset`, a :class:`~repro.simulation.simulator
    .SimulationResult`, a live simulator, a
    :class:`~repro.trace.reader.TraceReader` or a trace path.
    """
    ctx = ValidationContext.coerce(source)
    return run_checkers(ctx, names=names, tags=tags, telemetry=telemetry)


def run_inline_checks(simulator, telemetry=None) -> ValidationReport:
    """Run the cheap ``inline``-tagged checkers against a live simulator.

    Called by the engine batch hook when
    ``SimulationConfig.validate_every_n_batches`` is set.
    """
    ctx = ValidationContext.from_simulator(simulator)
    return run_checkers(
        ctx, names=checker_names(tag="inline"), telemetry=telemetry
    )
