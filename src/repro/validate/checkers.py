"""Built-in invariant checkers.

Each checker guards one cross-layer agreement the paper's pipeline
depends on: bytes must be conserved from socket events through flows,
traffic matrices and link loads down to the tomography inputs (§3-§5 of
Kandula et al.), and every derived representation (streaming, trace,
dataset) must agree with the in-memory one it shadows.

Checkers are tolerant only where floating-point addition order can
differ between code paths; structural invariants (hashes, counts,
monotonicity, episode bounds) are exact.  Heavy imports (trace,
experiments) happen inside the checker bodies so this module can be
imported from anywhere without cycles.
"""

from __future__ import annotations

import numpy as np

from ..cluster.topology import NodeKind
from ..instrumentation.events import DIRECTION_RECV, DIRECTION_SEND
from .registry import checker, make_violation
from .violations import TraceCorruptionError, Violation

#: Relative tolerance for sums whose addition order differs per path.
_RTOL = 1e-9
#: Absolute slack in bytes for near-zero comparisons.
_ATOL = 1.0


def _close(a: float, b: float) -> bool:
    return bool(np.isclose(a, b, rtol=_RTOL, atol=_ATOL))


def _kept_event_bytes(ctx) -> tuple[np.ndarray, np.ndarray]:
    """(timestamps, bytes) of events under the TM keep rule.

    Send-side events count; receive-side events count only when the
    source is external (outside the instrumented set) — the exact rule
    :func:`~repro.core.traffic_matrix.tm_series_from_events` and the flow
    reconstruction's send-side preference both implement.
    """
    log = ctx.log
    direction = log.column("direction")
    src = log.column("src")
    external = np.fromiter(ctx.topology.external_hosts(), dtype=np.int64)
    is_external_src = np.isin(src, external)
    keep = (direction == DIRECTION_SEND) | is_external_src
    return log.column("timestamp")[keep], log.column("num_bytes")[keep]


# ----------------------------------------------------------------- events


@checker("events.sane", tags=("cheap", "events"), requires=("log",))
def check_events_sane(ctx) -> list[Violation]:
    """Event-log sanity: finite non-negative bytes, src != dst, bounds."""
    log = ctx.log
    violations: list[Violation] = []
    if len(log) == 0:
        return violations
    num_bytes = log.column("num_bytes")
    bad_bytes = int((~np.isfinite(num_bytes) | (num_bytes < 0)).sum())
    if bad_bytes:
        violations.append(make_violation(
            "events.sane", "events with negative or non-finite bytes",
            count=bad_bytes,
        ))
    self_talk = int((log.column("src") == log.column("dst")).sum())
    if self_talk:
        violations.append(make_violation(
            "events.sane",
            "events with src == dst (local transfers emit no socket events)",
            count=self_talk,
        ))
    direction = log.column("direction")
    bad_direction = int(
        ((direction != DIRECTION_SEND) & (direction != DIRECTION_RECV)).sum()
    )
    if bad_direction:
        violations.append(make_violation(
            "events.sane", "events with unknown direction flag",
            count=bad_direction,
        ))
    for port_column in ("src_port", "dst_port"):
        negative = int((log.column(port_column) < 0).sum())
        if negative:
            violations.append(make_violation(
                "events.sane", f"events with negative {port_column}",
                count=negative,
            ))
    times = log.column("timestamp")
    if not np.isfinite(times).all():
        violations.append(make_violation(
            "events.sane", "events with non-finite timestamps",
            count=int((~np.isfinite(times)).sum()),
        ))
    elif ctx.duration is not None:
        skew = ctx.clock_skew_max
        low, high = -skew - 1e-9, ctx.duration + skew + 1e-9
        out = int(((times < low) | (times > high)).sum())
        if out:
            violations.append(make_violation(
                "events.sane", "event timestamps outside run bounds",
                count=out, low=round(low, 6), high=round(high, 6),
                t_min=float(times.min()), t_max=float(times.max()),
            ))
    return violations


@checker("events.monotone", tags=("cheap", "events"), requires=("log",))
def check_events_monotone(ctx) -> list[Violation]:
    """Watermark monotonicity: the finalized log is time-sorted and trace
    chunks cover consecutive, non-overlapping time ranges."""
    violations: list[Violation] = []
    times = ctx.log.column("timestamp")
    if times.size and (np.diff(times) < 0).any():
        violations.append(make_violation(
            "events.monotone", "event timestamps are not non-decreasing",
            inversions=int((np.diff(times) < 0).sum()),
        ))
    if ctx.reader is not None:
        chunks = ctx.reader.chunks
        for index, entry in enumerate(chunks):
            if entry["rows"] and entry["t_min"] > entry["t_max"]:
                violations.append(make_violation(
                    "events.monotone", "chunk time range inverted",
                    chunk=entry["file"],
                ))
            if index and entry["t_min"] < chunks[index - 1]["t_max"]:
                violations.append(make_violation(
                    "events.monotone",
                    "chunk time ranges overlap (watermark violated)",
                    chunk=entry["file"],
                    t_min=entry["t_min"],
                    previous_t_max=chunks[index - 1]["t_max"],
                ))
    return violations


# ------------------------------------------------------ byte conservation


@checker(
    "bytes.conservation",
    tags=("bytes", "analysis"),
    requires=("log", "topology", "duration"),
)
def check_byte_conservation(ctx) -> list[Violation]:
    """Bytes agree across representations: kept events == flow table ==
    TM series, totals and per-window."""
    violations: list[Violation] = []
    times, kept = _kept_event_bytes(ctx)
    kept_total = float(kept.sum())
    flow_total = float(ctx.flows.num_bytes.sum()) if len(ctx.flows) else 0.0
    tm = ctx.tm
    tm_total = float(tm.matrices.sum())
    if not _close(flow_total, kept_total):
        violations.append(make_violation(
            "bytes.conservation", "flow bytes != kept event bytes",
            flow_total=flow_total, event_total=kept_total,
        ))
    if not _close(tm_total, kept_total):
        violations.append(make_violation(
            "bytes.conservation", "TM total != kept event bytes",
            tm_total=tm_total, event_total=kept_total,
        ))
    # Per-window: the TM's window totals must match an independent
    # binning of the kept events (same clip rule as the TM builder).
    window_ids = np.clip(
        (times / tm.window).astype(int), 0, tm.num_windows - 1
    )
    binned = np.bincount(window_ids, weights=kept, minlength=tm.num_windows)
    per_window = tm.totals_per_window()
    mismatched = ~np.isclose(per_window, binned, rtol=_RTOL, atol=_ATOL)
    if mismatched.any():
        first = int(np.flatnonzero(mismatched)[0])
        violations.append(make_violation(
            "bytes.conservation", "per-window TM totals != binned event bytes",
            windows=int(mismatched.sum()), first_window=first,
            tm_bytes=float(per_window[first]), event_bytes=float(binned[first]),
        ))
    return violations


@checker(
    "bytes.link_conservation",
    tags=("bytes", "linkloads"),
    requires=("linkloads", "topology"),
)
def check_link_conservation(ctx) -> list[Violation]:
    """Switches neither source nor sink traffic: per time bin, bytes into
    every ToR/Agg/Core node equal bytes out of it."""
    if ctx.transport_family == "queued":
        # Queued transports legitimately break per-bin switch flow
        # conservation: bytes resident in (or dropped at) a queue entered
        # the switch without leaving it.  Their accounting invariant is
        # transport.queue_conservation instead.
        return []
    violations: list[Violation] = []
    topology = ctx.topology
    byte_matrix = ctx.link_loads.byte_matrix()
    switch_kinds = (NodeKind.TOR, NodeKind.AGG, NodeKind.CORE)
    incoming: dict[int, list[int]] = {}
    outgoing: dict[int, list[int]] = {}
    for link in topology.links:
        if topology.node_kind(link.dst) in switch_kinds:
            incoming.setdefault(link.dst, []).append(link.link_id)
        if topology.node_kind(link.src) in switch_kinds:
            outgoing.setdefault(link.src, []).append(link.link_id)
    for node in sorted(incoming):
        in_series = byte_matrix[incoming[node]].sum(axis=0)
        out_series = byte_matrix[outgoing.get(node, [])].sum(axis=0)
        bad = ~np.isclose(in_series, out_series, rtol=1e-6, atol=_ATOL)
        if bad.any():
            first = int(np.flatnonzero(bad)[0])
            violations.append(make_violation(
                "bytes.link_conservation",
                "switch in-bytes != out-bytes",
                node=node, kind=topology.node_kind(node).name,
                bins=int(bad.sum()), first_bin=first,
                in_bytes=float(in_series[first]),
                out_bytes=float(out_series[first]),
            ))
    return violations


@checker(
    "bytes.linkloads_cover_events",
    tags=("bytes", "linkloads"),
    requires=("log", "linkloads", "topology"),
)
def check_linkloads_cover_events(ctx) -> list[Violation]:
    """Access links carry at least the bytes their server reported:
    socket events only exist for completed transfers, whose bytes the
    fluid integrator has fully accounted on every path link."""
    if ctx.transport_family == "queued":
        # Queued transports drop bytes at switch buffers, so access links
        # can legitimately carry less than the send side reported.
        return []
    violations: list[Violation] = []
    log = ctx.log
    if len(log) == 0:
        return violations
    topology = ctx.topology
    byte_matrix = ctx.link_loads.byte_matrix()
    link_totals = byte_matrix.sum(axis=1)
    direction = log.column("direction")
    num_bytes = log.column("num_bytes")
    for column, flag, label in (
        ("src", DIRECTION_SEND, "uplink"),
        ("dst", DIRECTION_RECV, "downlink"),
    ):
        servers = log.column(column)
        mask = direction == flag
        totals = np.bincount(
            servers[mask].astype(np.int64),
            weights=num_bytes[mask],
            minlength=topology.num_servers,
        )
        for server in np.flatnonzero(totals[: topology.num_servers]):
            tor = topology.tor_of_rack(topology.rack_of(int(server)))
            ends = (server, tor) if label == "uplink" else (tor, server)
            link = topology.link_between(*ends)
            carried = float(link_totals[link.link_id])
            reported = float(totals[server])
            if carried + 1e-6 * reported + _ATOL < reported:
                violations.append(make_violation(
                    "bytes.linkloads_cover_events",
                    f"server {label} carried fewer bytes than its events report",
                    server=int(server), link=link.link_id,
                    carried=carried, reported=reported,
                ))
    return violations


@checker("linkloads.sane", tags=("cheap", "linkloads"), requires=("linkloads",))
def check_linkloads_sane(ctx) -> list[Violation]:
    """Link byte bins are non-negative and never exceed capacity."""
    violations: list[Violation] = []
    loads = ctx.link_loads
    byte_matrix = loads.byte_matrix()
    negative = int((byte_matrix < 0).sum())
    if negative:
        violations.append(make_violation(
            "linkloads.sane", "negative link byte bins", count=negative,
        ))
    utilization = loads.utilization_matrix()
    over = utilization > 1.0 + 1e-6
    if over.any():
        worst = float(utilization.max())
        violations.append(make_violation(
            "linkloads.sane", "link utilisation exceeds capacity",
            bins=int(over.sum()), worst=worst,
        ))
    return violations


# ------------------------------------------------------------------ trace


@checker("trace.manifest", tags=("cheap", "trace"), requires=("trace",))
def check_trace_manifest(ctx) -> list[Violation]:
    """Manifest self-consistency: schema, row totals, files on disk."""
    from ..instrumentation.events import SocketEventLog

    violations: list[Violation] = []
    reader = ctx.reader
    manifest = reader.manifest
    expected = [name for name, _ in SocketEventLog.column_spec()]
    declared = [name for name, _ in manifest.get("columns", [])]
    if declared != expected:
        violations.append(make_violation(
            "trace.manifest", "column schema mismatch",
            declared=declared, expected=expected,
        ))
    rows = sum(int(entry["rows"]) for entry in reader.chunks)
    if rows != reader.total_rows:
        violations.append(make_violation(
            "trace.manifest", "per-chunk rows do not sum to total_rows",
            chunk_rows=rows, total_rows=reader.total_rows,
        ))
    for entry in reader.chunks:
        chunk_path = reader.path / entry["file"]
        if not chunk_path.is_file():
            violations.append(make_violation(
                "trace.manifest", "chunk file missing on disk",
                chunk=entry["file"],
            ))
    span = manifest.get("time_span")
    if reader.chunks and span:
        declared_span = (float(span[0]), float(span[1]))
        actual_span = (
            float(reader.chunks[0]["t_min"]),
            float(reader.chunks[-1]["t_max"]),
        )
        if declared_span != actual_span:
            violations.append(make_violation(
                "trace.manifest", "time_span disagrees with chunk ranges",
                declared=declared_span, from_chunks=actual_span,
            ))
    return violations


@checker("trace.chunk_hashes", tags=("trace",), requires=("trace",))
def check_trace_chunk_hashes(ctx) -> list[Violation]:
    """Every chunk re-hashes to its manifest digest and matches its
    declared row count and time range."""
    from ..trace.format import content_hash

    violations: list[Violation] = []
    reader = ctx.reader
    for index, entry in enumerate(reader.chunks):
        try:
            columns = reader.chunk_columns(index)
        except TraceCorruptionError as error:
            violations.append(make_violation(
                "trace.chunk_hashes", "chunk unreadable",
                chunk=entry["file"], error=str(error),
            ))
            continue
        digest = content_hash(columns, reader.column_names)
        if digest != entry["sha256"]:
            violations.append(make_violation(
                "trace.chunk_hashes", "chunk content hash mismatch",
                chunk=entry["file"],
                expected=entry["sha256"][:12], actual=digest[:12],
            ))
            continue
        rows = int(columns["timestamp"].size)
        if rows != int(entry["rows"]):
            violations.append(make_violation(
                "trace.chunk_hashes", "chunk row count mismatch",
                chunk=entry["file"], declared=int(entry["rows"]), actual=rows,
            ))
        if rows:
            t_min = float(columns["timestamp"].min())
            t_max = float(columns["timestamp"].max())
            if (t_min, t_max) != (float(entry["t_min"]), float(entry["t_max"])):
                violations.append(make_violation(
                    "trace.chunk_hashes", "chunk time range mismatch",
                    chunk=entry["file"],
                ))
    return violations


@checker("trace.sidecar", tags=("trace", "linkloads"), requires=("trace",))
def check_trace_sidecar(ctx) -> list[Violation]:
    """The linkloads sidecar exists when declared, hashes correctly and
    matches its declared shape."""
    from ..trace.format import LINKLOADS_NAME, content_hash

    violations: list[Violation] = []
    reader = ctx.reader
    entry = reader.manifest.get("linkloads")
    sidecar_path = reader.path / LINKLOADS_NAME
    if entry is None:
        if sidecar_path.is_file():
            violations.append(make_violation(
                "trace.sidecar", "sidecar file present but not in manifest",
                file=LINKLOADS_NAME,
            ))
        return violations
    if not sidecar_path.is_file():
        violations.append(make_violation(
            "trace.sidecar", "linkloads sidecar missing",
            file=entry["file"],
        ))
        return violations
    try:
        with np.load(sidecar_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as error:  # wraps zip/numpy internals uniformly
        violations.append(make_violation(
            "trace.sidecar", "sidecar unreadable",
            file=entry["file"], error=str(error),
        ))
        return violations
    hashed_names = ["bytes", "capacities", "bin_width", "observed_links"]
    if "queue_depth" in arrays:
        hashed_names.append("queue_depth")
    digest = content_hash(arrays, hashed_names)
    if digest != entry["sha256"]:
        violations.append(make_violation(
            "trace.sidecar", "sidecar content hash mismatch",
            expected=entry["sha256"][:12], actual=digest[:12],
        ))
    shape = arrays["bytes"].shape
    declared = (int(entry["num_links"]), int(entry["num_bins"]))
    if shape != declared:
        violations.append(make_violation(
            "trace.sidecar", "sidecar shape mismatch",
            declared=declared, actual=tuple(int(s) for s in shape),
        ))
    observed = arrays["observed_links"]
    if observed.size and (
        observed.min() < 0 or observed.max() >= arrays["bytes"].shape[0]
    ):
        violations.append(make_violation(
            "trace.sidecar", "observed link ids outside the byte matrix",
        ))
    return violations


@checker(
    "trace.roundtrip",
    tags=("trace", "analysis", "expensive"),
    requires=("trace", "topology", "duration", "linkloads"),
)
def check_trace_roundtrip(ctx) -> list[Violation]:
    """``dataset_from_trace`` equals the in-memory pipeline run over the
    fully-loaded log, and the column round-trip is lossless."""
    from ..experiments.common import dataset_from_trace
    from ..instrumentation.events import SocketEventLog
    from ..trace.analyze import _flow_tables_equal

    violations: list[Violation] = []
    log = ctx.log
    rebuilt = SocketEventLog.from_columns(log.to_columns())
    for name, _ in SocketEventLog.column_spec():
        if not np.array_equal(log.column(name), rebuilt.column(name)):
            violations.append(make_violation(
                "trace.roundtrip", "column round-trip changed data",
                column=name,
            ))
    dataset = dataset_from_trace(ctx.reader.path)
    if not _flow_tables_equal(dataset.flows, ctx.flows):
        violations.append(make_violation(
            "trace.roundtrip",
            "dataset_from_trace flows != in-memory reconstruction",
        ))
    if not (
        np.array_equal(dataset.tm10.matrices, ctx.tm.matrices)
        and np.array_equal(dataset.tm10.endpoint_ids, ctx.tm.endpoint_ids)
    ):
        violations.append(make_violation(
            "trace.roundtrip", "dataset_from_trace TM != in-memory TM",
        ))
    return violations


# --------------------------------------------------------------- analysis


@checker(
    "analysis.streaming_equal",
    tags=("analysis", "expensive"),
    requires=("log", "topology", "duration"),
)
def check_streaming_equal(ctx) -> list[Violation]:
    """Chunked streaming accumulation (update + merge) reproduces the
    in-memory flows, TM and congestion summary bit for bit."""
    from ..core.streaming import (
        StreamingCongestion,
        StreamingFlows,
        StreamingTrafficMatrix,
    )
    from ..instrumentation.events import SocketEventLog
    from ..trace.analyze import _flow_tables_equal

    violations: list[Violation] = []
    log = ctx.log
    columns = log.to_columns()
    n = len(log)
    # Four time-contiguous chunks, fanned over two accumulators that are
    # merged left-to-right — the exact shape `trace analyze --jobs` uses.
    bounds = [0, n // 4, n // 2, (3 * n) // 4, n]
    chunks = [
        SocketEventLog.from_columns(
            {name: column[bounds[k]:bounds[k + 1]]
             for name, column in columns.items()}
        )
        for k in range(4)
    ]
    topology = ctx.topology

    def fan(make):
        left, right = make(), make()
        for chunk in chunks[:2]:
            left.update(chunk)
        for chunk in chunks[2:]:
            right.update(chunk)
        return left.merge(right).finalize()

    tm = fan(lambda: StreamingTrafficMatrix(topology, ctx.window, ctx.duration))
    if not (
        np.array_equal(tm.matrices, ctx.tm.matrices)
        and np.array_equal(tm.endpoint_ids, ctx.tm.endpoint_ids)
    ):
        violations.append(make_violation(
            "analysis.streaming_equal", "streaming TM != in-memory TM",
        ))
    flows = fan(
        lambda: StreamingFlows(inactivity_timeout=ctx.inactivity_timeout)
    )
    if not _flow_tables_equal(flows, ctx.flows):
        violations.append(make_violation(
            "analysis.streaming_equal", "streaming flows != in-memory flows",
        ))
    if ctx.provides("linkloads"):
        loads = ctx.link_loads
        observed = ctx.observed_links
        utilization = loads.utilization_matrix()[observed]
        split = utilization.shape[1] // 2
        left = StreamingCongestion(
            num_links=observed.size, threshold=ctx.threshold,
            bin_width=loads.bin_width, link_ids=observed,
        ).update(utilization[:, :split])
        right = StreamingCongestion(
            num_links=observed.size, threshold=ctx.threshold,
            bin_width=loads.bin_width, link_ids=observed,
        ).update(utilization[:, split:], start_bin=split)
        streamed = left.merge(right).finalize()
        reference = ctx.congestion
        if not (
            streamed.episodes == reference.episodes
            and streamed.num_links == reference.num_links
            and streamed.longest_episode == reference.longest_episode
        ):
            violations.append(make_violation(
                "analysis.streaming_equal",
                "streaming congestion != in-memory congestion",
            ))
    return violations


@checker(
    "congestion.in_bounds",
    tags=("analysis", "linkloads"),
    requires=("linkloads", "duration"),
)
def check_congestion_in_bounds(ctx) -> list[Violation]:
    """Congestion episodes lie inside the run bounds, have positive
    duration and reference observed links only."""
    violations: list[Violation] = []
    summary = ctx.congestion
    observed = set(int(link) for link in ctx.observed_links)
    bin_width = ctx.link_loads.bin_width
    # The last bin may start before `duration` and extend past it.
    horizon = ctx.duration + bin_width + 1e-9
    for episode in summary.episodes:
        if episode.link_id not in observed:
            violations.append(make_violation(
                "congestion.in_bounds", "episode on an unobserved link",
                link=episode.link_id,
            ))
        if episode.duration <= 0:
            violations.append(make_violation(
                "congestion.in_bounds", "episode with non-positive duration",
                link=episode.link_id, start=episode.start,
            ))
        if episode.start < -1e-9 or episode.end > horizon:
            violations.append(make_violation(
                "congestion.in_bounds", "episode outside run bounds",
                link=episode.link_id,
                start=episode.start, end=episode.end,
                horizon=round(horizon, 3),
            ))
    return violations


# ------------------------------------------------------------- tomography


@checker(
    "tomography.link_consistency",
    tags=("tomography",),
    requires=("log", "topology", "duration"),
)
def check_tomography_link_consistency(ctx) -> list[Violation]:
    """The tomography inputs agree: routing server-level TM traffic over
    :class:`Router` paths yields the same observed-link counter vector as
    ``A @ x`` over the collapsed ToR TM."""
    from ..cluster.routing import Router, tor_routing_matrix
    from ..core.traffic_matrix import server_tm_to_tor_tm

    violations: list[Violation] = []
    topology = ctx.topology
    matrix, pairs, observed = tor_routing_matrix(topology)
    if not np.isin(matrix, (0.0, 1.0)).all():
        violations.append(make_violation(
            "tomography.link_consistency", "routing matrix is not 0/1",
        ))
    uncovered = int((matrix.sum(axis=0) == 0).sum())
    if uncovered:
        violations.append(make_violation(
            "tomography.link_consistency",
            "ToR pairs whose path crosses no observed link",
            pairs=uncovered,
        ))
    tm = ctx.tm
    total = tm.total()
    tor_tm = server_tm_to_tor_tm(total, topology, tm.endpoint_ids)
    x = np.array([tor_tm[i, j] for i, j in pairs])
    y_tor = matrix @ x
    row_of = {link_id: row for row, link_id in enumerate(observed)}
    router = Router(topology)
    y_server = np.zeros(len(observed))
    endpoint_ids = tm.endpoint_ids
    is_server = np.array([
        topology.node_kind(int(node)) == NodeKind.SERVER
        for node in endpoint_ids
    ])
    server_rows = np.flatnonzero(is_server)
    for a in server_rows:
        for b in server_rows:
            volume = total[a, b]
            if a == b or volume == 0.0:
                continue
            for link_id in router.path_links(
                int(endpoint_ids[a]), int(endpoint_ids[b])
            ):
                row = row_of.get(link_id)
                if row is not None:
                    y_server[row] += volume
    bad = ~np.isclose(y_server, y_tor, rtol=_RTOL, atol=_ATOL)
    if bad.any():
        first = int(np.flatnonzero(bad)[0])
        violations.append(make_violation(
            "tomography.link_consistency",
            "link counters from server routing != routing-matrix x ToR TM",
            links=int(bad.sum()), first_link=int(observed[first]),
            server_routed=float(y_server[first]), a_times_x=float(y_tor[first]),
        ))
    return violations


# ----------------------------------------------------------------- inline


@checker(
    "inline.engine_time",
    tags=("inline", "cheap"),
    requires=("simulator",),
)
def check_inline_engine_time(ctx) -> list[Violation]:
    """The live engine clock stays inside the campaign window."""
    simulator = ctx.simulator
    now = simulator.engine.now
    if not (0.0 <= now <= simulator.config.duration + 1e-9):
        return [make_violation(
            "inline.engine_time", "engine time outside the campaign window",
            now=now, duration=simulator.config.duration,
        )]
    return []


@checker(
    "inline.linkloads",
    tags=("inline", "cheap", "linkloads"),
    requires=("simulator",),
)
def check_inline_linkloads(ctx) -> list[Violation]:
    """Live link byte bins stay non-negative and within capacity."""
    return check_linkloads_sane(ctx)


@checker(
    "inline.transport",
    tags=("inline", "cheap"),
    requires=("simulator",),
)
def check_inline_transport(ctx) -> list[Violation]:
    """Active flow rates are finite and non-negative mid-run."""
    violations: list[Violation] = []
    transport = ctx.simulator.transport
    rates = transport.active_rates()
    if rates.size:
        bad = ~np.isfinite(rates) | (rates < 0)
        if bad.any():
            violations.append(make_violation(
                "inline.transport",
                "active flows with negative or non-finite rates",
                count=int(bad.sum()),
            ))
    start = transport.earliest_active_start()
    if start is not None and start > ctx.simulator.engine.now + 1e-9:
        violations.append(make_violation(
            "inline.transport", "active transfer starts in the future",
            start=start, now=ctx.simulator.engine.now,
        ))
    return violations


@checker(
    "transport.allocator_equivalence",
    tags=("inline", "cheap", "transport"),
    requires=("simulator",),
)
def check_allocator_equivalence(ctx) -> list[Violation]:
    """Both water-filling allocators agree bitwise on the live active set.

    This is the invariant that makes ``transport_impl`` a pure
    performance switch: the vectorized allocator must reproduce the
    reference loop's floats exactly, so reference and vectorized runs
    yield identical event logs.  Comparison is ``array_equal`` — any
    tolerance here would hide drift that compounds into divergent
    completion times.
    """
    from ..simulation.waterfill import (
        maxmin_rates_reference,
        maxmin_rates_vectorized,
    )

    transport = ctx.simulator.transport
    if getattr(transport, "family", "fluid") != "fluid":
        return []
    active_idx, paths, valid = transport._active_view()
    if active_idx.size == 0:
        return []
    reference = maxmin_rates_reference(
        paths, valid, transport.capacities, transport.num_links
    )
    vectorized = maxmin_rates_vectorized(
        paths, valid, transport.capacities, transport.num_links
    )
    if not np.array_equal(reference, vectorized):
        diverged = int((reference != vectorized).sum())
        worst = float(np.abs(reference - vectorized).max())
        return [make_violation(
            "transport.allocator_equivalence",
            "vectorized allocator diverged from the reference loop",
            flows=int(active_idx.size), diverged=diverged,
            max_abs_difference=worst,
        )]
    return []


@checker(
    "transport.incremental_equivalence",
    tags=("inline", "cheap", "transport"),
    requires=("simulator",),
)
def check_incremental_equivalence(ctx) -> list[Violation]:
    """The incremental allocator's live rates match a from-scratch solve
    within its documented tolerance.

    ``transport_impl="incremental"`` re-solves only the affected
    bottleneck subgraph per arrival/departure, so its rates are
    path-dependent and *not* bit-identical to the reference loop — the
    contract is agreement within
    :data:`~repro.simulation.waterfill.INCREMENTAL_RTOL` (relative to
    each flow's fair share, with an absolute floor for near-zero rates).
    The check also re-verifies the safety property the construction
    guarantees: no link is oversubscribed.  A no-op on every other
    ``transport_impl``.
    """
    from ..simulation.waterfill import INCREMENTAL_RTOL, maxmin_rates_reference

    transport = ctx.simulator.transport
    if transport._inc is None or transport.fairness != "maxmin":
        return []
    active_idx, paths, valid = transport._active_view()
    if active_idx.size == 0:
        return []
    violations: list[Violation] = []
    incremental = transport._inc.rates_by_slot[active_idx]
    reference = maxmin_rates_reference(
        paths, valid, transport.capacities, transport.num_links
    )
    scale = np.maximum(np.abs(reference), 1.0)
    relative = np.abs(incremental - reference) / scale
    if transport.rates_dirty:
        # Between the event and the next allocation pass the incremental
        # state is legitimately stale; only the oversubscription check
        # below is meaningful here.
        relative = np.zeros_like(relative)
    if (relative > INCREMENTAL_RTOL).any():
        worst = int(np.argmax(relative))
        violations.append(make_violation(
            "transport.incremental_equivalence",
            "incremental allocator outside tolerance of reference solve",
            flows=int(active_idx.size),
            diverged=int((relative > INCREMENTAL_RTOL).sum()),
            max_relative_difference=float(relative[worst]),
            rtol=INCREMENTAL_RTOL,
        ))
    link_rates = np.bincount(
        paths[valid],
        weights=np.repeat(incremental, valid.sum(axis=1)),
        minlength=transport.num_links,
    )
    over = link_rates > transport.capacities * (1.0 + 1e-9) + 1e-6
    if over.any():
        worst_link = int(np.argmax(link_rates / np.maximum(transport.capacities, 1.0)))
        violations.append(make_violation(
            "transport.incremental_equivalence",
            "incremental allocation oversubscribes a link",
            links=int(over.sum()),
            worst_link=worst_link,
            load=float(link_rates[worst_link]),
            capacity=float(transport.capacities[worst_link]),
        ))
    return violations


@checker(
    "transport.queue_conservation",
    tags=("cheap", "transport", "cc"),
)
def check_queue_conservation(ctx) -> list[Violation]:
    """Per-link queue byte ledgers balance: enqueued = dequeued + resident.

    The queued transports' analogue of ``bytes.link_conservation``: every
    byte that survived admission to a switch FIFO either left through the
    serializer or is still resident.  Tail-dropped bytes are accounted
    separately (they never enter ``enqueued``), so drops cannot hide an
    accounting leak.  Holds for both a live ``LinkQueues`` and an
    archived ``CCReport``; fluid runs have no queues and pass trivially.
    """
    cc = ctx.cc
    if cc is None:
        return []
    enqueued = np.asarray(cc.enqueued_bytes, dtype=np.float64)
    dequeued = np.asarray(cc.dequeued_bytes, dtype=np.float64)
    resident = np.asarray(cc.resident_bytes, dtype=np.float64)
    dropped = np.asarray(cc.dropped_bytes, dtype=np.float64)
    violations: list[Violation] = []
    negative = int(
        ((enqueued < 0) | (dequeued < 0) | (resident < 0) | (dropped < 0)).sum()
    )
    if negative:
        violations.append(make_violation(
            "transport.queue_conservation",
            "negative queue byte ledger entries",
            links=negative,
        ))
    balanced = np.isclose(
        enqueued, dequeued + resident, rtol=_RTOL, atol=_ATOL
    )
    if not balanced.all():
        residual = enqueued - (dequeued + resident)
        worst = int(np.argmax(np.abs(residual)))
        violations.append(make_violation(
            "transport.queue_conservation",
            "queue ledgers violate enqueued = dequeued + resident",
            links=int((~balanced).sum()),
            worst_link=worst,
            residual_bytes=float(residual[worst]),
        ))
    return violations


# ------------------------------------------------------ topology / routing


@checker(
    "topology.degree_conservation",
    tags=("cheap", "topology"),
    requires=("topology",),
)
def check_degree_conservation(ctx) -> list[Violation]:
    """The built fabric is structurally sound, whatever its kind.

    Link ids are dense and match their index, every directed link has a
    reverse twin of equal capacity (cables are duplex), per-node
    in-degree equals out-degree, and the cached ``capacities`` array
    agrees with the link list.  Holds for the tree and for every
    :mod:`~repro.cluster.fabrics` member.
    """
    topology = ctx.topology
    violations: list[Violation] = []
    links = topology.links
    in_degree = np.zeros(topology.num_nodes, dtype=np.int64)
    out_degree = np.zeros(topology.num_nodes, dtype=np.int64)
    reverse = {}
    for index, link in enumerate(links):
        if link.link_id != index:
            violations.append(make_violation(
                "topology.degree_conservation",
                "link id does not match its index",
                index=index, link_id=link.link_id,
            ))
        out_degree[link.src] += 1
        in_degree[link.dst] += 1
        reverse[(link.src, link.dst)] = link
    for link in links:
        twin = reverse.get((link.dst, link.src))
        if twin is None:
            violations.append(make_violation(
                "topology.degree_conservation",
                "directed link has no reverse twin",
                link_id=link.link_id, src=link.src, dst=link.dst,
            ))
        elif twin.capacity != link.capacity:
            violations.append(make_violation(
                "topology.degree_conservation",
                "duplex pair capacities differ",
                link_id=link.link_id, twin_id=twin.link_id,
            ))
    unbalanced = np.flatnonzero(in_degree != out_degree)
    if unbalanced.size:
        node = int(unbalanced[0])
        violations.append(make_violation(
            "topology.degree_conservation",
            "node in-degree != out-degree",
            nodes=int(unbalanced.size), first_node=node,
            in_degree=int(in_degree[node]), out_degree=int(out_degree[node]),
        ))
    capacities = np.array([link.capacity for link in links])
    if topology.capacities.shape != capacities.shape or not np.array_equal(
        topology.capacities, capacities
    ):
        violations.append(make_violation(
            "topology.degree_conservation",
            "cached capacities array disagrees with the link list",
        ))
    return violations


def _path_violations(topology, name: str, src: int, dst: int) -> list[Violation]:
    """Structural checks on one endpoint pair's equal-cost path set."""
    violations: list[Violation] = []
    paths = topology.equal_cost_node_paths(src, dst)
    if not paths:
        return [make_violation(name, "empty equal-cost set", src=src, dst=dst)]
    if len(set(paths)) != len(paths):
        violations.append(make_violation(
            name, "duplicate equal-cost paths", src=src, dst=dst,
        ))
    if len({len(path) for path in paths}) != 1:
        violations.append(make_violation(
            name, "equal-cost paths have unequal length", src=src, dst=dst,
        ))
    for path in paths:
        if path[0] != src or path[-1] != dst:
            violations.append(make_violation(
                name, "path endpoints do not match the pair",
                src=src, dst=dst, path=list(path),
            ))
        if len(set(path)) != len(path):
            violations.append(make_violation(
                name, "path visits a node twice (loop)",
                src=src, dst=dst, path=list(path),
            ))
        for a, b in zip(path[:-1], path[1:]):
            try:
                topology.link_between(a, b)
            except KeyError:
                violations.append(make_violation(
                    name, "path hop is not a direct link",
                    src=src, dst=dst, hop=(a, b),
                ))
    return violations


@checker(
    "routing.path_consistency",
    tags=("cheap", "routing", "topology"),
    requires=("topology",),
)
def check_path_consistency(ctx) -> list[Violation]:
    """Routing agrees with the fabric, single- and multi-path alike.

    Over a bounded deterministic endpoint sample: every equal-cost path
    is a loop-free walk over existing directed links connecting exactly
    the pair, all paths of a set share one length, ECMP/flowlet always
    choose from inside the set, and the canonical ``Router`` path is the
    set's first member.  The tomography A-matrix extends consistently to
    multi-path: the ``multipath=True`` variant of ``tor_routing_matrix``
    keeps entries in ``[0, 1]`` and each column sums to the mean number
    of observed links its pair's equal-cost paths cross.
    """
    from ..cluster.routing import (
        EcmpRouter,
        FlowletRouter,
        Router,
        tor_routing_matrix,
    )

    topology = ctx.topology
    name = "routing.path_consistency"
    violations: list[Violation] = []

    # One server per rack (up to 6 racks) plus up to 2 external hosts:
    # enough to cross every tier without quadratic blowup on big fabrics.
    sample = [
        topology.servers_in_rack(rack)[0]
        for rack in range(min(topology.num_racks, 6))
    ]
    sample.extend(list(topology.external_hosts())[:2])

    router = Router(topology)
    ecmp = EcmpRouter(topology, seed=1)
    flowlet = FlowletRouter(topology, seed=1)
    for src in sample:
        for dst in sample:
            if src == dst:
                continue
            violations.extend(_path_violations(topology, name, src, dst))
            choices = router.equal_cost_paths(src, dst)
            if router.path_links(src, dst) != choices[0]:
                violations.append(make_violation(
                    name, "canonical path is not the first equal-cost path",
                    src=src, dst=dst,
                ))
            for label in (0, 1, 2**32 + 7):
                if ecmp.path_for_flow(src, dst, key=label) not in choices:
                    violations.append(make_violation(
                        name, "ECMP chose a path outside the equal-cost set",
                        src=src, dst=dst, label=label,
                    ))
                if flowlet.path_for_flow(src, dst, key=label) not in choices:
                    violations.append(make_violation(
                        name, "flowlet chose a path outside the equal-cost set",
                        src=src, dst=dst, label=label,
                    ))

    if topology.num_racks <= 12:
        matrix, pairs, observed = tor_routing_matrix(topology, multipath=True)
        if matrix.size and (matrix.min() < 0.0 or matrix.max() > 1.0 + 1e-12):
            violations.append(make_violation(
                name, "multipath routing matrix entries outside [0, 1]",
            ))
        observed_set = set(observed)
        tor_router = Router(topology)
        for column, (i, j) in enumerate(pairs):
            paths = tor_router.equal_cost_paths(
                topology.tor_of_rack(i), topology.tor_of_rack(j)
            )
            expected = sum(
                sum(1 for link_id in path if link_id in observed_set)
                for path in paths
            ) / len(paths)
            if not _close(float(matrix[:, column].sum()), expected):
                violations.append(make_violation(
                    name,
                    "multipath A-matrix column sum != mean observed hops",
                    pair=(i, j), column_sum=float(matrix[:, column].sum()),
                    expected=expected,
                ))
    return violations
