"""The validation context: one façade over every representation we check.

The pipeline derives the same campaign from four code paths — in-memory
(:class:`~repro.experiments.common.ExperimentDataset`), streaming, trace
-backed and campaign-cached — and the invariant checkers must run over
any of them.  :class:`ValidationContext` normalises those sources behind
lazy, cached accessors (event log, flow table, TM series, link loads,
topology) and a ``provides()`` capability query the registry uses to
decide which checkers apply.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

__all__ = ["ValidationContext"]

_UNSET = object()


class ValidationContext:
    """Lazily-resolved view of one campaign's artefacts.

    Build one with :meth:`from_dataset`, :meth:`from_result`,
    :meth:`from_trace` or :meth:`from_simulator` — or :meth:`coerce`,
    which dispatches on the argument type.  Accessors cache: a checker
    asking for ``ctx.flows`` twice pays for reconstruction once.
    """

    def __init__(
        self,
        *,
        config=None,
        topology=None,
        log=None,
        reader=None,
        link_loads=None,
        observed_links=None,
        duration: float | None = None,
        flows=None,
        tm=None,
        simulator=None,
        window: float = 10.0,
        inactivity_timeout: float | None = None,
        threshold: float | None = None,
        clock_skew_max: float | None = None,
        cc=None,
    ) -> None:
        self.config = config
        self.reader = reader
        self.simulator = simulator
        self.window = window
        self._topology = topology
        self._log = log
        self._link_loads = link_loads
        self._observed_links = observed_links
        self._duration = duration
        self._flows = flows
        self._tm = tm
        self._inactivity_timeout = inactivity_timeout
        self._threshold = threshold
        self._clock_skew_max = clock_skew_max
        #: Congestion-control observables: a CCReport, a live LinkQueues
        #: (both expose the queue byte ledgers), or None for fluid runs.
        self._cc = cc
        self._congestion = _UNSET

    # ------------------------------------------------------------ builders

    @classmethod
    def coerce(cls, source: Any) -> "ValidationContext":
        """Build a context from whatever the caller has in hand."""
        from ..experiments.common import ExperimentDataset
        from ..simulation.simulator import SimulationResult, Simulator
        from ..trace.reader import TraceReader

        if isinstance(source, cls):
            return source
        if isinstance(source, ExperimentDataset):
            return cls.from_dataset(source)
        if isinstance(source, SimulationResult):
            return cls.from_result(source)
        if isinstance(source, Simulator):
            return cls.from_simulator(source)
        if isinstance(source, TraceReader):
            return cls.from_trace(source)
        if isinstance(source, (str, os.PathLike)):
            return cls.from_trace(TraceReader(source))
        raise TypeError(
            "cannot build a ValidationContext from "
            f"{type(source).__name__!r}; expected a dataset, simulation "
            "result, simulator, trace reader or trace path"
        )

    @classmethod
    def from_dataset(cls, dataset) -> "ValidationContext":
        """Context over a built :class:`ExperimentDataset`.

        A trace-backed dataset (built by ``dataset_from_trace``) carries
        an empty socket log; its trace path is re-opened so log-level
        checkers still apply.
        """
        from ..trace.reader import TraceReader

        result = dataset.result
        reader = None
        log = result.socket_log
        trace_path = dataset.extras.get("trace_path")
        if len(log) == 0 and trace_path:
            reader = TraceReader(trace_path)
            log = None
        return cls(
            config=dataset.config,
            topology=result.topology,
            log=log,
            reader=reader,
            link_loads=result.link_loads,
            observed_links=np.asarray(dataset.observed_links),
            duration=result.duration,
            flows=dataset.flows,
            tm=dataset.tm10,
            window=float(dataset.tm10.window),
            threshold=dataset.config.congestion_threshold,
            clock_skew_max=dataset.config.collector.clock_skew_max,
            cc=getattr(result, "cc", None),
        )

    @classmethod
    def from_result(cls, result) -> "ValidationContext":
        """Context over a raw :class:`SimulationResult`."""
        observed = np.array(
            [link.link_id for link in result.topology.inter_switch_links()],
            dtype=np.int64,
        )
        return cls(
            config=result.config,
            topology=result.topology,
            log=result.socket_log if len(result.socket_log) else None,
            link_loads=result.link_loads,
            observed_links=observed,
            duration=result.duration,
            threshold=result.config.congestion_threshold,
            clock_skew_max=result.config.collector.clock_skew_max,
            cc=getattr(result, "cc", None),
        )

    @classmethod
    def from_trace(cls, reader) -> "ValidationContext":
        """Context over a recorded ``.reprotrace`` directory."""
        meta = reader.meta
        duration = meta.get("duration")
        skew = meta.get("clock_skew_max")
        threshold = meta.get("congestion_threshold")
        return cls(
            reader=reader,
            duration=float(duration) if duration is not None else None,
            clock_skew_max=float(skew) if skew is not None else None,
            threshold=float(threshold) if threshold is not None else None,
        )

    @classmethod
    def from_simulator(cls, simulator) -> "ValidationContext":
        """Context over a *live* simulator (the inline validation hook)."""
        transport = simulator.transport
        queues = (
            transport.queues
            if getattr(transport, "family", "fluid") == "queued"
            else None
        )
        return cls(
            config=simulator.config,
            topology=simulator.topology,
            link_loads=simulator.link_loads,
            duration=simulator.config.duration,
            simulator=simulator,
            threshold=simulator.config.congestion_threshold,
            clock_skew_max=simulator.config.collector.clock_skew_max,
            cc=queues,
        )

    # -------------------------------------------------------- capabilities

    def provides(self, requirement: str) -> bool:
        """Whether this context can satisfy a checker requirement."""
        if requirement == "log":
            return self._log is not None or self.reader is not None
        if requirement == "trace":
            return self.reader is not None
        if requirement == "linkloads":
            return self._link_loads is not None or (
                self.reader is not None
                and self.reader.manifest.get("linkloads") is not None
            )
        if requirement == "topology":
            return (
                self._topology is not None
                or (
                    self.reader is not None
                    and self.reader.meta.get("cluster_spec") is not None
                )
            )
        if requirement == "duration":
            return self.duration is not None
        if requirement == "simulator":
            return self.simulator is not None
        if requirement == "cc":
            return self._cc is not None
        raise ValueError(f"unknown checker requirement {requirement!r}")

    # ----------------------------------------------------------- accessors

    @property
    def topology(self):
        """The cluster topology (rebuilt from trace meta when needed)."""
        if self._topology is None:
            from ..cluster.topology import ClusterTopology, spec_from_mapping

            spec = self.reader.meta.get("cluster_spec") if self.reader else None
            if spec is None:
                raise ValueError("context has no topology and no cluster_spec")
            # Version-tolerant: seed-era specs rebuild the tree from
            # defaults, unknown future keys are dropped.
            self._topology = ClusterTopology(spec_from_mapping(spec))
        return self._topology

    @property
    def log(self):
        """The finalized event log (trace contexts load it in full)."""
        if self._log is None:
            if self.reader is None:
                raise ValueError("context has no event log")
            self._log = self.reader.read_all()
        return self._log

    @property
    def link_loads(self):
        """Link byte counters (tracker or trace sidecar)."""
        if self._link_loads is None:
            if self.reader is None:
                raise ValueError("context has no link loads")
            self._link_loads = self.reader.linkloads()
            if self._link_loads is None:
                raise ValueError("trace has no recorded link loads")
        return self._link_loads

    @property
    def observed_links(self) -> np.ndarray:
        """Inter-switch link ids (the congestion/tomography links)."""
        if self._observed_links is None:
            loads = self.link_loads
            observed = getattr(loads, "observed_links", None)
            if observed is None:
                observed = np.array(
                    [
                        link.link_id
                        for link in self.topology.inter_switch_links()
                    ],
                    dtype=np.int64,
                )
            self._observed_links = np.asarray(observed)
        return self._observed_links

    @property
    def duration(self) -> float | None:
        """Run duration in seconds (event span fallback for old traces)."""
        if self._duration is None and self.reader is not None:
            self._duration = max(self.reader.time_span()[1], 1.0)
        return self._duration

    @property
    def flows(self):
        """The reconstructed flow table."""
        if self._flows is None:
            from ..core.flows import reconstruct_flows

            self._flows = reconstruct_flows(
                self.log, inactivity_timeout=self.inactivity_timeout
            )
        return self._flows

    @property
    def tm(self):
        """The server-level TM series at ``self.window`` seconds."""
        if self._tm is None:
            from ..core.traffic_matrix import tm_series_from_events

            self._tm = tm_series_from_events(
                self.log, self.topology, self.window, self.duration
            )
        return self._tm

    @property
    def congestion(self):
        """The congestion summary over the observed links."""
        if self._congestion is _UNSET:
            from ..core.congestion import congestion_summary

            loads = self.link_loads
            observed = self.observed_links
            utilization = loads.utilization_matrix()[observed]
            self._congestion = congestion_summary(
                utilization,
                threshold=self.threshold,
                bin_width=loads.bin_width,
                link_ids=observed,
            )
        return self._congestion

    @property
    def inactivity_timeout(self) -> float:
        """Flow inactivity timeout (the paper's 60 s default)."""
        if self._inactivity_timeout is None:
            from ..core.flows import DEFAULT_INACTIVITY_TIMEOUT

            self._inactivity_timeout = DEFAULT_INACTIVITY_TIMEOUT
        return self._inactivity_timeout

    @property
    def threshold(self) -> float:
        """Congestion threshold (the paper's C = 70% default)."""
        if self._threshold is None:
            from ..core.congestion import DEFAULT_THRESHOLD

            self._threshold = DEFAULT_THRESHOLD
        return self._threshold

    @property
    def clock_skew_max(self) -> float:
        """Maximum per-server clock offset, seconds (0 when unknown)."""
        return self._clock_skew_max if self._clock_skew_max is not None else 0.0

    @property
    def cc(self):
        """Congestion-control observables, or ``None`` for fluid runs.

        Either an archived :class:`~repro.simulation.cc.transport.CCReport`
        or a live :class:`~repro.simulation.cc.queue.LinkQueues` — both
        expose the ``enqueued_bytes`` / ``dequeued_bytes`` /
        ``dropped_bytes`` / ``resident_bytes`` ledgers checkers need.
        """
        return self._cc

    @property
    def transport_family(self) -> str:
        """Which transport family produced this campaign.

        Resolved from the config when present, from trace metadata for
        trace-backed contexts, defaulting to ``"fluid"`` for artefacts
        predating the queued transports.
        """
        impl = None
        if self.config is not None:
            impl = self.config.transport_impl
        elif self.reader is not None:
            impl = self.reader.meta.get("transport_impl")
        if impl is None:
            return "fluid"
        from ..simulation.impls import transport_family

        return transport_family(impl)
