"""The invariant-checker registry.

A checker is a function ``check(ctx) -> list[Violation]`` registered
under a dotted name with a set of tags (``cheap``, ``trace``,
``analysis``, ``inline``, ...) and a set of *requirements* — context
capabilities (``log``, ``trace``, ``linkloads``, ``topology``,
``simulator``) the checker needs.  :func:`run_checkers` resolves a
selection by name or tag, skips checkers whose requirements the context
cannot satisfy (recording the reason), and returns a
:class:`~repro.validate.violations.ValidationReport`.

Names are the contract: tests and the CLI refer to checkers by name, so
renaming one is a breaking change in the same way renaming an
experiment in :mod:`repro.experiments.registry` is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from .violations import (
    CheckerResult,
    ValidationError,
    ValidationReport,
    Violation,
)

__all__ = [
    "CheckerSpec",
    "checker",
    "get_checker",
    "checker_names",
    "checker_specs",
    "run_checkers",
]


@dataclass(frozen=True)
class CheckerSpec:
    """One registered invariant checker."""

    name: str
    func: Callable
    tags: frozenset
    requires: frozenset
    description: str


_REGISTRY: dict[str, CheckerSpec] = {}


def checker(name: str, tags: tuple = (), requires: tuple = ()) -> Callable:
    """Register an invariant checker under a dotted name.

    The wrapped function receives a
    :class:`~repro.validate.context.ValidationContext` and returns a
    (possibly empty) list of :class:`Violation`.
    """

    def register(func: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"duplicate checker name {name!r}")
        doc = (func.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = CheckerSpec(
            name=name,
            func=func,
            tags=frozenset(tags),
            requires=frozenset(requires),
            description=doc[0] if doc else "",
        )
        return func

    return register


def get_checker(name: str) -> CheckerSpec:
    """Look a checker up by name; raises ``KeyError`` with suggestions."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown checker {name!r}; known: {known}") from None


def checker_names(tag: str | None = None) -> list[str]:
    """Registered names, optionally restricted to one tag."""
    return [
        spec.name
        for spec in checker_specs()
        if tag is None or tag in spec.tags
    ]


def checker_specs() -> list[CheckerSpec]:
    """All registered checkers, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_checkers(
    ctx,
    names: list[str] | None = None,
    tags: tuple | None = None,
    telemetry=None,
) -> ValidationReport:
    """Run a selection of checkers against a context.

    ``names`` selects explicitly (unknown names raise); ``tags`` keeps
    only checkers carrying at least one of the given tags.  With neither,
    every non-``inline`` checker is eligible.  Checkers whose
    requirements the context cannot satisfy are recorded as skipped, so
    a report always accounts for the full selection.
    """
    if names is not None:
        selection = [get_checker(name) for name in names]
    else:
        selection = [
            spec for spec in checker_specs() if "inline" not in spec.tags
        ]
    if tags is not None:
        wanted = set(tags)
        selection = [spec for spec in selection if spec.tags & wanted]
    report = ValidationReport()
    for spec in selection:
        missing = sorted(
            requirement
            for requirement in spec.requires
            if not ctx.provides(requirement)
        )
        if missing:
            report.results.append(
                CheckerResult(
                    name=spec.name,
                    status="skipped",
                    detail=f"context lacks: {', '.join(missing)}",
                )
            )
            if telemetry is not None:
                telemetry.counter("validate.checkers_skipped").inc()
            continue
        start = time.perf_counter()
        try:
            if telemetry is not None:
                with telemetry.span("validate.checker", checker=spec.name):
                    violations = list(spec.func(ctx))
            else:
                violations = list(spec.func(ctx))
        except ValidationError as error:
            # A lazily-resolved context artefact (e.g. reading a corrupt
            # trace chunk) is itself a broken invariant, not a crash.
            violations = list(error.violations) or [
                Violation(checker=spec.name, message=str(error))
            ]
        elapsed = time.perf_counter() - start
        report.results.append(
            CheckerResult(
                name=spec.name,
                status="violation" if violations else "ok",
                violations=violations,
                seconds=elapsed,
            )
        )
        if telemetry is not None:
            telemetry.counter("validate.checkers_run").inc()
            if violations:
                telemetry.counter("validate.violations").inc(len(violations))
    return report


def make_violation(checker_name: str, message: str, **context) -> Violation:
    """Convenience constructor used by the built-in checkers."""
    return Violation(checker=checker_name, message=message, context=context)
