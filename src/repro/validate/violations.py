"""Violation records, typed validation errors, and the report object.

This module is a leaf on purpose: it imports nothing from ``repro``, so
low-level packages (the trace reader, the simulator) can raise the typed
:class:`ValidationError` family without creating import cycles with the
checker registry, which in turn imports the analysis layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Violation",
    "ValidationError",
    "TraceCorruptionError",
    "CheckerResult",
    "ValidationReport",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant, as reported by a named checker."""

    checker: str
    message: str
    #: Free-form structured detail (counts, offending ids, deltas).
    context: dict = field(default_factory=dict)

    def render(self) -> str:
        """One-line human rendering."""
        if not self.context:
            return f"[{self.checker}] {self.message}"
        detail = ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
        return f"[{self.checker}] {self.message} ({detail})"


class ValidationError(Exception):
    """An invariant the pipeline depends on does not hold.

    Raised by the inline validation hook and by
    :meth:`ValidationReport.raise_if_violations`; carries the violation
    list so callers can render or count them without parsing the message.
    """

    def __init__(self, message: str, violations: list[Violation] | tuple = ()):
        super().__init__(message)
        self.violations = list(violations)


class TraceCorruptionError(ValidationError):
    """A ``.reprotrace`` directory is unreadable or internally inconsistent.

    The trace layer raises this instead of leaking ``zipfile``/``numpy``
    internals when a chunk fails to decompress, a file is truncated or a
    recorded sidecar has gone missing.
    """


@dataclass
class CheckerResult:
    """Outcome of running one checker against a validation context."""

    name: str
    #: "ok", "violation" or "skipped".
    status: str
    violations: list[Violation] = field(default_factory=list)
    #: Skip reason (missing context requirements), empty otherwise.
    detail: str = ""
    seconds: float = 0.0


@dataclass
class ValidationReport:
    """Everything one validation pass produced, checker by checker."""

    results: list[CheckerResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no checker reported a violation."""
        return all(result.status != "violation" for result in self.results)

    @property
    def violations(self) -> list[Violation]:
        """All violations across checkers, in checker order."""
        return [v for result in self.results for v in result.violations]

    @property
    def checkers_run(self) -> int:
        """Number of checkers that actually executed (not skipped)."""
        return sum(1 for result in self.results if result.status != "skipped")

    @property
    def checkers_skipped(self) -> int:
        """Number of checkers skipped for missing context."""
        return sum(1 for result in self.results if result.status == "skipped")

    def result_for(self, name: str) -> CheckerResult:
        """The result of one checker by name."""
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no checker named {name!r} in this report")

    def render(self) -> str:
        """A fixed-width table of checker outcomes plus violation lines."""
        width = max((len(r.name) for r in self.results), default=10)
        lines = []
        for result in self.results:
            mark = {"ok": "ok", "violation": "FAIL", "skipped": "skip"}[result.status]
            suffix = f"  ({result.detail})" if result.detail else ""
            lines.append(
                f"  {result.name:<{width}}  {mark:<4}  "
                f"{result.seconds:.3f}s{suffix}"
            )
            for violation in result.violations:
                lines.append(f"    - {violation.render()}")
        summary = (
            f"{self.checkers_run} checker(s) run, "
            f"{self.checkers_skipped} skipped, "
            f"{len(self.violations)} violation(s)"
        )
        return "\n".join([summary, *lines])

    def raise_if_violations(self) -> None:
        """Raise :class:`ValidationError` when any invariant is broken."""
        if not self.ok:
            raise ValidationError(
                f"{len(self.violations)} invariant violation(s):\n"
                + self.render(),
                self.violations,
            )
