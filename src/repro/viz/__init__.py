"""ASCII figure rendering.

Terminal renderings of the paper's figures — heatmaps, CDFs, bar charts
— built on :mod:`repro.util.ascii` so a reproduction run needs no
plotting stack: ``repro figures`` prints Fig 2's traffic-matrix heatmap
or Fig 9's duration CDFs straight to stdout.  Each ``figureN_*``
function takes the corresponding experiment's summary output (resolved
through :mod:`repro.experiments.registry`), keeping rendering strictly
downstream of analysis.
"""

from .figures import (
    figure2_heatmap,
    figure6_episode_cdf,
    figure7_victim_cdf,
    figure8_bars,
    figure9_duration_cdfs,
    figure10_series,
    figure11_interarrival_cdfs,
)

__all__ = [
    "figure2_heatmap",
    "figure6_episode_cdf",
    "figure7_victim_cdf",
    "figure8_bars",
    "figure9_duration_cdfs",
    "figure10_series",
    "figure11_interarrival_cdfs",
]
