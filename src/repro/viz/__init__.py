"""ASCII figure rendering."""

from .figures import (
    figure2_heatmap,
    figure6_episode_cdf,
    figure7_victim_cdf,
    figure8_bars,
    figure9_duration_cdfs,
    figure10_series,
    figure11_interarrival_cdfs,
)

__all__ = [
    "figure2_heatmap",
    "figure6_episode_cdf",
    "figure7_victim_cdf",
    "figure8_bars",
    "figure9_duration_cdfs",
    "figure10_series",
    "figure11_interarrival_cdfs",
]
