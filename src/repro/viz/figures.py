"""ASCII renderings of the paper's figures.

Thin adapters from analysis results to :mod:`repro.util.ascii` renderers,
so examples and the benchmark harness can show a figure's shape in a
terminal (there is no plotting stack in the offline environment).
"""

from __future__ import annotations

import numpy as np

from ..core.change import ChurnStats
from ..core.congestion import CongestionSummary, VictimFlowComparison
from ..core.flow_stats import DurationStats, InterarrivalStats
from ..core.impact import ImpactStudy
from ..core.traffic_matrix import log_matrix
from ..util.ascii import render_bars, render_cdf, render_heatmap, render_series

__all__ = [
    "render_figure",
    "figure2_heatmap",
    "figure6_episode_cdf",
    "figure7_victim_cdf",
    "figure8_bars",
    "figure9_duration_cdfs",
    "figure10_series",
    "figure11_interarrival_cdfs",
]


def render_figure(name: str, dataset=None) -> str:
    """Run a registered experiment by name and render it for a terminal.

    Resolution goes through :mod:`repro.experiments.registry` — any
    module that registered itself is renderable here with no wiring.
    Results that define ``render()`` (e.g. Fig 2's heatmap) use it;
    everything else gets its paper-vs-measured ``rows()`` table.
    """
    # Imported lazily: this module is itself imported by figure modules
    # during experiment registration.
    from ..experiments.registry import get_experiment
    from ..experiments.reporting import format_table

    spec = get_experiment(name)
    result = spec.run(dataset) if spec.kind == "figure" else spec.run()
    if hasattr(result, "render"):
        return result.render()
    return format_table(f"{name} — paper vs this reproduction", result.rows())


def figure2_heatmap(tm: np.ndarray, title: str = "Fig 2: ln(bytes) between server pairs") -> str:
    """The Fig 2 work-seeks-bandwidth / scatter-gather heatmap."""
    return render_heatmap(log_matrix(tm), title=title)


def figure6_episode_cdf(summary: CongestionSummary) -> str:
    """Fig 6: congestion episode length distribution."""
    return render_cdf(
        {"episodes": summary.episode_duration_ecdf()},
        log_x=True,
        title="Fig 6: congestion episode duration CDF (log x, seconds)",
    )


def figure7_victim_cdf(comparison: VictimFlowComparison) -> str:
    """Fig 7: rates of congestion-overlapping flows vs all flows."""
    return render_cdf(
        {
            "all flows": comparison.all_ecdf(),
            "overlap congestion": comparison.overlapping_ecdf(),
        },
        log_x=True,
        title="Fig 7: flow rate CDF, bytes/s (log x)",
    )


def figure8_bars(study: ImpactStudy) -> str:
    """Fig 8: per-day read-failure uplift bars."""
    bars = study.uplift_bars()
    labels = [f"day {day}" for day, _ in bars]
    values = [0.0 if not np.isfinite(v) else v for _, v in bars]
    return render_bars(
        labels, values,
        title="Fig 8: % increase in P(read failure) when overlapping congestion",
    )


def figure9_duration_cdfs(stats: DurationStats) -> str:
    """Fig 9: flow duration CDF and bytes-weighted CDF."""
    return render_cdf(
        {"flows": stats.flow_cdf, "bytes": stats.byte_cdf},
        log_x=True,
        title="Fig 9: flow duration CDF (log x, seconds)",
    )


def figure10_series(stats: ChurnStats) -> str:
    """Fig 10 (top): aggregate traffic rate over time."""
    return render_series(
        stats.aggregate_rate / 1e9,
        title=(
            "Fig 10: aggregate TM rate (GB/s); "
            f"peak/bisection = {stats.peak_over_bisection:.2f}"
        ),
    )


def figure11_interarrival_cdfs(stats: InterarrivalStats) -> str:
    """Fig 11: inter-arrival CDFs at three vantage points."""
    return render_cdf(
        {
            "cluster": stats.cluster,
            "per ToR": stats.per_tor,
            "per server": stats.per_server,
        },
        log_x=True,
        title="Fig 11: flow inter-arrival CDF (log x, seconds)",
    )
