"""Workload substrate: block store, Scope compiler, scheduler, executor."""

from .blockstore import Block, BlockStore, Dataset
from .generator import (
    EvacuationEvent,
    IngestionEvent,
    WorkloadConfig,
    WorkloadSchedule,
    generate_schedule,
)
from .job import (
    InputSource,
    JobRuntime,
    JobState,
    PhaseRuntime,
    VertexRuntime,
    VertexState,
)
from .runtime import JobExecutor
from .scheduler import Placement, PlacementLevel, SlotScheduler
from .scope import (
    STANDARD_TEMPLATES,
    CompiledJob,
    CompiledPhase,
    JobSpec,
    JobTemplate,
    PhaseTemplate,
    PhaseType,
    compile_job,
)

__all__ = [
    "Block",
    "BlockStore",
    "Dataset",
    "WorkloadConfig",
    "WorkloadSchedule",
    "EvacuationEvent",
    "IngestionEvent",
    "generate_schedule",
    "InputSource",
    "JobRuntime",
    "JobState",
    "PhaseRuntime",
    "VertexRuntime",
    "VertexState",
    "JobExecutor",
    "Placement",
    "PlacementLevel",
    "SlotScheduler",
    "PhaseType",
    "PhaseTemplate",
    "JobTemplate",
    "JobSpec",
    "CompiledPhase",
    "CompiledJob",
    "compile_job",
    "STANDARD_TEMPLATES",
]
