"""Workload substrate: block store, Scope compiler, scheduler, executor.

The application side of the paper's cluster: a MapReduce/Dryad-style
platform whose jobs *are* the traffic.  :mod:`~repro.workload.scope`
compiles job templates into phase DAGs;
:mod:`~repro.workload.blockstore` models the replicated distributed
file system whose placement decides which transfers stay within a rack;
:mod:`~repro.workload.scheduler` assigns phase vertices to servers;
:mod:`~repro.workload.runtime` executes vertices through the simulator,
turning reads, shuffles and replicated writes into transport flows; and
:mod:`~repro.workload.generator` drives job arrivals (diurnal load,
ingestion, evacuation events) over a campaign.

Work-induced traffic — not synthetic matrices — is what gives the
reproduced figures their structure, e.g. the within-rack bytes of Fig 3
and the congestion/job correlations of §4.2.
"""

from .blockstore import Block, BlockStore, Dataset
from .generator import (
    EvacuationEvent,
    IngestionEvent,
    WorkloadConfig,
    WorkloadSchedule,
    generate_schedule,
)
from .job import (
    InputSource,
    JobRuntime,
    JobState,
    PhaseRuntime,
    VertexRuntime,
    VertexState,
)
from .runtime import JobExecutor
from .scheduler import Placement, PlacementLevel, SlotScheduler
from .scope import (
    STANDARD_TEMPLATES,
    CompiledJob,
    CompiledPhase,
    JobSpec,
    JobTemplate,
    PhaseTemplate,
    PhaseType,
    compile_job,
)

__all__ = [
    "Block",
    "BlockStore",
    "Dataset",
    "WorkloadConfig",
    "WorkloadSchedule",
    "EvacuationEvent",
    "IngestionEvent",
    "generate_schedule",
    "InputSource",
    "JobRuntime",
    "JobState",
    "PhaseRuntime",
    "VertexRuntime",
    "VertexState",
    "JobExecutor",
    "Placement",
    "PlacementLevel",
    "SlotScheduler",
    "PhaseType",
    "PhaseTemplate",
    "JobTemplate",
    "JobSpec",
    "CompiledPhase",
    "CompiledJob",
    "compile_job",
    "STANDARD_TEMPLATES",
]
